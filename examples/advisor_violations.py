"""Seeded advisor violations: several lint rules have a trigger in here.

Used by the CLI tests (and handy as a demo of what the advisor flags):

    python -m repro.analysis advise examples/advisor_violations.py \\
        --data-scale 4e4

exits non-zero: the ``toarray`` densification crosses the 1 GiB error
threshold once the data scale magnifies it, and a laptop framebuffer
overflows on the scaled footprints.  At ``--data-scale 1`` the same
program only draws warnings/notes.
"""


def main():
    import numpy as np
    import scipy.sparse as sps

    import repro.numeric as rnp
    import repro.sparse as sp

    n = 1800
    diags = [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)]
    A = sp.csr_matrix(sps.diags(diags, [-1, 0, 1]).tocsr())

    # densify: materializes an n*n dense array from the sparse matrix.
    dense = A.toarray()
    del dense

    # convert round-trip: csr -> csc -> csr for no structural reason.
    back = A.tocsc().tocsr()

    # dead write: the zeros fill is discarded unread by the refill.
    x = rnp.zeros(n)
    x.fill(1.0)

    y = back @ x
    print(float(y.sum()))


if __name__ == "__main__":
    main()
