"""Extending the library: write your own distributed sparse operation.

This walks through exactly what §4.1/Fig. 4 of the paper shows — defining
a new operation with the constraint-based task API, without knowing
anything about how other operations partition data.  The operation here
is a fused "residual" kernel, r = b - A @ x, in one task instead of two.

Run:  python examples/custom_operation.py
"""

import numpy as np
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.constraints import AutoTask
from repro.legion import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, summit


def fused_residual(A, x, b):
    """r = b - A @ x as a single task launch (fusion saves a pass)."""
    rt = A.runtime

    # The kernel: plain vectorized NumPy over the shard's global bounds,
    # the same shape as the DISTAL-generated task in the paper's Fig. 7.
    def kernel(ctx):
        pos, crd, vals = ctx.arrays["pos"], ctx.arrays["crd"], ctx.arrays["vals"]
        xg, bg, rg = ctx.arrays["x"], ctx.arrays["b"], ctx.arrays["r"]
        pr = ctx.rects["pos"]
        rlo, rhi = pr.lo[0], pr.hi[0]
        if rhi <= rlo:
            return
        lo, hi = pos[rlo:rhi, 0], pos[rlo:rhi, 1]
        jlo, jhi = int(lo[0]), int(hi[-1])
        if jhi <= jlo:
            rg[rlo:rhi] = bg[rlo:rhi]
            return
        contrib = vals[jlo:jhi] * xg[crd[jlo:jhi]]
        csum = np.empty(len(contrib) + 1)
        csum[0] = 0
        np.cumsum(contrib, out=csum[1:])
        rg[rlo:rhi] = bg[rlo:rhi] - (csum[hi - jlo] - csum[lo - jlo])

    def cost(ctx):
        nnz = ctx.rects["crd"].volume()
        rows = ctx.rects["pos"].volume() // 2
        return 2.0 * nnz + rows, nnz * 24.0 + rows * 40.0

    r = rnp.empty(A.shape[0])
    # The Fig. 4 pattern: declare stores + constraints, let the solver
    # pick concrete partitions that reuse what already exists.
    task = AutoTask(rt, "fused_residual", kernel, cost)
    task.add_output("r", r.store)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_input("x", x.store)
    task.add_input("b", b.store)
    task.add_alignment_constraint(r.store, A.pos)
    task.add_alignment_constraint(r.store, b.store)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(A.crd, x.store, kind="coordinate")
    task.execute()
    return r


def main():
    machine = summit(nodes=1)
    rt = Runtime(machine.scope(ProcessorKind.GPU, 3), RuntimeConfig.legate())
    with runtime_scope(rt):
        n = 4096
        ref = sps.random(n, n, density=5.0 / n, random_state=0, format="csr")
        ref = (ref + n * sps.eye(n)).tocsr()
        A = sp.csr_matrix(ref)
        rnp.random.seed(1)
        x = rnp.random.rand(n)
        b = rnp.random.rand(n)

        # Unfused: two launches (SpMV, then subtract).
        snap = rt.profiler.snapshot()
        r_unfused = b - A @ x
        unfused_launches = rt.profiler.since(snap).tasks_launched

        # Fused: one launch.
        snap = rt.profiler.snapshot()
        r_fused = fused_residual(A, x, b)
        fused_launches = rt.profiler.since(snap).tasks_launched

        err = float(rnp.linalg.norm(r_fused - r_unfused))
        print(f"unfused launches: {unfused_launches}, fused: {fused_launches}")
        print(f"max deviation:    {err:.2e}")
        assert err < 1e-8
        print("the fused operation composes with everything else:")
        print(f"  ||r|| = {float(rnp.linalg.norm(r_fused)):.6f}")


if __name__ == "__main__":
    main()
