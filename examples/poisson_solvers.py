"""Iterative solvers on a 2-D Poisson problem (the Fig. 9/10 workloads).

Solves -Δu = 1 on a k x k grid with plain CG and with the two-level
geometric-multigrid-preconditioned CG, comparing iteration counts and
simulated execution time across processor counts.

Run:  python examples/poisson_solvers.py [--k 31] [--procs 1 3 6]
"""

import argparse

import numpy as np


def solve_with(procs: int, k: int):
    from repro.apps.multigrid import gmg_preconditioned_cg
    from repro.apps.poisson import poisson2d_scipy
    from repro.legion import Runtime, RuntimeConfig, runtime_scope
    from repro.machine import ProcessorKind, summit

    import repro.numeric as rnp
    import repro.sparse as sp

    machine = summit(nodes=max(1, (procs + 5) // 6))
    rt = Runtime(machine.scope(ProcessorKind.GPU, procs), RuntimeConfig.legate())
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(k))
        b = rnp.ones(k * k)

        cg_iters = [0]
        t0 = rt.barrier()
        x_cg, info = sp.linalg.cg(
            A, b, rtol=1e-8, maxiter=2000,
            callback=lambda _: cg_iters.__setitem__(0, cg_iters[0] + 1),
        )
        t_cg = rt.barrier() - t0
        assert info == 0

        t0 = rt.barrier()
        x_pcg, info, pcg_iters = gmg_preconditioned_cg(A, b, k, rtol=1e-8)
        t_pcg = rt.barrier() - t0
        assert info == 0

        residual = float(rnp.linalg.norm(b - A @ x_pcg))
    return cg_iters[0], t_cg, pcg_iters, t_pcg, residual


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=31, help="grid side (odd)")
    parser.add_argument("--procs", type=int, nargs="+", default=[1, 3, 6])
    args = parser.parse_args()

    print(f"2-D Poisson, {args.k}x{args.k} grid ({args.k**2} unknowns)")
    print(f"{'GPUs':>5} {'CG iters':>9} {'CG time':>10} {'PCG iters':>10} "
          f"{'PCG time':>10} {'residual':>10}")
    for procs in args.procs:
        cg_i, t_cg, pcg_i, t_pcg, resid = solve_with(procs, args.k)
        print(
            f"{procs:>5} {cg_i:>9} {t_cg*1e3:>8.2f}ms {pcg_i:>10} "
            f"{t_pcg*1e3:>8.2f}ms {resid:>10.2e}"
        )
    print("\n(The V-cycle cuts iteration counts; its many small tasks cost")
    print(" launch overhead — the trade-off behind the paper's Fig. 10.)")


if __name__ == "__main__":
    main()
