"""Quickstart: the paper's Figure 1 program, verbatim in spirit.

Estimates the largest eigenvalue of a random symmetric positive
semi-definite sparse matrix with power iteration.  The same source runs
on the distributed stack (repro.sparse + repro.numeric) or falls back to
stock SciPy/NumPy, exactly like the paper's Fig. 1 import dance.

Run:  python examples/quickstart.py [--procs N] [--scipy]
"""

import argparse


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=2048, help="matrix size")
    parser.add_argument("--iters", type=int, default=60)
    parser.add_argument("--procs", type=int, default=2, help="simulated GPUs")
    parser.add_argument(
        "--scipy", action="store_true", help="force the SciPy fallback"
    )
    args = parser.parse_args()

    if not args.scipy:
        # Configure the simulated machine before importing the libraries.
        from repro.legion import Runtime, RuntimeConfig, set_runtime
        from repro.machine import ProcessorKind, summit

        machine = summit(nodes=max(1, (args.procs + 5) // 6))
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, args.procs), RuntimeConfig.legate()
        )
        set_runtime(rt)

    # ---- the Figure 1 program ----------------------------------------
    try:
        if args.scipy:
            raise ImportError
        import repro.numeric as np
        import repro.sparse as sp

        backend = f"repro (distributed, {args.procs} simulated GPUs)"
    except ImportError:
        import numpy as np
        import scipy.sparse as sp

        backend = "scipy/numpy fallback"

    n, iters = args.n, args.iters

    # Generate a random sparse matrix.
    A = sp.random(n, n, density=10.0 / n, format="csr", random_state=0)
    # Make a positive semi-definite matrix from A.
    A = 0.5 * (A + A.T.tocsr()) + n * sp.eye(n, format="csr")

    # Estimate the maximum eigenvalue via the Rayleigh quotient.
    x = np.random.rand(n)
    for _ in range(iters):
        x = A @ x
        x /= np.linalg.norm(x)
    result = np.dot(x, A @ x)

    print(f"backend:            {backend}")
    print(f"matrix:             {n}x{n}, nnz={A.nnz}")
    print(f"max eigenvalue ~=   {float(result):.6f}")

    if not args.scipy:
        print(f"simulated time:     {rt.elapsed() * 1e3:.3f} ms")
        print(rt.profiler.format_summary())


if __name__ == "__main__":
    main()
