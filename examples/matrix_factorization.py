"""Recommender-model training with SDDMM (the Fig. 12 workload).

Trains the biased matrix-factorization model on a synthetic
MovieLens-like dataset with mini-batch SGD, reporting RMSE per epoch and
training throughput in samples/second of simulated time.

Run:  python examples/matrix_factorization.py [--procs 2] [--epochs 8]
"""

import argparse

import numpy as np


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=1500)
    parser.add_argument("--items", type=int, default=600)
    parser.add_argument("--ratings", type=int, default=40_000)
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument("--procs", type=int, default=2)
    args = parser.parse_args()

    from repro.apps.matfact import MatrixFactorizationModel, sgd_epoch
    from repro.apps.movielens import synthetic_movielens
    from repro.legion import Runtime, RuntimeConfig, runtime_scope
    from repro.machine import ProcessorKind, summit

    machine = summit(nodes=max(1, (args.procs + 5) // 6))
    rt = Runtime(machine.scope(ProcessorKind.GPU, args.procs), RuntimeConfig.legate())

    users, items, ratings = synthetic_movielens(
        args.users, args.items, args.ratings, seed=0
    )
    # Hold out 10% for validation.
    n_train = int(0.9 * len(users))
    train = (users[:n_train], items[:n_train], ratings[:n_train])
    valid = (users[n_train:], items[n_train:], ratings[n_train:])

    with runtime_scope(rt):
        model = MatrixFactorizationModel(
            args.users, args.items, k=args.k, lr=1.0, reg=0.002,
            mu=float(train[2].mean()),
        )
        rng = np.random.default_rng(0)
        print(f"training on {len(train[0])} ratings "
              f"({args.users} users x {args.items} items, k={args.k}, "
              f"{args.procs} simulated GPUs)")
        print(f"{'epoch':>6} {'train-batch rmse':>17} {'valid rmse':>11} "
              f"{'samples/s (sim)':>16}")
        for epoch in range(args.epochs):
            t0 = rt.barrier()
            samples, loss = sgd_epoch(
                model, *train, batch_size=args.batch, rng=rng
            )
            t1 = rt.barrier()
            vrmse = model.rmse(*valid)
            print(f"{epoch:>6} {loss:>17.4f} {vrmse:>11.4f} "
                  f"{samples / (t1 - t0):>16.0f}")
        print(f"\nSDDMM launches: {rt.profiler.task_counts.get('csr:R(i,j)=B(i,j)*C(i,k)*D(j,k):gpu', 0)}")


if __name__ == "__main__":
    main()
