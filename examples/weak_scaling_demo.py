"""Regenerate a paper figure interactively, with a terminal plot.

Runs one of the weak-scaling experiments (default: Figure 8's SpMV
microbenchmark) over a reduced column set and renders the same log-log
chart the paper plots, as ASCII.

Run:  python examples/weak_scaling_demo.py [--figure fig8|fig9|fig10|fig11] [--full]
"""

import argparse


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure", default="fig8", choices=["fig8", "fig9", "fig10", "fig11"]
    )
    parser.add_argument(
        "--full", action="store_true", help="all 8 weak-scaling columns (slow)"
    )
    args = parser.parse_args()

    from repro.harness.config import WEAK_SCALING_COLUMNS
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.plotting import ascii_plot
    from repro.harness.report import shape_checks

    columns = WEAK_SCALING_COLUMNS if args.full else [(1, 1), (1, 3), (2, 6), (8, 24), (64, 192)]
    module = ALL_EXPERIMENTS[args.figure]
    if args.figure == "fig11":
        result = module.run(proc_counts=None if args.full else [1, 4, 16, 64])
    else:
        result = module.run(columns=columns)

    print(result.format_table())
    print()
    print(ascii_plot(result))
    print()
    for line in shape_checks(result):
        print("  " + line)


if __name__ == "__main__":
    main()
