"""PageRank on a random web graph — a classic SpMV-bound workload.

Builds a power-law directed graph, forms the column-stochastic
transition matrix with the sparse API, and runs the damped power method:

    r <- (1 - d)/n + d * (P @ r + dangling mass)

Everything in the loop is a distributed operation; the fused
expression-template path (repro.numeric.lazy) collapses the per-iteration
element-wise chain into a single task, the way the paper's cited
task-fusion work would.

Run:  python examples/pagerank.py [--nodes 5000] [--procs 3]
"""

import argparse

import numpy as np


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--edges-per-node", type=int, default=8)
    parser.add_argument("--damping", type=float, default=0.85)
    parser.add_argument("--procs", type=int, default=3)
    parser.add_argument("--tol", type=float, default=1e-10)
    args = parser.parse_args()

    from repro.legion import Runtime, RuntimeConfig, runtime_scope
    from repro.machine import ProcessorKind, summit
    from repro.numeric.lazy import evaluate, lazy

    import repro.numeric as rnp
    import repro.sparse as sp

    machine = summit(nodes=max(1, (args.procs + 5) // 6))
    rt = Runtime(machine.scope(ProcessorKind.GPU, args.procs), RuntimeConfig.legate())

    n = args.nodes
    rng = np.random.default_rng(0)
    # Power-law out-links: popular pages attract more edges.
    weights = 1.0 / np.arange(1, n + 1) ** 0.8
    weights /= weights.sum()
    src = np.repeat(np.arange(n), args.edges_per_node)
    dst = rng.choice(n, size=len(src), p=weights)
    keep = src != dst
    src, dst = src[keep], dst[keep]

    with runtime_scope(rt):
        # Column-stochastic transition matrix P[dst, src] = 1/outdeg(src).
        outdeg = np.bincount(src, minlength=n).astype(float)
        vals = 1.0 / outdeg[src]
        P = sp.csr_matrix((vals, (dst, src)), shape=(n, n))

        r = rnp.full(n, 1.0 / n)
        teleport = (1.0 - args.damping) / n
        iters = 0
        while True:
            iters += 1
            spread = P @ r
            r_next = evaluate(lazy(spread) * args.damping + teleport)
            # Dangling nodes have no out-links; their mass teleports.
            mass = float(rnp.sum(r_next))
            r_next = r_next + (1.0 - mass) / n
            delta = float(rnp.linalg.norm(r_next - r))
            r = r_next
            if delta < args.tol or iters > 200:
                break

        ranks = r.to_numpy()
        top = np.argsort(ranks)[::-1][:8]
        print(f"PageRank on {n} nodes / {len(src)} edges "
              f"({args.procs} simulated GPUs)")
        print(f"converged in {iters} iterations (delta={delta:.2e})")
        print(f"rank mass: {ranks.sum():.12f}")
        print("top pages:", ", ".join(f"#{i} ({ranks[i]:.5f})" for i in top))
        prof = rt.profiler
        print(f"simulated time: {rt.elapsed()*1e3:.2f} ms, "
              f"{prof.tasks_launched} tasks, "
              f"{prof.total_copy_bytes():,} bytes moved")


if __name__ == "__main__":
    main()
