"""Quantum simulation of a Rydberg atom chain (the Fig. 11 workload).

Evolves the blockade-restricted wave function of an n-atom chain under
the Rydberg Hamiltonian with 8th-order integration, and reports the
Rydberg density ⟨n_i⟩ per atom — the observable MIS-solving experiments
read out — plus the communication profile that explains the paper's
weak-scaling behaviour.

Run:  python examples/rydberg_simulation.py [--atoms 12] [--procs 2]
"""

import argparse

import numpy as np


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--atoms", type=int, default=12)
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument("--t-final", type=float, default=2.0)
    parser.add_argument("--step", type=float, default=0.1)
    parser.add_argument("--omega", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1.2)
    args = parser.parse_args()

    from repro.apps.rydberg import blockade_states, rydberg_hamiltonian, simulate
    from repro.legion import Runtime, RuntimeConfig, runtime_scope
    from repro.machine import ProcessorKind, summit

    import repro.numeric as rnp

    machine = summit(nodes=max(1, (args.procs + 5) // 6))
    rt = Runtime(machine.scope(ProcessorKind.GPU, args.procs), RuntimeConfig.legate())
    with runtime_scope(rt):
        H = rydberg_hamiltonian(args.atoms, omega=args.omega, delta=args.delta)
        dim = H.shape[0]
        print(f"{args.atoms}-atom chain: {dim} blockade states "
              f"(vs 2^{args.atoms} = {2**args.atoms} unrestricted)")
        print(f"Hamiltonian: nnz={H.nnz}, running GBS8 with dt={args.step}")

        result = simulate(H, t_final=args.t_final, step=args.step)
        psi = result.y.to_numpy()
        print(f"norm after evolution: {np.linalg.norm(psi):.12f}")
        print(f"RHS evaluations:      {result.nfev}")

        probs = np.abs(psi) ** 2
        states = blockade_states(args.atoms)
        density = np.zeros(args.atoms)
        for prob, state in zip(probs, states):
            for atom in range(args.atoms):
                if (state >> atom) & 1:
                    density[atom] += prob
        print("Rydberg density per atom:")
        print("  " + " ".join(f"{d:.3f}" for d in density))

        prof = rt.profiler
        print(f"simulated time:  {rt.elapsed()*1e3:.2f} ms")
        print(f"tasks launched:  {prof.tasks_launched}")
        print("bytes moved:     "
              + ", ".join(f"{k}={v:,}" for k, v in sorted(prof.copy_bytes.items())))
        print("(wide-band Hamiltonian => near-all-to-all halos; see Fig. 11)")


if __name__ == "__main__":
    main()
