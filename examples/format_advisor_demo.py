"""Auto-format advisor demo: power-iteration SpMVs on a skewed matrix.

A power-law (scale-free) matrix is CSR's worst case for format choice:
most rows hold a couple of nonzeros, a heavy tail holds dozens.  Run
the demo directly (executes on the ambient runtime):

    python examples/format_advisor_demo.py [--n 8192] [--iters 100]

or statically through the advisor's auto-format pass, which replays
ELL / SELL-C-sigma / HYB through the machine model for every SpMV
operand and prints a ranked recommendation:

    python -m repro.analysis advise examples/format_advisor_demo.py \\
        --autoformat

To let the runtime act on the advice (convert at first launch,
bitwise-identical results), enable ``RuntimeConfig.autoformat`` —
see ``repro.harness.format_bench`` for the measured comparison.
"""

import argparse


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8192, help="matrix rows")
    parser.add_argument("--iters", type=int, default=100)
    args = parser.parse_args()

    import repro.numeric as rnp
    import repro.sparse as sp
    from repro.harness.skew import power_law_csr

    A = sp.csr_matrix(power_law_csr(args.n, args.n // 2, seed=42))
    x = rnp.ones(A.shape[1])
    y = None
    for _ in range(args.iters):
        y = A @ x
    norm = rnp.linalg.norm(y)
    print(f"skew matrix {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}")
    print(f"|A @ 1| after {args.iters} SpMVs: {float(norm):.3e}")


if __name__ == "__main__":
    main()
