"""Advisor demo: a CG solve on a 2-D Poisson operator.

Run it directly (executes on the ambient runtime):

    python examples/advisor_demo.py [--k 32] [--maxiter 8]

or statically, without executing any kernels, through the advisor —
which predicts partition choices, communication volume per channel
class and per-memory peak footprint on the requested machine:

    python -m repro.analysis advise examples/advisor_demo.py \\
        --machine summit:4

Under the advisor the convergence test reads NaN (kernels are skipped),
so the loop runs to ``maxiter`` — the conservative, maximal plan.
"""

import argparse


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=32, help="grid edge (k*k unknowns)")
    parser.add_argument("--maxiter", type=int, default=8)
    args = parser.parse_args()

    import repro.numeric as rnp
    import repro.sparse as sp
    from repro.apps.poisson import poisson2d_scipy

    A = sp.csr_matrix(poisson2d_scipy(args.k))
    b = rnp.ones(A.shape[0])
    x, info = sp.linalg.cg(A, b, rtol=1e-8, maxiter=args.maxiter)
    residual = rnp.linalg.norm(b - A @ x)
    print(f"poisson {A.shape[0]} unknowns, nnz={A.nnz}, info={info}")
    print(f"residual: {float(residual):.3e}")


if __name__ == "__main__":
    main()
