"""Kernel-fusion demo: merge-safe fused groups become one loop nest.

The deferred window fuses element-wise launches into one task; the
dependence analyzer (``repro.analysis.depend``) then proves which fused
groups can go further and execute as a single generated loop nest —
intermediates stay in nest values, shared operands are read once, one
cost entry for the group.  This demo runs a small CG solve twice, with
``RuntimeConfig.kernel_fusion`` on and off, and prints the per-group
verdicts from ``Runtime.fusion_log`` plus the profiler's merge
counters.  The solutions are bitwise identical by construction.

Run it directly:

    python examples/kernel_fusion_demo.py [--k 24] [--maxiter 4]

The static advisor carries the same verdicts in its window simulation
for any program that runs on the ambient runtime (this demo builds its
own runtimes to compare configs, so point the advisor at
``examples/advisor_demo.py`` instead and look for
``kernel-merge-applied`` findings):

    python -m repro.analysis advise examples/advisor_demo.py
"""

import argparse
import hashlib


def run_cg(k, maxiter, kernel_fusion):
    import repro.numeric as rnp
    import repro.sparse as sp
    from repro.apps.poisson import poisson2d_scipy
    from repro.legion.runtime import (
        Runtime,
        RuntimeConfig,
        runtime_scope,
    )
    from repro.machine import ProcessorKind, laptop

    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, 2),
        RuntimeConfig.legate(kernel_fusion=kernel_fusion),
    )
    with runtime_scope(runtime):
        A = sp.csr_matrix(poisson2d_scipy(k))
        b = rnp.ones(A.shape[0])
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=maxiter)
        digest = hashlib.sha256(x.to_numpy().tobytes()).hexdigest()
    return runtime, digest


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=24, help="grid edge (k*k unknowns)")
    parser.add_argument("--maxiter", type=int, default=4)
    args = parser.parse_args()

    merged_rt, merged_digest = run_cg(args.k, args.maxiter, kernel_fusion=True)
    replay_rt, replay_digest = run_cg(args.k, args.maxiter, kernel_fusion=False)

    print(f"CG on poisson2d(k={args.k}), maxiter={args.maxiter}")
    print("\nfusion log with kernel_fusion=True (first 8 groups):")
    for names, elided, verdict in merged_rt.fusion_log[:8]:
        print(f"  [{verdict:>8s}] elided={elided}  {' + '.join(names)}")
    counts = {}
    for _names, _elided, verdict in merged_rt.fusion_log:
        counts[verdict] = counts.get(verdict, 0) + 1
    print("\nverdicts:", ", ".join(f"{v}={n}" for v, n in sorted(counts.items())))
    print(
        f"merged loop nests: {merged_rt.profiler.kernel_merges} "
        f"(replay run: {replay_rt.profiler.kernel_merges})"
    )
    print(
        f"modeled compute: merged {merged_rt.profiler.kernel_seconds:.6f}s, "
        f"replay {replay_rt.profiler.kernel_seconds:.6f}s"
    )
    identical = merged_digest == replay_digest
    print(f"solutions bitwise identical: {identical}")
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
