"""Factories for the compared systems (runtime configurations).

SciPy and CuPy run the *same program source* as Legate — that is the
drop-in-replacement premise of Fig. 1 — but on a single processor with
the cost profile of the real system: SciPy's sparse operations are
single-threaded C with negligible dispatch cost; CuPy offloads each call
to one GPU with a small launch overhead and cuSPARSE kernel behaviour
(including the inefficient SDDMM the paper observes in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.baselines.petsc import MPISim
from repro.legion.runtime import Runtime, RuntimeConfig
from repro.machine import Machine, MachineScope, ProcessorKind


@dataclass
class SystemSpec:
    """Names a simulated system for harness tables."""

    name: str
    make: Callable[[Machine], object]


def legate_gpu_system(
    machine: Machine,
    gpus: int,
    per_node: Optional[int] = None,
    data_scale: float = 1.0,
    **overrides,
) -> Runtime:
    """A Legate runtime over GPUs."""
    scope = machine.scope(ProcessorKind.GPU, gpus, per_node=per_node)
    return Runtime(scope, RuntimeConfig.legate(data_scale=data_scale, **overrides))


def legate_cpu_system(
    machine: Machine,
    sockets: int,
    data_scale: float = 1.0,
    **overrides,
) -> Runtime:
    """A Legate runtime over CPU sockets."""
    scope = machine.scope(ProcessorKind.CPU_SOCKET, sockets)
    return Runtime(scope, RuntimeConfig.legate(data_scale=data_scale, **overrides))


def scipy_system(machine: Machine, data_scale: float = 1.0, **overrides) -> Runtime:
    """Single-threaded SciPy: one CPU core executes everything."""
    scope = machine.scope(ProcessorKind.CPU_CORE, 1)
    return Runtime(scope, RuntimeConfig.scipy(data_scale=data_scale, **overrides))


def cupy_system(machine: Machine, data_scale: float = 1.0, **overrides) -> Runtime:
    """CuPy: a single GPU with low dispatch overhead."""
    scope = machine.scope(ProcessorKind.GPU, 1)
    return Runtime(scope, RuntimeConfig.cupy(data_scale=data_scale, **overrides))


def petsc_sim(
    machine: Machine,
    kind: ProcessorKind,
    count: int,
    per_node: Optional[int] = None,
    data_scale: float = 1.0,
) -> MPISim:
    """The message-passing world the PETSc baseline runs in."""
    scope = machine.scope(kind, count, per_node=per_node)
    return MPISim(scope, data_scale=data_scale)
