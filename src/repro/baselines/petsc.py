"""A PETSc-like baseline: explicit partitioning and message passing.

This is the comparator the paper measures against — an industry-standard
sparse library where the *user* specifies the distribution.  Matrices are
stored the way PETSc's MPIAIJ stores them: each rank owns a block of
rows, split into a **diagonal block** (columns the rank owns, no
communication) and an **off-diagonal block** (ghost columns gathered from
other ranks with a VecScatter).  Ghost exchange moves exactly the
referenced entries — tighter than Legate's bounding-rect images — and
per-operation overhead is a C library's, not a Python tasking runtime's.

Numerics are exact (NumPy on rank-local blocks); time is simulated on
the same machine model the Legate stack uses, so throughput comparisons
are apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sps

from repro.machine import MachineScope, Processor

# PETSc-grade constants: a compiled library's per-call cost.
PETSC_OP_OVERHEAD = 2.0e-6
MPI_ALLREDUCE_HOP = 2.0e-6


class MPISim:
    """Per-rank clocks + explicit messages over the machine's channels."""

    def __init__(
        self,
        scope: MachineScope,
        data_scale: float = 1.0,
        comm_scale: Optional[float] = None,
    ):
        self.scope = scope
        self.machine = scope.machine
        self.machine.reset_channels()
        self.procs: List[Processor] = scope.processors
        self.busy = [0.0 for _ in self.procs]
        self.data_scale = float(data_scale)
        self.comm_scale = float(comm_scale) if comm_scale is not None else self.data_scale
        self.bytes_sent = 0
        self.messages = 0
        self.allreduces = 0

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.procs)

    def compute(self, rank: int, flops: float, nbytes: float) -> None:
        """Charge a roofline kernel on one rank."""
        proc = self.procs[rank]
        t = proc.kernel_time(flops * self.data_scale, nbytes * self.data_scale)
        self.busy[rank] += PETSC_OP_OVERHEAD + t

    def send(self, src: int, dst: int, nbytes: int) -> None:
        """Point-to-point transfer; the receiver blocks until delivery."""
        nbytes = int(nbytes * self.comm_scale)
        channels = self.machine.channels_between(
            self.procs[src].memory, self.procs[dst].memory
        )
        start = max([self.busy[src]] + [c.busy_until for c in channels])
        latency = sum(c.latency for c in channels)
        bandwidth = min(c.bandwidth for c in channels)
        finish = start + latency + nbytes / bandwidth
        for chan in channels:
            chan.busy_until = finish
        self.busy[dst] = max(self.busy[dst], finish)
        self.bytes_sent += nbytes
        self.messages += 1

    def allreduce(self, nbytes: int = 8) -> None:
        """MPI_Allreduce: tree latency + per-hop overhead."""
        self.allreduces += 1
        t0 = max(self.busy)
        if self.size > 1:
            hops = math.ceil(math.log2(self.size))
            hop_latency = self.machine.interconnect_latency(self.scope.nodes)
            t0 += hops * (
                hop_latency
                + nbytes / self.machine.config.nic_bandwidth
                + MPI_ALLREDUCE_HOP
            )
        self.busy = [t0 for _ in self.busy]

    def barrier(self) -> float:
        """Synchronize all ranks; returns the common time."""
        t = max(self.busy)
        self.busy = [t for _ in self.busy]
        return t

    def elapsed(self) -> float:
        """Latest rank clock."""
        return max(self.busy)


def _row_ranges(n: int, size: int) -> List[Tuple[int, int]]:
    base, extra = divmod(n, size)
    ranges = []
    lo = 0
    for r in range(size):
        hi = lo + base + (1 if r < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class PetscVec:
    """A distributed vector: global truth + ownership ranges."""

    def __init__(self, sim: MPISim, data: np.ndarray):
        self.sim = sim
        self.data = np.asarray(data, dtype=np.float64).copy()
        self.ranges = _row_ranges(len(self.data), sim.size)

    @classmethod
    def zeros(cls, sim: MPISim, n: int) -> "PetscVec":
        """A zero vector."""
        return cls(sim, np.zeros(n))

    @property
    def n(self) -> int:
        """Global length."""
        return len(self.data)

    def local_n(self, rank: int) -> int:
        """Rows owned by a rank."""
        lo, hi = self.ranges[rank]
        return hi - lo

    def copy(self) -> "PetscVec":
        """VecCopy: duplicate with streaming cost."""
        out = PetscVec(self.sim, self.data)
        self._charge_streaming(1)
        return out

    def _charge_streaming(self, nvecs: int) -> None:
        for rank in range(self.sim.size):
            ln = self.local_n(rank)
            self.sim.compute(rank, ln, nvecs * 2.0 * 8.0 * ln)

    def axpy(self, alpha: float, x: "PetscVec") -> None:
        """y += alpha * x."""
        self.data += alpha * x.data
        self._charge_streaming(2)

    def aypx(self, alpha: float, x: "PetscVec") -> None:
        """y = alpha * y + x."""
        self.data = alpha * self.data + x.data
        self._charge_streaming(2)

    def scale(self, alpha: float) -> None:
        """y *= alpha."""
        self.data *= alpha
        self._charge_streaming(1)

    def dot(self, other: "PetscVec") -> float:
        """Global dot product (compute + MPI_Allreduce)."""
        for rank in range(self.sim.size):
            ln = self.local_n(rank)
            self.sim.compute(rank, 2.0 * ln, 2.0 * 8.0 * ln)
        self.sim.allreduce()
        return float(np.dot(self.data, other.data))

    def norm(self) -> float:
        """2-norm via the dot product."""
        return math.sqrt(max(self.dot(self), 0.0))


class MatMPIAIJ:
    """Row-distributed CSR with diagonal/off-diagonal block split."""

    def __init__(self, sim: MPISim, mat: sps.csr_matrix):
        self.sim = sim
        self.mat = mat.tocsr()
        n, m = mat.shape
        self.shape = (n, m)
        self.row_ranges = _row_ranges(n, sim.size)
        self.col_ranges = _row_ranges(m, sim.size)
        # Per rank: nnz split into diagonal-block and off-diagonal-block,
        # plus the exact ghost entries needed from each owner rank.
        self.diag_nnz: List[int] = []
        self.offdiag_nnz: List[int] = []
        # ghost_from[rank][owner] = number of x entries gathered
        self.ghost_from: List[Dict[int, int]] = []
        col_owner = np.empty(m, dtype=np.int64)
        for r, (lo, hi) in enumerate(self.col_ranges):
            col_owner[lo:hi] = r
        for r, (lo, hi) in enumerate(self.row_ranges):
            block = self.mat[lo:hi]
            cols = block.indices
            owners = col_owner[cols]
            local = owners == r
            self.diag_nnz.append(int(local.sum()))
            self.offdiag_nnz.append(int((~local).sum()))
            ghosts: Dict[int, int] = {}
            ghost_cols = np.unique(cols[~local])
            for owner, count in zip(
                *np.unique(col_owner[ghost_cols], return_counts=True)
            ):
                ghosts[int(owner)] = int(count)
            self.ghost_from.append(ghosts)

    @property
    def nnz(self) -> int:
        """Global stored entries."""
        return self.mat.nnz

    def mult(self, x: PetscVec, y: Optional[PetscVec] = None) -> PetscVec:
        """y = A @ x with VecScatter ghost gather + local SpMV."""
        if y is None:
            y = PetscVec.zeros(self.sim, self.shape[0])
        # Ghost exchange: exact referenced entries, per (owner -> rank).
        for rank, ghosts in enumerate(self.ghost_from):
            for owner, count in ghosts.items():
                self.sim.send(owner, rank, count * 8)
        # Local SpMV on each rank (diag + offdiag blocks).
        for rank, (lo, hi) in enumerate(self.row_ranges):
            nnz = self.diag_nnz[rank] + self.offdiag_nnz[rank]
            rows = hi - lo
            flops = 2.0 * nnz
            # vals + 64-bit column indices (the artifact's PETSc build
            # uses --with-64-bit-indices) + gathered x, plus indptr and y.
            nbytes = nnz * (8.0 + 8.0 + 8.0) + rows * (8.0 + 8.0)
            self.sim.compute(rank, flops, nbytes)
        y.data[...] = self.mat @ x.data
        return y


class KSP:
    """PETSc-style Krylov solver context (CG)."""

    def __init__(self, sim: MPISim, A: MatMPIAIJ):
        self.sim = sim
        self.A = A
        self.iterations = 0

    def solve_cg(
        self,
        b: PetscVec,
        x: Optional[PetscVec] = None,
        rtol: float = 1e-6,
        maxiter: int = 1000,
    ) -> PetscVec:
        """Hand-written CG, the way the paper's PETSc benchmark drives it."""
        if x is None:
            x = PetscVec.zeros(self.sim, b.n)
        r = b.copy()
        Ax = self.A.mult(x)
        r.axpy(-1.0, Ax)
        p = r.copy()
        rr = r.dot(r)
        tol2 = (rtol**2) * max(b.dot(b), 1e-300)
        self.iterations = 0
        for _ in range(maxiter):
            if rr <= tol2:
                break
            q = self.A.mult(p)
            alpha = rr / p.dot(q)
            x.axpy(alpha, p)
            r.axpy(-alpha, q)
            rr_next = r.dot(r)
            beta = rr_next / rr
            p.aypx(beta, r)
            rr = rr_next
            self.iterations += 1
        return x
