"""Comparator systems from the paper's evaluation.

* :mod:`repro.baselines.petsc` — a PETSc-like, explicitly-partitioned
  message-passing sparse library (MPIAIJ matrices with diagonal/
  off-diagonal blocks and VecScatter-style ghost exchange) with a
  hand-written CG.  A genuinely different code path from the Legate
  stack, the way PETSc is in the paper.
* :mod:`repro.baselines.systems` — factories configuring the *same*
  Legate stack as each single-device system the paper compares against:
  SciPy (one CPU core, no tasking overhead) and CuPy (one GPU, small
  launch overhead, cuSPARSE-flavoured kernel costs).
"""

from repro.baselines.petsc import KSP, MatMPIAIJ, MPISim, PetscVec
from repro.baselines.systems import (
    SystemSpec,
    cupy_system,
    legate_cpu_system,
    legate_gpu_system,
    petsc_sim,
    scipy_system,
)

__all__ = [
    "KSP",
    "MPISim",
    "MatMPIAIJ",
    "PetscVec",
    "SystemSpec",
    "cupy_system",
    "legate_cpu_system",
    "legate_gpu_system",
    "petsc_sim",
    "scipy_system",
]
