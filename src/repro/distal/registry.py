"""Kernel registry + generic launcher for generated kernels.

The registry is the static/dynamic boundary of the system: kernels are
generated ahead of time per (statement, format, processor kind) and
cached; at runtime the sparse library dispatches into the registry and
the generic :func:`launch` translates the kernel's declared constraint
set into an :class:`~repro.constraints.AutoTask` (the paper's Fig. 4
launching code is exactly this translation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.constraints import AutoTask, Store
from repro.distal import codegen
from repro.distal.codegen import KernelSpec
from repro.distal.formats import Format
from repro.distal.library import STATEMENTS, row_distributed_schedule
from repro.legion.future import Future
from repro.legion.partition import Partition
from repro.legion.runtime import Runtime
from repro.machine import ProcessorKind

GeneratedKernel = KernelSpec


class KernelRegistry:
    """Cache of generated kernels keyed by (statement, format, kind)."""

    def __init__(self):
        self._cache: Dict[tuple, KernelSpec] = {}

    def get(
        self, statement_key: str, fmt: Format, proc_kind: ProcessorKind
    ) -> KernelSpec:
        """Generate-or-fetch the kernel for (statement, format, kind)."""
        key = (statement_key, fmt.name, proc_kind)
        spec = self._cache.get(key)
        if spec is None:
            statement = STATEMENTS.get(statement_key)
            if statement is None:
                raise KeyError(f"unknown statement {statement_key!r}")
            schedule = row_distributed_schedule(proc_kind, statement)
            # check=True: every kernel entering the registry has passed
            # the statement/schedule/source legality lint.
            spec = codegen.generate(
                statement, fmt, schedule, proc_kind, check=True
            )
            self._cache[key] = spec
        return spec

    def generated_count(self) -> int:
        """Number of cached generated kernels."""
        return len(self._cache)


_registry = KernelRegistry()


def get_registry() -> KernelRegistry:
    """The process-wide kernel registry."""
    return _registry


def launch(
    spec: KernelSpec,
    runtime: Runtime,
    stores: Dict[str, Store],
    explicit_partitions: Optional[Dict[str, Partition]] = None,
    scalars: Optional[Dict[str, object]] = None,
) -> Optional[Future]:
    """Build and execute the AutoTask a generated kernel declares."""
    task = AutoTask(runtime, spec.name, spec.kernel, spec.cost)
    for name, role in spec.args:
        store = stores[name]
        if role == "in":
            task.add_input(name, store)
        elif role == "out":
            task.add_output(name, store)
        elif role == "inout":
            task.add_inout(name, store)
        elif role == "reduce":
            task.add_reduction(name, store)
        else:  # pragma: no cover - template authoring error
            raise ValueError(f"unknown role {role!r}")
    for con in spec.constraints:
        tag = con[0]
        if tag == "align":
            task.add_alignment_constraint(stores[con[1]], stores[con[2]])
        elif tag == "image_range":
            task.add_image_constraint(
                stores[con[1]], [stores[d] for d in con[2]], kind="range"
            )
        elif tag == "image_coord":
            task.add_image_constraint(
                stores[con[1]], [stores[d] for d in con[2]], kind="coordinate"
            )
        elif tag == "broadcast":
            task.add_broadcast(stores[con[1]])
        elif tag == "explicit":
            if not explicit_partitions or con[1] not in explicit_partitions:
                raise ValueError(
                    f"kernel {spec.name} requires an explicit partition "
                    f"for {con[1]!r}"
                )
            task.add_explicit_partition(
                stores[con[1]], explicit_partitions[con[1]]
            )
        else:  # pragma: no cover - template authoring error
            raise ValueError(f"unknown constraint {tag!r}")
    for key, value in (scalars or {}).items():
        task.add_scalar_arg(key, value)
    return task.execute()
