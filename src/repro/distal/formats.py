"""Per-mode tensor formats, following the TACO/DISTAL format language.

A tensor's format is a tuple of per-dimension *modes*: ``Dense`` stores a
dimension explicitly, ``Compressed`` stores only the coordinates with
non-zeros.  The classic matrix formats are mode combinations:

* CSR  = ``(Dense, Compressed)``
* CSC  = ``(Dense, Compressed)`` over ``(j, i)`` (column-major iteration)
* COO  = ``(Singleton,)``-style coordinate lists (we model it directly)
* DIA  = diagonal storage (a DISTAL extension in this reproduction)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Mode(enum.Enum):
    """Per-dimension storage: dense or compressed."""
    DENSE = "d"
    COMPRESSED = "s"


Dense = Mode.DENSE
Compressed = Mode.COMPRESSED


@dataclass(frozen=True)
class Format:
    """An ordered tuple of modes plus a storage-name for dispatch."""

    modes: Tuple[Mode, ...]
    name: str

    def __str__(self) -> str:
        return self.name


CSR = Format((Dense, Compressed), "csr")
BSR = Format((Dense, Compressed), "bsr")
CSC = Format((Dense, Compressed), "csc")
COO = Format((Compressed, Compressed), "coo")
DIA = Format((Dense, Dense), "dia")
# Padded row-major storage: every row stores the same number of lanes.
ELL = Format((Dense, Dense), "ell")
# SELL-C-sigma: rows sorted by length in sigma-windows, packed in
# C-row slices each padded only to its own widest row.
SELL = Format((Dense, Compressed), "sell")
# Hybrid ELL + spill: the first K entries per row padded ELL-style,
# the overflow kept compressed (CSR-style ranges).
HYB = Format((Dense, Compressed), "hyb")
DENSE_VECTOR = Format((Dense,), "dense1")
DENSE_MATRIX = Format((Dense, Dense), "dense2")
