"""Code generation: tensor-algebra statements to NumPy shard kernels.

For each supported (statement, format) pair the generator emits Python
*source text* implementing the shard kernel — vectorized NumPy operating
on global arrays with shard bounds, exactly the shape of the
DISTAL-generated C++ task in the paper's Fig. 7 — plus a cost function
for the roofline timing model and the constraint set the launcher must
declare (the paper's Fig. 4).  Source is compiled with ``exec`` and kept
on the generated-kernel object for inspection and testing.

Cost functions consult the runtime configuration for the effects the
paper discusses: the local-reshape penalty Legate pays before calling
cuSPARSE/MKL on its global-format pieces (§3), and the inefficiency of
the baseline's SDDMM kernel relative to DISTAL's (Fig. 12).
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.distal.formats import Format
from repro.distal.ir import Assignment
from repro.distal.schedule import Schedule
from repro.machine import ProcessorKind


@dataclass
class KernelSpec:
    """Everything a launcher needs to run a generated kernel."""

    name: str
    # kernel/cost are filled in after the lint pass accepts the source.
    kernel: Optional[Callable]
    cost: Optional[Callable]
    source: str
    # (argument name, role) where role in {in, out, inout, reduce}
    args: List[Tuple[str, str]]
    # Declarative constraint set, e.g. ("align", "y", "pos") or
    # ("image_range", "pos", ("crd", "vals")).
    constraints: List[tuple]
    scalar_names: List[str] = field(default_factory=list)


class UnsupportedStatement(NotImplementedError):
    """No template exists for (statement, format)."""
    pass


_PROLOGUE = "import numpy as np\n\n"

# Compilation is memoized: generated sources recur — format kernels once
# per (statement, format, kind), merged nests once per window shape —
# and exec'ing the same text again buys nothing.  Keyed by (name,
# source); the injected ``env`` is always the same constant table for a
# given name/source, so it does not key the cache.
_COMPILE_CACHE: Dict[Tuple[str, str], Dict[str, Callable]] = {}
_COMPILE_STATS = {"hits": 0, "misses": 0}


def _compile(
    name: str, source: str, env: Optional[Dict[str, object]] = None
) -> Dict[str, Callable]:
    key = (name, source)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _COMPILE_STATS["hits"] += 1
        return cached
    _COMPILE_STATS["misses"] += 1
    namespace: Dict[str, object] = dict(env or {})
    exec(compile(_PROLOGUE + source, f"<distal:{name}>", "exec"), namespace)
    _COMPILE_CACHE[key] = namespace
    return namespace  # type: ignore[return-value]


def compile_cache_stats() -> Dict[str, int]:
    """A copy of the exec-compilation cache hit/miss counters."""
    return dict(_COMPILE_STATS)


def clear_compile_cache() -> None:
    """Drop memoized namespaces and zero the counters (tests)."""
    _COMPILE_CACHE.clear()
    _COMPILE_STATS["hits"] = 0
    _COMPILE_STATS["misses"] = 0


def _flop_factor() -> str:
    """Complex arithmetic costs ~4x real (expression used inside costs)."""
    return "(4.0 if np.iscomplexobj(vals) else 1.0)"


# ----------------------------------------------------------------------
# Templates.  Each returns (kernel_source, args, constraints).
# ----------------------------------------------------------------------


def _template_csr_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    reshape = "rows * 8.0 if ctx.config.local_reshape_penalty else 0.0"
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in CSR; row-split (paper Fig. 7)."""
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; x = ctx.arrays["x"]; y = ctx.arrays["y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        y[rlo:rhi] = 0
        return
    contrib = vals[jlo:jhi] * x[crd[jlo:jhi]]
    csum = np.empty(contrib.shape[0] + 1, dtype=contrib.dtype)
    csum[0] = 0
    np.cumsum(contrib, out=csum[1:])
    y[rlo:rhi] = csum[hi - jlo] - csum[lo - jlo]


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    rows = ctx.rects["pos"].volume() // 2
    isz = vals.dtype.itemsize
    flops = 2.0 * nnz * {_flop_factor()}
    nbytes = nnz * (8.0 + isz + isz) + rows * (16.0 + isz)
    nbytes += {reshape}
    return flops, nbytes
'''
    args = [("y", "out"), ("pos", "in"), ("crd", "in"), ("vals", "in"), ("x", "in")]
    constraints = [
        ("align", "y", "pos"),
        ("image_range", "pos", ("crd", "vals")),
        ("image_coord", "crd", ("x",)),
    ]
    return source, args, constraints


def _template_csr_spmv_transpose(kind: ProcessorKind) -> Tuple[str, list, list]:
    reshape = "rows * 8.0 if ctx.config.local_reshape_penalty else 0.0"
    source = f'''
def kernel(ctx):
    """y(j) = A(i,j) * x(i) with A in CSR; row-split scatter-add.

    Also serves CSC SpMV (column-compressed A with x/y roles flipped).
    The caller must zero y before the launch (REDUCE privilege).
    """
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; x = ctx.arrays["x"]; y = ctx.arrays["y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        return
    contrib = vals[jlo:jhi] * np.repeat(x[rlo:rhi], hi - lo)
    np.add.at(y, crd[jlo:jhi], contrib)


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    rows = ctx.rects["pos"].volume() // 2
    isz = vals.dtype.itemsize
    flops = 2.0 * nnz * {_flop_factor()}
    # Scatter writes are read-modify-write on y.
    nbytes = nnz * (8.0 + isz + 2.0 * isz) + rows * (16.0 + isz)
    nbytes += {reshape}
    return flops, nbytes
'''
    args = [("y", "reduce"), ("pos", "in"), ("crd", "in"), ("vals", "in"), ("x", "in")]
    constraints = [
        ("align", "x", "pos"),
        ("image_range", "pos", ("crd", "vals")),
        ("image_coord", "crd", ("y",)),
    ]
    return source, args, constraints


def _template_csr_spmm(kind: ProcessorKind) -> Tuple[str, list, list]:
    reshape = "rows * 8.0 if ctx.config.local_reshape_penalty else 0.0"
    source = f'''
def kernel(ctx):
    """Y(i,k) = A(i,j) * X(j,k) with A in CSR; row-split."""
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; X = ctx.arrays["X"]; Y = ctx.arrays["Y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        Y[rlo:rhi, :] = 0
        return
    contrib = vals[jlo:jhi, None] * X[crd[jlo:jhi], :]
    csum = np.empty((contrib.shape[0] + 1, contrib.shape[1]), dtype=contrib.dtype)
    csum[0] = 0
    np.cumsum(contrib, axis=0, out=csum[1:])
    Y[rlo:rhi, :] = csum[hi - jlo] - csum[lo - jlo]


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    rows = ctx.rects["pos"].volume() // 2
    k = ctx.arrays["X"].shape[1]
    isz = vals.dtype.itemsize
    flops = 2.0 * nnz * k * {_flop_factor()}
    nbytes = nnz * (8.0 + isz) + nnz * k * isz + rows * (16.0 + k * isz)
    nbytes += {reshape}
    return flops, nbytes
'''
    args = [("Y", "out"), ("pos", "in"), ("crd", "in"), ("vals", "in"), ("X", "in")]
    constraints = [
        ("align", "Y", "pos"),
        ("image_range", "pos", ("crd", "vals")),
        ("image_coord", "crd", ("X",)),
    ]
    return source, args, constraints


def _template_csr_spmm_transpose(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """Y(j,k) = A(i,j) * X(i,k) with A in CSR; row-split scatter-add.

    The caller must zero Y before the launch (REDUCE privilege).
    """
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; X = ctx.arrays["X"]; Y = ctx.arrays["Y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        return
    rows = np.repeat(np.arange(rlo, rhi), hi - lo)
    contrib = vals[jlo:jhi, None] * X[rows, :]
    np.add.at(Y, crd[jlo:jhi], contrib)


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    rows = ctx.rects["pos"].volume() // 2
    k = ctx.arrays["X"].shape[1]
    isz = vals.dtype.itemsize
    flops = 2.0 * nnz * k * {_flop_factor()}
    nbytes = nnz * (8.0 + isz) + 3.0 * nnz * k * isz + rows * 16.0
    return flops, nbytes
'''
    args = [("Y", "reduce"), ("pos", "in"), ("crd", "in"), ("vals", "in"), ("X", "in")]
    constraints = [
        ("align", "X", "pos"),
        ("image_range", "pos", ("crd", "vals")),
        ("image_coord", "crd", ("Y",)),
    ]
    return source, args, constraints


def _template_csr_sddmm(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """R(i,j) = B(i,j) * C(i,k) * D(j,k): sampled dense-dense matmul.

    B is CSR; R shares B's structure, so only R's values are produced.
    D is passed pre-transposed as a (cols, k) matrix.
    """
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; C = ctx.arrays["C"]; D = ctx.arrays["D"]
    out = ctx.arrays["out_vals"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        return
    rows = np.repeat(np.arange(rlo, rhi), hi - lo)
    cols = crd[jlo:jhi]
    out[jlo:jhi] = vals[jlo:jhi] * np.einsum(
        "nk,nk->n", C[rows, :], D[cols, :]
    )


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    rows = ctx.rects["pos"].volume() // 2
    k = ctx.arrays["C"].shape[1]
    isz = vals.dtype.itemsize
    ineff = ctx.config.sddmm_inefficiency
    flops = 2.0 * nnz * k * {_flop_factor()} * ineff
    nbytes = (nnz * (8.0 + 2.0 * isz) + 2.0 * nnz * k * isz + rows * 16.0) * ineff
    return flops, nbytes
'''
    args = [
        ("out_vals", "out"),
        ("pos", "in"),
        ("crd", "in"),
        ("vals", "in"),
        ("C", "in"),
        ("D", "in"),
    ]
    constraints = [
        ("align", "C", "pos"),
        ("image_range", "pos", ("crd", "vals", "out_vals")),
        ("image_coord", "crd", ("D",)),
    ]
    return source, args, constraints


def _template_csr_row_sums(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) with A in CSR: row sums."""
    pos = ctx.arrays["pos"]; vals = ctx.arrays["vals"]; y = ctx.arrays["y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        y[rlo:rhi] = 0
        return
    csum = np.empty(jhi - jlo + 1, dtype=vals.dtype)
    csum[0] = 0
    np.cumsum(vals[jlo:jhi], out=csum[1:])
    y[rlo:rhi] = csum[hi - jlo] - csum[lo - jlo]


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["vals"].volume()
    rows = ctx.rects["pos"].volume() // 2
    isz = vals.dtype.itemsize
    return nnz * {_flop_factor()}, nnz * isz + rows * (16.0 + isz)
'''
    args = [("y", "out"), ("pos", "in"), ("vals", "in")]
    constraints = [
        ("align", "y", "pos"),
        ("image_range", "pos", ("vals",)),
    ]
    return source, args, constraints


def _template_csr_col_sums(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(j) = A(i,j) with A in CSR: column sums (scatter-add).

    The caller must zero y before the launch (REDUCE privilege).
    """
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; y = ctx.arrays["y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        return
    np.add.at(y, crd[jlo:jhi], vals[jlo:jhi])


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    isz = vals.dtype.itemsize
    return nnz * {_flop_factor()}, nnz * (8.0 + 3.0 * isz)
'''
    args = [("y", "reduce"), ("pos", "in"), ("crd", "in"), ("vals", "in")]
    constraints = [
        ("image_range", "pos", ("crd", "vals")),
        ("image_coord", "crd", ("y",)),
    ]
    return source, args, constraints


def _template_csr_diagonal(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,i) with A in CSR: diagonal extraction."""
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; y = ctx.arrays["y"]
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    y[rlo:rhi] = 0
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        return
    rows = np.repeat(np.arange(rlo, rhi), hi - lo)
    cols = crd[jlo:jhi]
    hits = cols == rows
    y[rows[hits]] = vals[jlo:jhi][hits]


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["crd"].volume()
    rows = ctx.rects["pos"].volume() // 2
    isz = vals.dtype.itemsize
    return float(nnz), nnz * (8.0 + isz) + rows * (16.0 + isz)
'''
    args = [("y", "out"), ("pos", "in"), ("crd", "in"), ("vals", "in")]
    constraints = [
        ("align", "y", "pos"),
        ("image_range", "pos", ("crd", "vals")),
    ]
    return source, args, constraints


def _template_dia_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in DIA (data stored (n, ndiags))."""
    data = ctx.arrays["data"]; offsets = ctx.arrays["offsets"]
    x = ctx.arrays["x"]; y = ctx.arrays["y"]
    yr = ctx.rects["y"]
    rlo, rhi = yr.lo[0], yr.hi[0]
    if rhi <= rlo:
        return
    m = x.shape[0]
    y[rlo:rhi] = 0
    for d in range(offsets.shape[0]):
        off = int(offsets[d])
        ilo = max(rlo, -off)
        ihi = min(rhi, m - off)
        if ihi <= ilo:
            continue
        y[ilo:ihi] += data[ilo:ihi, d] * x[ilo + off : ihi + off]


def cost(ctx):
    vals = ctx.arrays["data"]
    ndiags = ctx.arrays["offsets"].shape[0]
    rows = ctx.rects["y"].volume()
    isz = vals.dtype.itemsize
    flops = 2.0 * rows * ndiags * {_flop_factor().replace("vals", "ctx.arrays['data']")}
    nbytes = rows * ndiags * 2.0 * isz + rows * 2.0 * isz
    return flops, nbytes
'''
    args = [("y", "out"), ("data", "in"), ("offsets", "in"), ("x", "in")]
    constraints = [
        ("align", "y", "data"),
        ("broadcast", "offsets"),
        ("explicit", "x"),  # launcher supplies a shifted-tile partition
    ]
    return source, args, constraints


def _template_coo_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in COO; nnz-split scatter-add.

    The caller must zero y before the launch (REDUCE privilege).
    """
    row = ctx.arrays["row"]; col = ctx.arrays["col"]
    vals = ctx.arrays["vals"]; x = ctx.arrays["x"]; y = ctx.arrays["y"]
    kr = ctx.rects["vals"]
    klo, khi = kr.lo[0], kr.hi[0]
    if khi <= klo:
        return
    np.add.at(y, row[klo:khi], vals[klo:khi] * x[col[klo:khi]])


def cost(ctx):
    vals = ctx.arrays["vals"]
    nnz = ctx.rects["vals"].volume()
    isz = vals.dtype.itemsize
    flops = 2.0 * nnz * {_flop_factor()}
    return flops, nnz * (16.0 + 4.0 * isz)
'''
    args = [("y", "reduce"), ("row", "in"), ("col", "in"), ("vals", "in"), ("x", "in")]
    constraints = [
        ("align", "row", "col"),
        ("align", "row", "vals"),
        ("image_coord", "row", ("y",)),
        ("image_coord", "col", ("x",)),
    ]
    return source, args, constraints


def _template_bsr_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in BSR (block size R x C).

    vals is an (nblocks, R*C) region; pos compresses *block* rows and
    crd holds *block* column indices.  The paper plans BSR as the next
    DISTAL-generated format (§5.4).
    """
    pos = ctx.arrays["pos"]; crd = ctx.arrays["crd"]
    vals = ctx.arrays["vals"]; x = ctx.arrays["x"]; y = ctx.arrays["y"]
    R = ctx.scalar("R"); C = ctx.scalar("C")
    pr = ctx.rects["pos"]
    rlo, rhi = pr.lo[0], pr.hi[0]
    if rhi <= rlo:
        return
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    jlo = int(lo[0]); jhi = int(hi[-1])
    if jhi <= jlo:
        y[rlo * R : rhi * R] = 0
        return
    blocks = vals[jlo:jhi].reshape(-1, R, C)
    xblk = x.reshape(-1, C)[crd[jlo:jhi]]
    contrib = np.einsum("bij,bj->bi", blocks, xblk)
    csum = np.empty((contrib.shape[0] + 1, R), dtype=contrib.dtype)
    csum[0] = 0
    np.cumsum(contrib, axis=0, out=csum[1:])
    y[rlo * R : rhi * R] = (csum[hi - jlo] - csum[lo - jlo]).reshape(-1)


def cost(ctx):
    vals = ctx.arrays["vals"]
    R = ctx.scalar("R"); C = ctx.scalar("C")
    nblocks = ctx.rects["crd"].volume()
    brows = ctx.rects["pos"].volume() // 2
    isz = vals.dtype.itemsize
    flops = 2.0 * nblocks * R * C * {_flop_factor()}
    nbytes = nblocks * (8.0 + R * C * isz + C * isz) + brows * (16.0 + R * isz)
    return flops, nbytes
'''
    args = [("y", "out"), ("pos", "in"), ("crd", "in"), ("vals", "in"), ("x", "in")]
    constraints = [
        ("image_range", "pos", ("crd", "vals")),
        ("explicit", "y"),  # block-row tiles of pos, scaled by R
        ("explicit", "x"),  # block-column image of crd, scaled by C
    ]
    return source, args, constraints, ["R", "C"]


def _template_ell_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in ELL (data/cols stored (n, K)).

    Rebuilds the shard's CSR-ordered contribution stream from the
    padded lanes (row-major masking preserves ascending-column order)
    and applies the same prefix-sum reduction as the CSR kernel, so
    results are bitwise identical to CSR execution.
    """
    data = ctx.arrays["data"]; cols = ctx.arrays["cols"]
    rowlen = ctx.arrays["rowlen"]; x = ctx.arrays["x"]; y = ctx.arrays["y"]
    yr = ctx.rects["y"]
    rlo, rhi = yr.lo[0], yr.hi[0]
    if rhi <= rlo:
        return
    rl = rowlen[rlo:rhi]
    prod = data[rlo:rhi] * x[cols[rlo:rhi]]
    mask = np.arange(prod.shape[1])[None, :] < rl[:, None]
    contrib = prod[mask]
    csum = np.empty(contrib.shape[0] + 1, dtype=prod.dtype)
    csum[0] = 0
    np.cumsum(contrib, out=csum[1:])
    hi = np.cumsum(rl)
    y[rlo:rhi] = csum[hi] - csum[hi - rl]


def cost(ctx):
    from repro.analysis.costmodel import ell_spmv_shard_cost

    vals = ctx.arrays["data"]
    dr = ctx.rects["data"]
    rows = dr.hi[0] - dr.lo[0]
    padded = dr.volume()
    nnz = int(ctx.arrays["rowlen"][dr.lo[0]:dr.hi[0]].sum())
    return ell_spmv_shard_cost(
        rows, nnz, padded, vals.dtype.itemsize, {_flop_factor()}
    )
'''
    args = [
        ("y", "out"), ("data", "in"), ("cols", "in"),
        ("rowlen", "in"), ("x", "in"),
    ]
    constraints = [
        ("align", "y", "data"),
        ("align", "cols", "data"),
        ("align", "rowlen", "data"),
        ("broadcast", "x"),
    ]
    return source, args, constraints


def _template_sell_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in SELL-C-sigma.

    data/cols are packed 1-D slice storage; per *slot* metadata gives
    the original row (perm), its length, and the packed location of its
    lane stream (start + k*stride).  Sigma windows and slices never
    cross row-tile boundaries, so each shard re-sorts its slots back to
    ascending original row, rebuilds the exact CSR contribution order,
    and reduces with the same prefix-sum trick — bitwise identical to
    CSR execution.
    """
    data = ctx.arrays["data"]; cols = ctx.arrays["cols"]
    perm = ctx.arrays["perm"]; rowlen = ctx.arrays["rowlen"]
    start = ctx.arrays["start"]; stride = ctx.arrays["stride"]
    x = ctx.arrays["x"]; y = ctx.arrays["y"]
    yr = ctx.rects["y"]
    rlo, rhi = yr.lo[0], yr.hi[0]
    if rhi <= rlo:
        return
    order = np.argsort(perm[rlo:rhi], kind="stable")
    rl = rowlen[rlo:rhi][order]
    st = start[rlo:rhi][order]
    sd = stride[rlo:rhi][order]
    total = int(rl.sum())
    if total == 0:
        y[rlo:rhi] = 0
        return
    hi = np.cumsum(rl)
    lo = hi - rl
    k_within = np.arange(total) - np.repeat(lo, rl)
    idx = np.repeat(st, rl) + k_within * np.repeat(sd, rl)
    contrib = data[idx] * x[cols[idx]]
    csum = np.empty(total + 1, dtype=contrib.dtype)
    csum[0] = 0
    np.cumsum(contrib, out=csum[1:])
    y[rlo:rhi] = csum[hi] - csum[lo]


def cost(ctx):
    from repro.analysis.costmodel import sell_spmv_shard_cost

    vals = ctx.arrays["data"]
    yr = ctx.rects["y"]
    rows = yr.hi[0] - yr.lo[0]
    padded = ctx.rects["data"].volume()
    nnz = int(ctx.arrays["rowlen"][yr.lo[0]:yr.hi[0]].sum())
    C = ctx.scalar("C")
    slices = (rows + C - 1) // C
    return sell_spmv_shard_cost(
        rows, nnz, padded, slices, vals.dtype.itemsize, {_flop_factor()}
    )
'''
    args = [
        ("y", "out"), ("data", "in"), ("cols", "in"), ("perm", "in"),
        ("rowlen", "in"), ("start", "in"), ("stride", "in"), ("x", "in"),
    ]
    # The packed slice stores follow the conversion-time tile layout;
    # the launcher supplies it for every store so kernel tiles match
    # the sigma/slice windows exactly.
    constraints = [
        ("explicit", "y"),
        ("explicit", "data"),
        ("explicit", "cols"),
        ("explicit", "perm"),
        ("explicit", "rowlen"),
        ("explicit", "start"),
        ("explicit", "stride"),
        ("broadcast", "x"),
    ]
    return source, args, constraints, ["C"]


def _template_hyb_spmv(kind: ProcessorKind) -> Tuple[str, list, list]:
    source = f'''
def kernel(ctx):
    """y(i) = A(i,j) * x(j) with A in HYB (ELL part + CSR-style spill).

    Each row's first min(len, K) entries live in the padded ELL part,
    the overflow in compressed spill ranges; both halves are stored in
    ascending-column order, so interleaving them per row rebuilds the
    exact CSR contribution stream — bitwise identical to CSR execution.
    """
    data = ctx.arrays["data"]; cols = ctx.arrays["cols"]
    rowlen = ctx.arrays["rowlen"]; spos = ctx.arrays["spill_pos"]
    scrd = ctx.arrays["spill_crd"]; svals = ctx.arrays["spill_vals"]
    x = ctx.arrays["x"]; y = ctx.arrays["y"]
    yr = ctx.rects["y"]
    rlo, rhi = yr.lo[0], yr.hi[0]
    if rhi <= rlo:
        return
    K = data.shape[1]
    rl = rowlen[rlo:rhi]
    ell_n = np.minimum(rl, K)
    sp_n = rl - ell_n
    total = int(rl.sum())
    if total == 0:
        y[rlo:rhi] = 0
        return
    hi = np.cumsum(rl)
    lo = hi - rl
    prod = data[rlo:rhi] * x[cols[rlo:rhi]]
    contrib = np.empty(total, dtype=prod.dtype)
    lanes = np.arange(K)[None, :]
    mask = lanes < ell_n[:, None]
    contrib[(lo[:, None] + lanes)[mask]] = prod[mask]
    nsp = int(sp_n.sum())
    if nsp:
        k_within = np.arange(nsp) - np.repeat(np.cumsum(sp_n) - sp_n, sp_n)
        idx = np.repeat(spos[rlo:rhi, 0], sp_n) + k_within
        contrib[np.repeat(lo + ell_n, sp_n) + k_within] = (
            svals[idx] * x[scrd[idx]]
        )
    csum = np.empty(total + 1, dtype=contrib.dtype)
    csum[0] = 0
    np.cumsum(contrib, out=csum[1:])
    y[rlo:rhi] = csum[hi] - csum[lo]


def cost(ctx):
    from repro.analysis.costmodel import hyb_spmv_shard_cost

    vals = ctx.arrays["data"]
    yr = ctx.rects["y"]
    rows = yr.hi[0] - yr.lo[0]
    rl = ctx.arrays["rowlen"][yr.lo[0]:yr.hi[0]]
    nnz = int(rl.sum())
    ell_padded = ctx.rects["data"].volume()
    spill = nnz - int(np.minimum(rl, ctx.arrays["data"].shape[1]).sum())
    return hyb_spmv_shard_cost(
        rows, nnz, ell_padded, spill, vals.dtype.itemsize, {_flop_factor()}
    )
'''
    args = [
        ("y", "out"), ("data", "in"), ("cols", "in"), ("rowlen", "in"),
        ("spill_pos", "in"), ("spill_crd", "in"), ("spill_vals", "in"),
        ("x", "in"),
    ]
    constraints = [
        ("align", "y", "data"),
        ("align", "cols", "data"),
        ("align", "rowlen", "data"),
        ("align", "spill_pos", "data"),
        ("image_range", "spill_pos", ("spill_crd", "spill_vals")),
        ("broadcast", "x"),
    ]
    return source, args, constraints


_TEMPLATES: Dict[Tuple[str, str], Callable] = {
    ("y(i)=A(i,j)*x(j)", "csr"): _template_csr_spmv,
    ("y(j)=A(i,j)*x(i)", "csr"): _template_csr_spmv_transpose,
    ("Y(i,k)=A(i,j)*X(j,k)", "csr"): _template_csr_spmm,
    ("Y(j,k)=A(i,j)*X(i,k)", "csr"): _template_csr_spmm_transpose,
    ("R(i,j)=B(i,j)*C(i,k)*D(j,k)", "csr"): _template_csr_sddmm,
    ("y(i)=A(i,j)", "csr"): _template_csr_row_sums,
    ("y(j)=A(i,j)", "csr"): _template_csr_col_sums,
    ("y(i)=A(i,i)", "csr"): _template_csr_diagonal,
    ("y(i)=A(i,j)*x(j)", "dia"): _template_dia_spmv,
    ("y(i)=A(i,j)*x(j)", "coo"): _template_coo_spmv,
    ("y(i)=A(i,j)*x(j)", "bsr"): _template_bsr_spmv,
    ("y(i)=A(i,j)*x(j)", "ell"): _template_ell_spmv,
    ("y(i)=A(i,j)*x(j)", "sell"): _template_sell_spmv,
    ("y(i)=A(i,j)*x(j)", "hyb"): _template_hyb_spmv,
}


def supported_statements() -> List[Tuple[str, str]]:
    """All (statement key, format name) template pairs."""
    return sorted(_TEMPLATES.keys())


def generate(
    statement: Assignment,
    fmt: Format,
    schedule: Optional[Schedule] = None,
    proc_kind: ProcessorKind = ProcessorKind.CPU_SOCKET,
    check: bool = True,
) -> KernelSpec:
    """Compile a statement for a format and processor kind.

    With ``check=True`` (the default) the statement, schedule and
    emitted source pass the pre-codegen legality lint
    (:mod:`repro.analysis.lint`); an ill-formed statement, an illegal
    schedule, or generated code referencing undeclared ``ctx`` names
    raises :class:`~repro.analysis.lint.DistalLintError` instead of
    producing a kernel.  Generation happens once per (statement,
    format, kind) — the registry caches the result — so the lint adds
    no per-launch cost.
    """
    key = statement.key()
    template = _TEMPLATES.get((key, fmt.name))
    if template is None:
        raise UnsupportedStatement(
            f"no template for statement {key!r} with format {fmt.name!r}"
        )
    parts = template(proc_kind)
    source, args, constraints = parts[:3]
    scalar_names = list(parts[3]) if len(parts) > 3 else []
    source = textwrap.dedent(source).strip() + "\n"
    name = f"{fmt.name}:{key}:{proc_kind.value}"
    spec = KernelSpec(
        name=name,
        kernel=None,
        cost=None,
        source=source,
        args=args,
        constraints=constraints,
        scalar_names=scalar_names,
    )
    if check:
        from repro.analysis.lint import DistalLintError, lint_all

        issues = lint_all(statement, schedule, spec)
        if issues:
            raise DistalLintError(issues)
    namespace = _compile(name, source)
    spec.kernel = namespace["kernel"]
    spec.cost = namespace["cost"]
    return spec


# ----------------------------------------------------------------------
# Merged loop nests for merge-safe fused groups (kernel fusion).
# ----------------------------------------------------------------------
@dataclass
class NestSpec:
    """A combined loop nest for one merge-safe fused group.

    ``kernel``/``cost`` run against the *fused* launch context (mangled
    ``"<i>.<name>"`` requirement and scalar names, exactly as
    :func:`repro.legion.fusion.fuse` builds it), so the fused launch
    swaps them in for its replay closures unchanged.  ``source`` is the
    exec'd text, kept for inspection like :class:`KernelSpec`.
    """

    name: str
    kernel: Callable
    cost: Callable
    source: str
    temps_eliminated: int


_MAX_NEST_NAME = 96


def _nest_ops() -> Dict[str, Callable]:
    # Lazy: repro.numeric's package import reaches back into the
    # runtime, which imports this module during a flush.
    from repro.numeric import optable

    ops: Dict[str, Callable] = {}
    ops.update(optable.UNOPS)
    ops.update(optable.BINOPS)
    return ops


def generate_nest(plan) -> NestSpec:
    """Emit ONE exec'd NumPy source for a merge-safe group.

    ``plan`` is a :class:`repro.analysis.depend.NestPlan` (duck-typed —
    this module stays import-independent of the analyzer).  Each step
    becomes one statement of the nest: its postfix program is folded
    into a single expression at generation time, the value is cast to
    the output dtype with the same ``.astype`` semantics NumPy applies
    on ``out[...] = expr`` stores (bitwise-identical to replay), then
    stored — unless the backing region is a dead elided temporary, in
    which case the value lives only as the nest variable later steps
    read.  The emitted ``cost`` charges the merged model: per-step
    flops identical to replay, bytes deduplicated to external reads
    plus surviving writes — one cost entry for the whole group.

    Op callables are injected as the ``_OPS`` environment (the shared
    :mod:`repro.numeric.optable`), so the nest runs the exact same
    NumPy functions in the exact same order the replay path would.
    Compilation is memoized (:func:`_compile`): recurring window
    shapes re-exec nothing.
    """
    kernel_lines: List[str] = [
        "def _cast(value, dt):",
        "    value = np.asarray(value)",
        "    return value if value.dtype == dt else value.astype(dt)",
        "",
        "",
        "def kernel(ctx):",
    ]
    for step in plan.steps:
        stack: List[str] = []
        for kind, arg in step.program:
            if kind == "view":
                stack.append(f"ctx.view({arg!r})")
            elif kind == "scalar":
                stack.append(f"ctx.scalar({arg!r})")
            elif kind == "var":
                stack.append(f"v{arg}")
            elif kind == "un":
                stack.append(f"_OPS[{arg!r}]({stack.pop()})")
            else:  # bin
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(f"_OPS[{arg!r}]({lhs}, {rhs})")
        (expr,) = stack
        kept = "" if step.store else "  [temp eliminated]"
        kernel_lines.append(f"    # [{step.index}] {step.name}{kept}")
        kernel_lines.append(
            f"    v{step.index} = _cast({expr}, np.dtype({step.dtype!r}))"
        )
        if step.store:
            kernel_lines.append(f"    ctx.view({step.out!r})[...] = v{step.index}")

    cost_lines: List[str] = ["def cost(ctx):", "    flops = 0.0"]
    for step in plan.steps:
        if step.weight:
            cost_lines.append(
                f"    flops += {step.weight!r} * "
                f"ctx.rects[{step.out!r}].volume()"
            )
    cost_lines.append("    nbytes = 0.0")
    for name in tuple(plan.reads) + tuple(plan.charged_writes):
        cost_lines.append(
            f"    nbytes += ctx.rects[{name!r}].volume() * "
            f"ctx.arrays[{name!r}].dtype.itemsize"
        )
    cost_lines.append("    return flops, nbytes")

    source = "\n".join(kernel_lines) + "\n\n\n" + "\n".join(cost_lines) + "\n"
    joined = "+".join(step.name for step in plan.steps)
    if len(joined) > _MAX_NEST_NAME:
        joined = joined[: _MAX_NEST_NAME - 3] + "..."
    name = f"nest{{{len(plan.steps)}}}:{joined}"
    namespace = _compile(name, source, env={"_OPS": _nest_ops()})
    return NestSpec(
        name=name,
        kernel=namespace["kernel"],
        cost=namespace["cost"],
        source=source,
        temps_eliminated=plan.temps_eliminated,
    )
