"""The statements Legate Sparse generates with DISTAL (paper §5.1).

Each entry pairs a tensor-algebra statement with the schedule used to
distribute it — the row-distributed schedule of the paper's Fig. 6 —
so the registry can generate kernels for any supported format and
processor kind on demand.
"""

from __future__ import annotations

from typing import Dict

from repro.distal.ir import Assignment, IndexVar, Tensor
from repro.distal.schedule import Schedule
from repro.machine import ProcessorKind

i, j, k = IndexVar("i"), IndexVar("j"), IndexVar("k")
io, ii = IndexVar("io"), IndexVar("ii")

y = Tensor("y", 1)
x = Tensor("x", 1)
A = Tensor("A", 2)
B = Tensor("B", 2)
C = Tensor("C", 2)
D = Tensor("D", 2)
X = Tensor("X", 2)
Y = Tensor("Y", 2)
R = Tensor("R", 2)


STATEMENTS: Dict[str, Assignment] = {
    stmt.key(): stmt
    for stmt in [
        y[i] << A[i, j] * x[j],  # SpMV
        y[j] << A[i, j] * x[i],  # SpMV transpose / CSC SpMV
        Y[i, k] << A[i, j] * X[j, k],  # SpMM
        Y[j, k] << A[i, j] * X[i, k],  # SpMM transpose
        R[i, j] << B[i, j] * C[i, k] * D[j, k],  # SDDMM
        y[i] << A[i, j],  # row sums
        y[j] << A[i, j],  # column sums
        y[i] << A[i, i],  # diagonal
    ]
}


def row_distributed_schedule(
    kind: ProcessorKind, statement: Assignment | None = None
) -> Schedule:
    """The paper's Fig. 6 schedule: divide rows, distribute, parallelize.

    When a statement is given, the communicated operands are its actual
    tensors (so the schedule passes the legality lint for statements
    whose operands are not literally ``y``/``A``/``x``, e.g. SpMM).
    """
    tensors = statement.tensors if statement is not None else [y, A, x]
    return (
        Schedule()
        .divide(i, io, ii)
        .distribute(io)
        .communicate(io, list(tensors))
        .parallelize(ii, kind)
    )
