"""Tensor-algebra IR: index variables, accesses, products, assignments.

Statements are written the way the paper's Fig. 6 writes them::

    i, j = IndexVar("i"), IndexVar("j")
    y, A, x = Tensor("y", 1), Tensor("A", 2), Tensor("x", 1)
    stmt = (y[i] << A[i, j] * x[j])

``Assignment.key()`` produces the canonical string (``"y(i)=A(i,j)*x(j)"``)
the code generator dispatches on.  Index variables appearing only on the
right-hand side are reduction variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union


@dataclass(frozen=True)
class IndexVar:
    """A named index variable (i, j, k)."""
    name: str

    def __str__(self) -> str:
        return self.name


class Tensor:
    """A tensor operand of known order."""

    def __init__(self, name: str, order: int):
        self.name = name
        self.order = order

    def __getitem__(self, indices) -> "Access":
        if isinstance(indices, IndexVar):
            indices = (indices,)
        if len(indices) != self.order:
            raise ValueError(
                f"tensor {self.name} has order {self.order}, "
                f"got {len(indices)} indices"
            )
        return Access(self, tuple(indices))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor({self.name}, order={self.order})"


@dataclass(frozen=True)
class Access:
    """A tensor access like A(i, j)."""
    tensor: Tensor
    indices: Tuple[IndexVar, ...]

    def __mul__(self, other: Union["Access", "Product"]) -> "Product":
        if isinstance(other, Access):
            return Product((self, other))
        if isinstance(other, Product):
            return Product((self,) + other.factors)
        return NotImplemented

    def __lshift__(self, rhs) -> "Assignment":
        return Assignment(self, _as_product(rhs))

    def __str__(self) -> str:
        idx = ",".join(str(i) for i in self.indices)
        return f"{self.tensor.name}({idx})"


@dataclass(frozen=True)
class Product:
    """A product of accesses."""
    factors: Tuple[Access, ...]

    def __mul__(self, other) -> "Product":
        if isinstance(other, Access):
            return Product(self.factors + (other,))
        if isinstance(other, Product):
            return Product(self.factors + other.factors)
        return NotImplemented

    def __str__(self) -> str:
        return "*".join(str(f) for f in self.factors)


def _as_product(rhs) -> Product:
    if isinstance(rhs, Access):
        return Product((rhs,))
    if isinstance(rhs, Product):
        return rhs
    raise TypeError(f"cannot assign from {type(rhs).__name__}")


@dataclass(frozen=True)
class Assignment:
    """A tensor-algebra statement lhs = product."""
    lhs: Access
    rhs: Product

    def key(self) -> str:
        """Canonical form used for code-generation dispatch."""
        return f"{self.lhs}={self.rhs}"

    @property
    def reduction_vars(self) -> List[IndexVar]:
        """Index variables appearing only on the RHS."""
        lhs_vars = set(self.lhs.indices)
        seen: List[IndexVar] = []
        for access in self.rhs.factors:
            for var in access.indices:
                if var not in lhs_vars and var not in seen:
                    seen.append(var)
        return seen

    @property
    def index_vars(self) -> List[IndexVar]:
        """All index variables, LHS first."""
        seen: List[IndexVar] = list(self.lhs.indices)
        for var in self.reduction_vars:
            seen.append(var)
        return seen

    @property
    def tensors(self) -> List[Tensor]:
        """All tensor operands, LHS first, de-duplicated by name."""
        out: List[Tensor] = []
        names = set()
        for access in [self.lhs, *self.rhs.factors]:
            if access.tensor.name not in names:
                names.add(access.tensor.name)
                out.append(access.tensor)
        return out

    def validate(self) -> None:
        """Raise :class:`repro.analysis.lint.DistalLintError` if ill-formed.

        Checks that every LHS index variable is bound by an RHS access
        and every tensor is used with a consistent order — the
        pre-codegen legality pass of :mod:`repro.analysis.lint`.
        """
        from repro.analysis.lint import DistalLintError, lint_statement

        issues = lint_statement(self)
        if issues:
            raise DistalLintError(issues)

    def __str__(self) -> str:
        return self.key()
