"""A miniature DISTAL: tensor-algebra kernel generation (paper §5.1).

DISTAL compiles a tensor-algebra DSL plus a format and schedule
specification into Legion tasks.  This package reproduces that pipeline
at the scale the paper uses it: a small IR for tensor-algebra statements
(:mod:`repro.distal.ir`), per-mode format annotations
(:mod:`repro.distal.formats`), a scheduling language mirroring the
paper's Fig. 6 (:mod:`repro.distal.schedule`), and a code generator
(:mod:`repro.distal.codegen`) that emits *source text* for vectorized
NumPy shard kernels together with roofline cost functions, specialized
per sparse format and per processor kind.  Generated kernels are
compiled with ``exec`` and cached in a registry
(:mod:`repro.distal.registry`), from which the sparse library dispatches
— the static/dynamic split the paper's design centers on.
"""

from repro.distal.formats import Compressed, Dense, Format, Mode
from repro.distal.ir import Access, Assignment, IndexVar, Tensor
from repro.distal.schedule import Schedule
from repro.distal.registry import GeneratedKernel, KernelRegistry, get_registry

__all__ = [
    "Access",
    "Assignment",
    "Compressed",
    "Dense",
    "Format",
    "GeneratedKernel",
    "IndexVar",
    "KernelRegistry",
    "Mode",
    "Schedule",
    "Tensor",
    "get_registry",
]
