"""The scheduling language of the paper's Fig. 6.

A schedule describes the distributed algorithm for a statement:
``divide`` splits an index variable, ``distribute`` places the outer
variable across processors, ``communicate`` declares which operands are
exchanged at that level, and ``parallelize`` maps the inner variable to a
processor's execution resources.  The reproduction's code generator uses
the schedule to decide the partitioned (distributed) dimension and the
target processor kind; the data-distribution input language of DISTAL is
not used, matching the paper (§5.1: the constraint solver supplies the
distributions at runtime, so only the first three input languages are
exercised).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.distal.ir import IndexVar, Tensor
from repro.machine import ProcessorKind


@dataclass
class Schedule:
    """The Fig. 6 scheduling chain (divide/distribute/…)."""
    divided: Optional[Tuple[IndexVar, IndexVar, IndexVar]] = None
    distributed: Optional[IndexVar] = None
    communicated: List[Tensor] = field(default_factory=list)
    parallel_kind: ProcessorKind = ProcessorKind.CPU_SOCKET

    def divide(self, var: IndexVar, outer: IndexVar, inner: IndexVar) -> "Schedule":
        """Split an index variable into outer and inner."""
        self.divided = (var, outer, inner)
        return self

    def distribute(self, var: IndexVar) -> "Schedule":
        """Place the outer variable across processors."""
        if self.divided is None or var != self.divided[1]:
            raise ValueError("distribute expects the divided outer variable")
        self.distributed = var
        return self

    def communicate(self, var: IndexVar, tensors: List[Tensor]) -> "Schedule":
        """Declare the operands exchanged at this level."""
        if var != self.distributed:
            raise ValueError("communicate applies to the distributed variable")
        self.communicated = list(tensors)
        return self

    def parallelize(self, var: IndexVar, kind: ProcessorKind) -> "Schedule":
        """Map the inner variable to processor resources."""
        if self.divided is None or var != self.divided[2]:
            raise ValueError("parallelize expects the divided inner variable")
        self.parallel_kind = kind
        return self

    @property
    def distributed_var_name(self) -> Optional[str]:
        """Name of the distributed index variable."""
        if self.divided is None:
            return None
        return self.divided[0].name

    def check(self, statement) -> None:
        """Raise :class:`repro.analysis.lint.DistalLintError` when this
        schedule is illegal for ``statement`` (unknown divided variable,
        distribution without division, communicated tensors that do not
        occur in the statement)."""
        from repro.analysis.lint import DistalLintError, lint_schedule

        issues = lint_schedule(statement, self)
        if issues:
            raise DistalLintError(issues)
