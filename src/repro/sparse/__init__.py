"""``repro.sparse``: the user-facing name of the sparse library.

Mirrors the paper's import idiom (Fig. 1)::

    try:
        import repro.numeric as np
        import repro.sparse as sp
    except ImportError:
        import numpy as np
        import scipy.sparse as sp

Everything is re-exported from :mod:`repro.core`.
"""

from repro.core import *  # noqa: F401,F403
from repro.core import __all__  # noqa: F401
