"""AutoTask: the constraint-declaring task launch API (paper Fig. 4).

Library operations create an :class:`AutoTask`, register their stores
with privileges, declare partitioning constraints, and call
:meth:`AutoTask.execute`.  The solver picks concrete partitions, the
runtime performs mapping/coherence/timing, and written stores have their
key partitions updated so later operations (from any library) can reuse
them.
"""

from __future__ import annotations

from time import perf_counter as _perf
from typing import Any, Dict, List, Optional

from repro.analysis import ValidationError
from repro.constraints.constraint import Align, Broadcast, Explicit, Image, ImageKind
from repro.constraints.solver import (
    rebuild_solution, solution_plan, solve_partitions, solve_signature,
)
from repro.constraints.store import Store
from repro.legion.future import Future
from repro.legion.partition import Tiling
from repro.legion.privilege import Privilege
from repro.legion.runtime import Runtime
from repro.legion.task import (
    CostFn, KernelFn, Pointwise, Requirement, TaskLaunch, default_cost,
)


class AutoTask:
    """A task launch described by stores + constraints."""

    def __init__(
        self,
        runtime: Runtime,
        name: str,
        kernel: KernelFn,
        cost_fn: Optional[CostFn] = None,
        colors: Optional[int] = None,
    ):
        self.runtime = runtime
        self.name = name
        self.kernel = kernel
        self.cost_fn = cost_fn or default_cost
        self.colors = colors
        self._args: List[tuple] = []  # (name, store, privilege)
        self._constraints: List[object] = []
        self._scalars: Dict[str, Any] = {}
        self._scalar_reduction: Optional[str] = None
        self._by_name: Dict[str, Store] = {}
        self._pointwise: Optional[Pointwise] = None

    # ------------------------------------------------------------------
    # Region arguments
    # ------------------------------------------------------------------
    def _add(self, name: str, store: Store, privilege: Privilege) -> None:
        if name in self._by_name:
            raise ValueError(f"duplicate argument name {name!r}")
        self._args.append((name, store, privilege))
        self._by_name[name] = store

    def add_input(self, name: str, store: Store) -> None:
        """Register a read-only store under a kernel name."""
        self._add(name, store, Privilege.READ)

    def add_output(self, name: str, store: Store, discard: bool = True) -> None:
        """Register an output store (write-discard by default)."""
        priv = Privilege.WRITE_DISCARD if discard else Privilege.WRITE
        self._add(name, store, priv)

    def add_inout(self, name: str, store: Store) -> None:
        """Register a read-write store."""
        self._add(name, store, Privilege.WRITE)

    def add_reduction(self, name: str, store: Store) -> None:
        """Register a REDUCE-privilege (accumulated) store."""
        self._add(name, store, Privilege.REDUCE)

    def add_scalar_arg(self, name: str, value: Any) -> None:
        """Attach a scalar (or Future) argument."""
        self._scalars[name] = value

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_alignment_constraint(self, left: Store, right: Store) -> None:
        """Require identical partitions (Fig. 4)."""
        self._constraints.append(Align(left, right))

    def add_image_constraint(
        self, source: Store, dests, kind: str = "range"
    ) -> None:
        """Partition dests as the image of source."""
        image_kind = ImageKind(kind)
        if isinstance(dests, Store):
            dests = [dests]
        for dest in dests:
            self._constraints.append(Image(source, dest, image_kind))

    def add_broadcast(self, store: Store) -> None:
        """Replicate the store to every shard."""
        self._constraints.append(Broadcast(store))

    def add_explicit_partition(self, store: Store, partition) -> None:
        """Use a caller-supplied partition."""
        self._constraints.append(Explicit(store, partition))

    def set_scalar_reduction(self, op: str) -> None:
        """Reduce kernel return values into a Future."""
        self._scalar_reduction = op

    def set_pointwise(
        self, *ops: str, expr=None, out: Optional[str] = None, statement=None
    ) -> None:
        """Mark the task element-wise over aligned operands.

        Pointwise tasks are eligible for the runtime's deferred fusion
        window (:mod:`repro.legion.fusion`); ``ops`` names the
        element-wise operations for reporting.  Only set this on kernels
        that touch exactly their shard's rect of every argument.

        ``expr``/``out``/``statement`` optionally expose the kernel
        body IR (see :class:`~repro.legion.task.Pointwise`) so the
        dependence analyzer can prove the launch body-mergeable into a
        single combined loop nest; omitting them keeps the kernel
        opaque (task-fusible, never body-merged).
        """
        self._pointwise = Pointwise(
            tuple(ops),
            expr=tuple(expr) if expr is not None else None,
            out=out,
            statement=statement,
        )

    # ------------------------------------------------------------------
    def _check_write_disjointness(self, solution) -> None:
        """Validation mode: exclusive-write partitions must be disjoint.

        Two colors writing overlapping rects under WRITE/WRITE_DISCARD
        race — only REDUCE tolerates aliased outputs (folds commute).
        The event-log checker would flag this after the fact; failing
        here names the offending launch while it is on the stack.
        """
        for name, store, privilege in self._args:
            if privilege not in (Privilege.WRITE, Privilege.WRITE_DISCARD):
                continue
            partition = solution[store.region.uid]
            if partition.color_count > 1 and not partition.is_disjoint():
                raise ValidationError(
                    f"task {self.name!r}: {privilege.value} argument "
                    f"{name!r} has an aliased partition — overlapping "
                    f"shards would race on region {store.region.name!r}"
                )

    def execute(self) -> Optional[Future]:
        """Solve constraints, launch, update key partitions."""
        colors = self.colors if self.colors is not None else self.runtime.num_procs
        if self._pointwise is None or any(
            isinstance(c, Image) for c in self._constraints
        ):
            # Non-pointwise (or image-constrained) tasks flush the
            # deferred window *before* solving: image partitions read
            # region data host-side at solve time, and pending fused
            # launches may still owe writes to those regions.
            self.runtime.flush_window()
        plan = self.runtime.plan_trace
        if plan is not None:
            # Advisor capture (repro.analysis.plan): record the launch —
            # stores, privileges, constraints, resolved color count — so
            # the static predictor can replay the solver and mapper.
            plan.record_task_op(
                self.name, self._args, self._constraints, self._scalars,
                self._scalar_reduction, colors, self.cost_fn,
                pointwise=self._pointwise,
            )
            if plan.deferred:
                # Deferred trace: skip solve/launch entirely; scalar
                # reductions resolve to the plan's policy placeholder.
                if self._scalar_reduction is not None:
                    return Future(plan.deferred_scalar(self.name), 0.0)
                return None
        stores = [store for _, store, _ in self._args]
        rt = self.runtime
        t0 = _perf()
        solution = sig = None
        if rt.config.fastpath:
            # Memoized solve: iterative solvers re-launch structurally
            # identical tasks every step; the signature embeds key
            # partitions, so repartitions miss instead of going stale.
            sig = solve_signature(
                stores,
                self._constraints,
                colors,
                reuse_partitions=rt.config.reuse_partitions,
                exact_images=rt.config.exact_images,
            )
            if sig is not None:
                plan_entry = rt._solve_memo.get(sig)
                if plan_entry is not None:
                    solution = rebuild_solution(plan_entry, stores, colors)
        if solution is None:
            solution = solve_partitions(
                stores,
                self._constraints,
                colors,
                reuse_partitions=rt.config.reuse_partitions,
                exact_images=rt.config.exact_images,
                image_cache=rt._image_cache,
            )
            if sig is not None:
                splan = solution_plan(solution, stores)
                if splan is not None:
                    rt._solve_memo.put(sig, splan)
                rt.profiler.fastpath_counters["solve_misses"] += 1
        else:
            rt.profiler.fastpath_counters["solve_hits"] += 1
        rt.profiler.record_host_phase("constraint-solve", _perf() - t0)
        if self.runtime.config.validate:
            self._check_write_disjointness(solution)
        requirements = []
        fold_partition = None
        for name, store, privilege in self._args:
            partition = solution[store.region.uid]
            requirements.append(
                Requirement(name, store.region, partition, privilege)
            )
            if privilege == Privilege.REDUCE and fold_partition is None:
                if isinstance(store.key_partition, Tiling) and (
                    store.key_partition.color_count == colors
                ):
                    fold_partition = store.key_partition
                else:
                    fold_partition = Tiling.create(store.region, colors)

        launch = TaskLaunch(
            name=self.name,
            requirements=requirements,
            kernel=self.kernel,
            cost_fn=self.cost_fn,
            scalars=self._scalars,
            reduction=self._scalar_reduction,
            fold_partition=fold_partition,
            pointwise=self._pointwise,
        )
        result = self.runtime.launch(launch)

        for _name, store, privilege in self._args:
            if not privilege.writes:
                continue
            partition = solution[store.region.uid]
            if privilege == Privilege.REDUCE:
                store.set_key_partition(fold_partition)
            elif isinstance(partition, Tiling):
                store.set_key_partition(partition)
        return result
