"""The constraint language: align, image, broadcast (paper §4.1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constraints.store import Store


class ImageKind(enum.Enum):
    """Which image operation relates the source and destination.

    ``RANGE``: the source holds ``{lo, hi}`` ranges (a ``pos`` region) and
    the destination partition is the union of ranges per color (Fig. 2a).
    ``COORDINATE``: the source holds indices (a ``crd`` region) and the
    destination partition is the set of referenced elements (Fig. 2b).
    """

    RANGE = "range"
    COORDINATE = "coordinate"


@dataclass(frozen=True)
class Align:
    """The two stores must use identical partitions (element-wise ops)."""

    left: Store
    right: Store


@dataclass(frozen=True)
class Image:
    """``dest``'s partition is the image of ``source``'s partition."""

    source: Store
    dest: Store
    kind: ImageKind


@dataclass(frozen=True)
class Broadcast:
    """The store is replicated to every shard (small/scalar operands)."""

    store: Store


@dataclass(frozen=True)
class Explicit:
    """The store uses a caller-supplied partition (manual partitioning).

    Used where the access pattern is structured but data-dependent in a
    way the image operator cannot express directly — e.g. the offset
    diagonals of a DIA matrix-vector product.
    """

    store: Store
    partition: object  # Partition; typed loosely to avoid an import cycle
