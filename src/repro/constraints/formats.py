"""Per-format partitioning constraint sets for sparse SpMV operands.

One place that states, declaratively, how each sparse format's stores
must be partitioned for a row-distributed SpMV — the same constraint
tags the DISTAL templates emit (:mod:`repro.distal.codegen`) and the
generic launcher translates (:mod:`repro.distal.registry`).  The
structural lint in :mod:`repro.distal` checks generated kernels against
their declared sets; this module is the authoritative catalogue the
auto-format work added for ELL / SELL-C-sigma / HYB, kept next to the
constraint system so a new format starts from its partitioning story.

Each entry is a tuple of constraint tuples in launcher syntax:

* ``("align", a, b)`` — stores ``a`` and ``b`` tile together on dim 0;
* ``("image_range", pos, (dests...))`` — ``pos`` ranges carve ``dests``;
* ``("broadcast", s)`` — every shard sees all of ``s``;
* ``("explicit", s)`` — the launcher supplies a layout-derived
  partition (SELL's packed slices follow conversion-time geometry).
"""

from __future__ import annotations

from typing import Dict, Tuple

ConstraintSet = Tuple[tuple, ...]

#: Row-distributed SpMV constraint sets, by format name.
SPMV_CONSTRAINTS: Dict[str, ConstraintSet] = {
    "csr": (
        ("align", "y", "pos"),
        ("image_range", "pos", ("crd", "vals")),
        ("image_coord", "crd", ("x",)),
    ),
    "coo": (
        ("align", "row", "col"),
        ("align", "row", "vals"),
        ("image_coord", "row", ("y",)),
        ("image_coord", "col", ("x",)),
    ),
    "dia": (
        ("align", "y", "data"),
        ("broadcast", "offsets"),
        ("explicit", "x"),
    ),
    "bsr": (
        ("image_range", "pos", ("crd", "vals")),
        ("explicit", "y"),
        ("explicit", "x"),
    ),
    "ell": (
        ("align", "y", "data"),
        ("align", "cols", "data"),
        ("align", "rowlen", "data"),
        ("broadcast", "x"),
    ),
    "sell": (
        ("explicit", "y"),
        ("explicit", "data"),
        ("explicit", "cols"),
        ("explicit", "perm"),
        ("explicit", "rowlen"),
        ("explicit", "start"),
        ("explicit", "stride"),
        ("broadcast", "x"),
    ),
    "hyb": (
        ("align", "y", "data"),
        ("align", "cols", "data"),
        ("align", "rowlen", "data"),
        ("align", "spill_pos", "data"),
        ("image_range", "spill_pos", ("spill_crd", "spill_vals")),
        ("broadcast", "x"),
    ),
}


def spmv_constraints(fmt: str) -> ConstraintSet:
    """The declared SpMV constraint set of a format.

    Raises ``KeyError`` for formats with no row-distributed SpMV story.
    """
    return SPMV_CONSTRAINTS[fmt]


def explicit_stores(fmt: str) -> Tuple[str, ...]:
    """Store names whose partitions the launcher must supply."""
    return tuple(
        con[1] for con in SPMV_CONSTRAINTS[fmt] if con[0] == "explicit"
    )
