"""Constraint-based automatic parallelization (paper §4.1, Lee et al.).

Instead of naming concrete partitions, tasks declare *constraints* on how
their region arguments must be partitioned — alignment for element-wise
operands, images for the indirection arrays of sparse formats, broadcast
for replicated operands.  A solver picks concrete partitions at launch
time, preferring partitions that already exist (partition reuse) so that
operations launched by independent libraries compose with no data
movement.  This is the layer both the dense library (`repro.numeric`) and
the sparse library (`repro.core`) are written against; neither is aware
of the other's implementation.
"""

from repro.constraints.store import Store
from repro.constraints.constraint import Align, Broadcast, Explicit, Image, ImageKind
from repro.constraints.formats import SPMV_CONSTRAINTS, explicit_stores, spmv_constraints
from repro.constraints.task import AutoTask
from repro.constraints.solver import ConstraintError, solve_partitions

__all__ = [
    "Align",
    "AutoTask",
    "Broadcast",
    "ConstraintError",
    "Explicit",
    "Image",
    "ImageKind",
    "SPMV_CONSTRAINTS",
    "Store",
    "explicit_stores",
    "solve_partitions",
    "spmv_constraints",
]
