"""The constraint solver: concrete partitions from declared constraints.

The solving procedure follows §4.1 of the paper:

1. Broadcast stores are replicated.
2. Alignment constraints are grouped with union-find; each group gets one
   partition.  If any member already has a *key partition* with the right
   color count that is valid for every member, the solver reuses the key
   partition of the **largest** member — keeping the biggest operand (for
   SpMV, the sparse matrix) in place and re-partitioning the least data.
   Otherwise a fresh even tiling is created.
3. Image constraints are resolved in dependency order: once a source's
   partition is known, the destination's partition is computed with the
   dependent-partitioning image operation (by range or by coordinate).

The constraints are designed so a solution always exists; contradictory
programs (aligning different-length stores, broadcasting an aligned
store) raise :class:`ConstraintError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.constraints.constraint import Align, Broadcast, Explicit, Image, ImageKind
from repro.constraints.store import Store
from repro.legion.partition import (
    ImageByCoordinate,
    ImageByRange,
    Partition,
    Replicate,
    Tiling,
)


class ConstraintError(ValueError):
    """The declared constraints are unsatisfiable."""


class _UnionFind:
    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._items: Dict[int, Store] = {}

    def add(self, store: Store) -> None:
        """Register a store."""
        uid = store.region.uid
        self._parent.setdefault(uid, uid)
        self._items.setdefault(uid, store)

    def find(self, uid: int) -> int:
        """Root of a region uid."""
        while self._parent[uid] != uid:
            self._parent[uid] = self._parent[self._parent[uid]]
            uid = self._parent[uid]
        return uid

    def union(self, a: Store, b: Store) -> None:
        """Merge two stores' groups."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a.region.uid), self.find(b.region.uid)
        if ra != rb:
            self._parent[ra] = rb

    def groups(self) -> List[List[Store]]:
        """The alignment groups."""
        by_root: Dict[int, List[Store]] = {}
        for uid, store in self._items.items():
            by_root.setdefault(self.find(uid), []).append(store)
        return list(by_root.values())


def solve_partitions(
    stores: Iterable[Store],
    constraints: Iterable[object],
    colors: int,
    reuse_partitions: bool = True,
    exact_images: bool = False,
) -> Dict[int, Partition]:
    """Assign a partition to every store; keys are region uids."""
    stores = list(stores)
    constraints = list(constraints)
    solution: Dict[int, Partition] = {}

    broadcast_uids = set()
    for con in constraints:
        if isinstance(con, Broadcast):
            uid = con.store.region.uid
            broadcast_uids.add(uid)
            solution[uid] = Replicate(con.store.region, colors)
        elif isinstance(con, Explicit):
            uid = con.store.region.uid
            broadcast_uids.add(uid)  # excluded from alignment groups
            solution[uid] = con.partition  # type: ignore[assignment]

    image_constraints = [c for c in constraints if isinstance(c, Image)]
    image_dest_uids = {c.dest.region.uid for c in image_constraints}

    uf = _UnionFind()
    for store in stores:
        uid = store.region.uid
        if uid in broadcast_uids or uid in image_dest_uids:
            continue
        uf.add(store)
    for con in constraints:
        if isinstance(con, Align):
            for side in (con.left, con.right):
                uid = side.region.uid
                if uid in broadcast_uids:
                    raise ConstraintError(
                        f"store {side.region.name} is both aligned and broadcast"
                    )
                if uid in image_dest_uids:
                    raise ConstraintError(
                        f"store {side.region.name} is both aligned and an "
                        "image destination"
                    )
            uf.union(con.left, con.right)

    for group in uf.groups():
        extents = {s.shape[0] for s in group}
        if len(extents) != 1:
            names = ", ".join(s.region.name for s in group)
            raise ConstraintError(
                f"aligned stores must agree on dimension 0: {names}"
            )
        partition = _choose_group_partition(group, colors, reuse_partitions)
        for store in group:
            solution[store.region.uid] = _retarget(partition, store)

    # Resolve image constraints in dependency order (images may chain:
    # pos -> crd -> x).
    pending = list(image_constraints)
    while pending:
        progressed = False
        remaining: List[Image] = []
        for con in pending:
            src_part = solution.get(con.source.region.uid)
            if src_part is None:
                remaining.append(con)
                continue
            solution[con.dest.region.uid] = _image(con, src_part, exact_images)
            progressed = True
        if not progressed:
            names = ", ".join(c.source.region.name for c in remaining)
            raise ConstraintError(
                f"cyclic or dangling image constraints via sources: {names}"
            )
        pending = remaining

    # Any unconstrained store falls back to its key partition or a tiling.
    for store in stores:
        uid = store.region.uid
        if uid in solution:
            continue
        if (
            reuse_partitions
            and store.has_matching_key(colors)
            and isinstance(store.key_partition, Tiling)
        ):
            solution[uid] = store.key_partition
        else:
            solution[uid] = Tiling.create(store.region, colors)
    return solution


def _choose_group_partition(
    group: List[Store], colors: int, reuse: bool
) -> Tiling:
    if reuse:
        candidates = [
            s
            for s in group
            if s.has_matching_key(colors) and isinstance(s.key_partition, Tiling)
        ]
        if candidates:
            largest = max(candidates, key=lambda s: s.nbytes)
            return largest.key_partition  # type: ignore[return-value]
    largest = max(group, key=lambda s: s.nbytes)
    return Tiling.create(largest.region, colors)


def _retarget(partition: Tiling, store: Store) -> Tiling:
    """Apply a tiling's boundaries to another same-length store."""
    if partition.region.uid == store.region.uid:
        return partition
    return Tiling(store.region, partition.boundaries)


def _image(con: Image, src_part: Partition, exact: bool = False) -> Partition:
    if con.kind == ImageKind.RANGE:
        return ImageByRange(con.source.region, src_part, con.dest.region)
    return ImageByCoordinate(
        con.source.region, src_part, con.dest.region, exact=exact
    )
