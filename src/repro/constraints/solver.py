"""The constraint solver: concrete partitions from declared constraints.

The solving procedure follows §4.1 of the paper:

1. Broadcast stores are replicated.
2. Alignment constraints are grouped with union-find; each group gets one
   partition.  If any member already has a *key partition* with the right
   color count that is valid for every member, the solver reuses the key
   partition of the **largest** member — keeping the biggest operand (for
   SpMV, the sparse matrix) in place and re-partitioning the least data.
   Otherwise a fresh even tiling is created.
3. Image constraints are resolved in dependency order: once a source's
   partition is known, the destination's partition is computed with the
   dependent-partitioning image operation (by range or by coordinate).

The constraints are designed so a solution always exists; contradictory
programs (aligning different-length stores, broadcasting an aligned
store) raise :class:`ConstraintError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.constraints.constraint import Align, Broadcast, Explicit, Image, ImageKind
from repro.constraints.store import Store
from repro.legion.partition import (
    ImageByCoordinate,
    ImageByRange,
    Partition,
    Replicate,
    Tiling,
)


class ConstraintError(ValueError):
    """The declared constraints are unsatisfiable."""


class _UnionFind:
    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._items: Dict[int, Store] = {}

    def add(self, store: Store) -> None:
        """Register a store."""
        uid = store.region.uid
        self._parent.setdefault(uid, uid)
        self._items.setdefault(uid, store)

    def find(self, uid: int) -> int:
        """Root of a region uid."""
        while self._parent[uid] != uid:
            self._parent[uid] = self._parent[self._parent[uid]]
            uid = self._parent[uid]
        return uid

    def union(self, a: Store, b: Store) -> None:
        """Merge two stores' groups."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a.region.uid), self.find(b.region.uid)
        if ra != rb:
            self._parent[ra] = rb

    def groups(self) -> List[List[Store]]:
        """The alignment groups."""
        by_root: Dict[int, List[Store]] = {}
        for uid, store in self._items.items():
            by_root.setdefault(self.find(uid), []).append(store)
        return list(by_root.values())


def solve_partitions(
    stores: Iterable[Store],
    constraints: Iterable[object],
    colors: int,
    reuse_partitions: bool = True,
    exact_images: bool = False,
    image_cache=None,
) -> Dict[int, Partition]:
    """Assign a partition to every store; keys are region uids.

    ``image_cache`` is the runtime's optional
    :class:`repro.legion.fastpath.ImagePartitionCache`: image
    constraints re-read source region data on every solve, and the
    cache skips that read when the source has not been written since
    (bitwise-identical geometry either way).
    """
    stores = list(stores)
    constraints = list(constraints)
    solution: Dict[int, Partition] = {}

    broadcast_uids = set()
    for con in constraints:
        if isinstance(con, Broadcast):
            uid = con.store.region.uid
            broadcast_uids.add(uid)
            solution[uid] = Replicate(con.store.region, colors)
        elif isinstance(con, Explicit):
            uid = con.store.region.uid
            broadcast_uids.add(uid)  # excluded from alignment groups
            solution[uid] = con.partition  # type: ignore[assignment]

    image_constraints = [c for c in constraints if isinstance(c, Image)]
    image_dest_uids = {c.dest.region.uid for c in image_constraints}

    uf = _UnionFind()
    for store in stores:
        uid = store.region.uid
        if uid in broadcast_uids or uid in image_dest_uids:
            continue
        uf.add(store)
    for con in constraints:
        if isinstance(con, Align):
            for side in (con.left, con.right):
                uid = side.region.uid
                if uid in broadcast_uids:
                    raise ConstraintError(
                        f"store {side.region.name} is both aligned and broadcast"
                    )
                if uid in image_dest_uids:
                    raise ConstraintError(
                        f"store {side.region.name} is both aligned and an "
                        "image destination"
                    )
            uf.union(con.left, con.right)

    for group in uf.groups():
        extents = {s.shape[0] for s in group}
        if len(extents) != 1:
            names = ", ".join(s.region.name for s in group)
            raise ConstraintError(
                f"aligned stores must agree on dimension 0: {names}"
            )
        partition = _choose_group_partition(group, colors, reuse_partitions)
        for store in group:
            solution[store.region.uid] = _retarget(partition, store)

    # Resolve image constraints in dependency order (images may chain:
    # pos -> crd -> x).
    pending = list(image_constraints)
    while pending:
        progressed = False
        remaining: List[Image] = []
        for con in pending:
            src_part = solution.get(con.source.region.uid)
            if src_part is None:
                remaining.append(con)
                continue
            if image_cache is not None:
                part = _image_cached(con, src_part, exact_images, image_cache)
            else:
                part = _image(con, src_part, exact_images)
            solution[con.dest.region.uid] = part
            progressed = True
        if not progressed:
            names = ", ".join(c.source.region.name for c in remaining)
            raise ConstraintError(
                f"cyclic or dangling image constraints via sources: {names}"
            )
        pending = remaining

    # Any unconstrained store falls back to its key partition or a tiling.
    for store in stores:
        uid = store.region.uid
        if uid in solution:
            continue
        if (
            reuse_partitions
            and store.has_matching_key(colors)
            and isinstance(store.key_partition, Tiling)
        ):
            solution[uid] = store.key_partition
        else:
            solution[uid] = Tiling.create(store.region, colors)
    return solution


_NOT_MEMOIZABLE = object()


def _key_sig(store: Store):
    kp = store.key_partition
    if kp is None:
        return None
    if type(kp) is Tiling:
        if kp.region.uid == store.region.uid:
            # The overwhelmingly common case: a store keyed by a tiling
            # of its own region.  Encoding it positionally (rather than
            # by uid) lets structurally identical launches over *fresh*
            # regions — an iterative solver's per-step temporaries —
            # share one memo entry.
            return ("own", kp.boundaries)
        return (kp.region.uid, kp.boundaries)
    return _NOT_MEMOIZABLE


def solve_signature(
    stores: Iterable[Store],
    constraints: Iterable[object],
    colors: int,
    reuse_partitions: bool = True,
    exact_images: bool = False,
) -> Optional[tuple]:
    """A hashable *structural* signature of a solve, or None.

    Two calls to :func:`solve_partitions` with equal signatures produce
    structurally interchangeable solutions, so the runtime's fast path
    memoizes on it (:class:`repro.legion.fastpath.SolveMemo`).  The
    signature is positional, not uid-based: stores are identified by
    their index in the call (with region aliasing captured by mapping
    every store to the first index sharing its region), and it embeds
    everything the solver consults — shape, logical nbytes (the
    largest-member choice), key-partition boundaries (with tilings of a
    store's own region marked ``"own"``), alignment/broadcast structure
    and the config flags.  Iterative solvers therefore hit the memo
    every step even though each step allocates fresh regions with fresh
    uids.  ``None`` means the solve is not memoizable: Image
    constraints read region *data* at partition-construction time,
    Explicit constraints carry arbitrary caller partitions, and
    non-Tiling key partitions fall outside the reuse rules the
    signature encodes.  A repartition changes a store's key-partition
    boundaries, so a stale entry can never match.  Signatures hold only
    ints, shape/boundary tuples and flags — never region or partition
    objects — so a memo entry cannot extend any region's lifetime.
    """
    stores = list(stores)
    pos_by_uid: Dict[int, int] = {}
    store_sig = []
    for i, store in enumerate(stores):
        key_sig = _key_sig(store)
        if key_sig is _NOT_MEMOIZABLE:
            return None
        region = store.region
        pos_by_uid.setdefault(region.uid, i)
        store_sig.append(
            (pos_by_uid[region.uid], region.shape, region.nbytes, key_sig)
        )

    def _ref(store: Store):
        # Constraint operands join the union-find even when absent from
        # ``stores`` and their sizes/keys feed the group's partition
        # choice; in-call operands are referenced by position, external
        # ones carry their full structural row (plus uid, since no
        # position pins them down).
        uid = store.region.uid
        pos = pos_by_uid.get(uid)
        if pos is not None:
            return pos
        key_sig = _key_sig(store)
        if key_sig is _NOT_MEMOIZABLE:
            return _NOT_MEMOIZABLE
        region = store.region
        return ("ext", uid, region.shape, region.nbytes, key_sig)

    con_sig = []
    for con in constraints:
        if isinstance(con, Align):
            lref, rref = _ref(con.left), _ref(con.right)
            if lref is _NOT_MEMOIZABLE or rref is _NOT_MEMOIZABLE:
                return None
            con_sig.append(("align", lref, rref))
        elif isinstance(con, Broadcast):
            ref = _ref(con.store)
            if ref is _NOT_MEMOIZABLE:
                return None
            con_sig.append(("bcast", ref))
        else:
            return None
    return (
        int(colors),
        bool(reuse_partitions),
        bool(exact_images),
        tuple(store_sig),
        tuple(con_sig),
    )


def solution_plan(
    solution: Dict[int, Partition], stores: Iterable[Store]
) -> Optional[tuple]:
    """A structural recipe for rebuilding ``solution``, or None.

    The fast path's solve memo must not hold partition objects: they
    reference regions, and a region kept alive by a cache entry never
    reaches its destructor, so its instances are never recycled into
    the allocation pool — silently changing mapping behaviour.  The
    plan records only ``(kind, position, boundaries)`` rows — positions
    into the call's store list, matching the positional signature —
    and :func:`rebuild_solution` re-derives concrete partitions from
    the *current* stores.  ``None`` means the solution mentions a
    region with no store in this call (an alignment-only operand) or a
    partition kind the plan cannot express.
    """
    stores = list(stores)
    pos_by_uid: Dict[int, int] = {}
    for i, store in enumerate(stores):
        pos_by_uid.setdefault(store.region.uid, i)
    plan = []
    for uid, part in solution.items():
        pos = pos_by_uid.get(uid)
        if pos is None:
            return None
        if type(part) is Tiling:
            if part.region.uid != uid:
                return None
            kind = "key" if part is stores[pos].key_partition else "tile"
            plan.append((kind, pos, part.boundaries))
        elif type(part) is Replicate:
            plan.append(("bcast", pos, None))
        else:
            return None
    return tuple(plan)


def rebuild_solution(
    plan: tuple, stores: Iterable[Store], colors: int
) -> Dict[int, Partition]:
    """Concrete partitions from a :func:`solution_plan` recipe.

    Mirrors what a fresh solve would return for an equal signature:
    ``key`` rows hand back the positioned store's current key-partition
    object (exactly what partition reuse would pick), ``tile`` rows
    construct a new Tiling of the positioned store's region with the
    recorded boundaries (exactly what retargeting would build),
    ``bcast`` rows replicate.
    """
    stores = list(stores)
    solution: Dict[int, Partition] = {}
    for kind, pos, boundaries in plan:
        store = stores[pos]
        uid = store.region.uid
        if kind == "bcast":
            solution[uid] = Replicate(store.region, colors)
            continue
        if kind == "key":
            kp = store.key_partition
            if (
                type(kp) is Tiling
                and kp.region.uid == uid
                and kp.boundaries == boundaries
            ):
                solution[uid] = kp
                continue
        solution[uid] = Tiling.trusted(store.region, boundaries)
    return solution


def _choose_group_partition(
    group: List[Store], colors: int, reuse: bool
) -> Tiling:
    if reuse:
        candidates = [
            s
            for s in group
            if s.has_matching_key(colors) and isinstance(s.key_partition, Tiling)
        ]
        if candidates:
            largest = max(candidates, key=lambda s: s.nbytes)
            return largest.key_partition  # type: ignore[return-value]
    largest = max(group, key=lambda s: s.nbytes)
    return Tiling.create(largest.region, colors)


def _retarget(partition: Tiling, store: Store) -> Tiling:
    """Apply a tiling's boundaries to another same-length store."""
    if partition.region.uid == store.region.uid:
        return partition
    return Tiling(store.region, partition.boundaries)


def _image(con: Image, src_part: Partition, exact: bool = False) -> Partition:
    if con.kind == ImageKind.RANGE:
        return ImageByRange(con.source.region, src_part, con.dest.region)
    return ImageByCoordinate(
        con.source.region, src_part, con.dest.region, exact=exact
    )


def _src_part_sig(part: Partition):
    """Hashable geometry of an image's source partition, or None.

    The image depends on the source partition only through its per-color
    rects: tilings are keyed by boundaries, precomputed-rect partitions
    (chained images, explicit lists) by the rect tuple itself.
    Replicates and other computed kinds return None — not memoizable.
    """
    if type(part) is Tiling:
        return ("tile", part.boundaries)
    rects = getattr(part, "_rects", None)
    if rects is None:
        return None
    return ("rects", tuple(rects))


def _image_cached(con: Image, src_part: Partition, exact: bool, cache):
    """Resolve one image constraint through the geometry cache.

    A hit rebuilds a fresh partition object around the *current*
    regions from the cached rects — bitwise-identical to recomputing,
    because the key pins the source region's write epoch (any task
    write to the source bumps it) alongside the source partition's
    geometry and the destination shape.
    """
    src_sig = _src_part_sig(src_part)
    if src_sig is None:
        return _image(con, src_part, exact)
    source = con.source.region
    dest = con.dest.region
    key = (
        con.kind.value,
        bool(exact),
        source.uid,
        cache.epochs.get(source.uid, 0),
        src_sig,
        dest.shape,
    )
    cached = cache.get(key)
    if con.kind == ImageKind.RANGE:
        if cached is not None:
            img = ImageByRange.__new__(ImageByRange)
            Partition.__init__(img, dest, src_part.color_count)
            img.pos = source
            img.pos_partition = src_part
            img._rects = list(cached)
            return img
        img = ImageByRange(source, src_part, dest)
        cache.put(key, tuple(img._rects))
        return img
    if cached is not None:
        rects, pieces = cached
        img = ImageByCoordinate.__new__(ImageByCoordinate)
        Partition.__init__(img, dest, src_part.color_count)
        img.crd = source
        img.crd_partition = src_part
        img.exact = bool(exact)
        img._rects = list(rects)
        img._pieces = [list(p) for p in pieces]
        return img
    img = ImageByCoordinate(source, src_part, dest, exact=exact)
    cache.put(
        key,
        (tuple(img._rects), tuple(tuple(p) for p in img._pieces)),
    )
    return img
