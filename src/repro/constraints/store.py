"""Stores: regions plus the key-partition tracking that enables reuse.

A store is the unit both frontend libraries traffic in.  Following
cuNumeric's design, every store remembers the *key partition* — the
latest partition it was written through — and the solver consults key
partitions when choosing how to partition the operands of the next
operation, keeping data where it already lives in the machine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.legion.partition import Partition, Tiling
from repro.legion.region import Region
from repro.legion.runtime import Runtime, get_runtime


class Store:
    """A logical array handle shared by the dense and sparse libraries."""

    __slots__ = ("region", "key_partition", "runtime", "__weakref__")

    def __init__(self, region: Region, runtime: Optional[Runtime] = None):
        self.region = region
        self.key_partition: Optional[Partition] = None
        self.runtime = runtime or get_runtime()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        shape: Tuple[int, ...],
        dtype,
        data: Optional[np.ndarray] = None,
        name: str = "",
        runtime: Optional[Runtime] = None,
    ) -> "Store":
        """Create a region and wrap it as a store."""
        rt = runtime or get_runtime()
        region = rt.create_region(shape, dtype, data=data, name=name)
        return cls(region, rt)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Region shape."""
        return self.region.shape

    @property
    def dtype(self) -> np.dtype:
        """Region dtype."""
        return self.region.dtype

    @property
    def ndim(self) -> int:
        """Region dimensionality."""
        return self.region.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(np.prod(self.region.shape, dtype=np.int64))

    @property
    def nbytes(self) -> int:
        """Logical size in bytes."""
        return self.region.nbytes

    @property
    def data(self) -> np.ndarray:
        """The exact backing array (numerical truth).

        A host read is a synchronization point: launches pending in the
        runtime's deferred fusion window may still owe writes, so the
        window flushes first.
        """
        self.runtime._sync("store-data")
        return self.region.data

    # ------------------------------------------------------------------
    def default_tiling(self) -> Tiling:
        """An even tiling over the runtime's processors."""
        return Tiling.create(self.region, self.runtime.num_procs)

    def set_key_partition(self, partition: Partition) -> None:
        """Record the latest written partition."""
        self.key_partition = partition

    def has_matching_key(self, colors: int) -> bool:
        """Whether the key partition fits a color count."""
        return (
            self.key_partition is not None
            and self.key_partition.color_count == colors
        )

    def destroy(self) -> None:
        """Release the backing region's instances."""
        self.region.destroy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Store({self.region.name}, {self.shape}, {self.dtype})"
