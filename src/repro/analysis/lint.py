"""DISTAL lint: pre-codegen legality checks over statements, schedules
and generated kernels.

Three layers, mirroring what the real DISTAL compiler rejects before it
ever emits a Legion task:

* :func:`lint_statement` — IR well-formedness: every left-hand-side
  index variable must be bound by a right-hand-side access (an unbound
  output dimension has no iteration space), and a tensor name must be
  used with one consistent order across the statement.
* :func:`lint_schedule` — schedule legality against the statement: the
  divided variable must exist in the statement, distribution must refer
  to the divided outer variable, and communicated tensors must appear in
  the statement.
* :func:`lint_kernel_spec` — generated-code checks: the emitted source
  is ``ast``-parsed and every ``ctx.arrays[...]`` / ``ctx.rects[...]`` /
  ``ctx.view(...)`` / ``ctx.rect(...)`` reference must name a declared
  region argument, every ``ctx.scalar(...)`` a declared scalar, and
  every region argument must be covered by at least one partitioning
  constraint (otherwise the launcher has no way to place it).

The functions are duck-typed over :mod:`repro.distal.ir`,
:mod:`repro.distal.schedule` and
:class:`repro.distal.codegen.KernelSpec` so this module stays
import-light (no runtime dependency); :class:`DistalLintError` is what
:mod:`repro.distal.registry` raises when a check fails.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class LintIssue:
    """One lint finding."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.code}: {self.message}"


class DistalLintError(ValueError):
    """A statement/schedule/kernel failed the legality checks."""

    def __init__(self, issues: List[LintIssue]):
        self.issues = list(issues)
        super().__init__(
            "DISTAL lint failed:\n" + "\n".join(f"  - {i}" for i in self.issues)
        )


# ----------------------------------------------------------------------
# Statement (IR) checks
# ----------------------------------------------------------------------
def lint_statement(statement) -> List[LintIssue]:
    """Well-formedness of a tensor-algebra assignment."""
    issues: List[LintIssue] = []
    rhs_vars = set()
    orders = {}
    accesses = [statement.lhs] + list(statement.rhs.factors)
    for access in statement.rhs.factors:
        rhs_vars.update(access.indices)
    for access in accesses:
        name = access.tensor.name
        order = access.tensor.order
        if len(access.indices) != order:
            issues.append(
                LintIssue(
                    "index-arity",
                    f"access {access} uses {len(access.indices)} indices "
                    f"but tensor {name!r} has order {order}",
                )
            )
        if name in orders and orders[name] != order:
            issues.append(
                LintIssue(
                    "inconsistent-order",
                    f"tensor {name!r} used with orders "
                    f"{orders[name]} and {order}",
                )
            )
        orders.setdefault(name, order)
    for var in statement.lhs.indices:
        if var not in rhs_vars:
            issues.append(
                LintIssue(
                    "unbound-output-index",
                    f"LHS index {var} of {statement} is bound by no "
                    f"RHS access: its iteration space is undefined",
                )
            )
    return issues


# ----------------------------------------------------------------------
# Schedule checks
# ----------------------------------------------------------------------
def lint_schedule(statement, schedule) -> List[LintIssue]:
    """Legality of a schedule for a statement."""
    issues: List[LintIssue] = []
    if schedule is None:
        return issues
    stmt_vars = set(statement.index_vars)
    stmt_tensors = {a.tensor.name for a in [statement.lhs, *statement.rhs.factors]}
    if schedule.divided is not None:
        var, outer, inner = schedule.divided
        if var not in stmt_vars:
            issues.append(
                LintIssue(
                    "divide-unknown-var",
                    f"divide({var}, {outer}, {inner}) splits a variable "
                    f"that does not occur in {statement}",
                )
            )
        if outer in stmt_vars or inner in stmt_vars:
            issues.append(
                LintIssue(
                    "divide-shadows-var",
                    f"divide({var}, {outer}, {inner}) reuses a variable "
                    f"already present in {statement}",
                )
            )
    if schedule.distributed is not None and schedule.divided is None:
        issues.append(
            LintIssue(
                "distribute-before-divide",
                "distribute() without a preceding divide()",
            )
        )
    for tensor in schedule.communicated:
        if tensor.name not in stmt_tensors:
            issues.append(
                LintIssue(
                    "communicate-unknown-tensor",
                    f"communicate lists tensor {tensor.name!r} which does "
                    f"not occur in {statement}",
                )
            )
    return issues


# ----------------------------------------------------------------------
# Generated-kernel checks
# ----------------------------------------------------------------------
def _const_str(node) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _ctx_attr(node) -> Optional[str]:
    """'arrays' for ``ctx.arrays``, etc.; None for anything else."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "ctx"
    ):
        return node.attr
    return None


def lint_kernel_spec(spec) -> List[LintIssue]:
    """Check a generated kernel's source against its declarations."""
    issues: List[LintIssue] = []
    declared = {name for name, _ in spec.args}
    scalars = set(getattr(spec, "scalar_names", []) or [])

    # Every region argument must be placeable: covered by a constraint.
    constrained = set()
    for con in spec.constraints:
        tag = con[0]
        if tag == "align":
            constrained.update((con[1], con[2]))
        elif tag in ("image_range", "image_coord"):
            constrained.add(con[1])
            constrained.update(con[2])
        elif tag in ("broadcast", "explicit"):
            constrained.add(con[1])
    for name in declared - constrained:
        issues.append(
            LintIssue(
                "unconstrained-arg",
                f"region argument {name!r} of {spec.name} is covered by "
                f"no partitioning constraint",
            )
        )

    try:
        tree = ast.parse(spec.source)
    except SyntaxError as exc:  # pragma: no cover - template authoring error
        return issues + [
            LintIssue("syntax-error", f"generated source does not parse: {exc}")
        ]

    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript):
            attr = _ctx_attr(node.value)
            if attr in ("arrays", "rects"):
                name = _const_str(node.slice)
                if name is not None and name not in declared:
                    issues.append(
                        LintIssue(
                            "undeclared-region",
                            f"generated source references "
                            f"ctx.{attr}[{name!r}] but {name!r} is not a "
                            f"declared argument of {spec.name}",
                        )
                    )
        elif isinstance(node, ast.Call):
            attr = _ctx_attr(node.func)
            if attr in ("view", "rect"):
                name = _const_str(node.args[0]) if node.args else None
                if name is not None and name not in declared:
                    issues.append(
                        LintIssue(
                            "undeclared-region",
                            f"generated source calls ctx.{attr}({name!r}) "
                            f"but {name!r} is not a declared argument of "
                            f"{spec.name}",
                        )
                    )
            elif attr == "scalar":
                name = _const_str(node.args[0]) if node.args else None
                if name is not None and name not in scalars:
                    issues.append(
                        LintIssue(
                            "undeclared-scalar",
                            f"generated source calls ctx.scalar({name!r}) "
                            f"but {name!r} is not in scalar_names of "
                            f"{spec.name}",
                        )
                    )
    return issues


def lint_all(statement, schedule, spec) -> List[LintIssue]:
    """All three layers at once (statement may be None for spec-only)."""
    issues: List[LintIssue] = []
    if statement is not None:
        issues.extend(lint_statement(statement))
        issues.extend(lint_schedule(statement, schedule))
    if spec is not None:
        issues.extend(lint_kernel_spec(spec))
    return issues
