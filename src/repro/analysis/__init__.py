"""Correctness tooling for the runtime and the DISTAL pipeline.

The reproduction's answer to Legion Spy: when validation mode is on
(``RuntimeConfig(validate=True)`` or ``REPRO_VALIDATE=1``), the runtime

* records every launch, shard, copy, fold and allreduce into an
  :class:`~repro.analysis.events.EventLog`;
* sanitizes kernel arguments (read-only views under READ, NaN-poisoned
  buffers under WRITE_DISCARD — :mod:`repro.analysis.sanitizer`);
* asserts reads are never stale against the coherence maps.

The recorded log is validated offline by
:func:`~repro.analysis.checker.check_log` (races, stale reads, invalid
copies) — also exposed as ``python -m repro.analysis <logfile>`` — and
the DISTAL code generator runs :mod:`repro.analysis.lint` over every
statement, schedule and emitted kernel before registering it.

This package deliberately imports nothing from :mod:`repro.legion` or
:mod:`repro.distal` so the runtime can import it without cycles.
"""

from repro.analysis.checker import Violation, check_log
from repro.analysis.events import (
    AllreduceEvent,
    CopyEvent,
    EventLog,
    FoldEvent,
    ReqAccess,
    ShardEvent,
    TaskEvent,
)
from repro.analysis.lint import (
    DistalLintError,
    LintIssue,
    lint_all,
    lint_kernel_spec,
    lint_schedule,
    lint_statement,
)
from repro.analysis.recorder import (
    active_logs,
    drain_logs,
    register,
    set_validation_default,
    validation_default,
)


class ValidationError(RuntimeError):
    """An online validation check failed (stale read, bad partition)."""


__all__ = [
    "AllreduceEvent",
    "CopyEvent",
    "DistalLintError",
    "EventLog",
    "FoldEvent",
    "LintIssue",
    "ReqAccess",
    "ShardEvent",
    "TaskEvent",
    "ValidationError",
    "Violation",
    "active_logs",
    "check_log",
    "drain_logs",
    "lint_all",
    "lint_kernel_spec",
    "lint_schedule",
    "lint_statement",
    "register",
    "set_validation_default",
    "validation_default",
]
