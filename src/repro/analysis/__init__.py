"""Correctness tooling for the runtime and the DISTAL pipeline.

The reproduction's answer to Legion Spy: when validation mode is on
(``RuntimeConfig(validate=True)`` or ``REPRO_VALIDATE=1``), the runtime

* records every launch, shard, copy, fold and allreduce into an
  :class:`~repro.analysis.events.EventLog`;
* sanitizes kernel arguments (read-only views under READ, NaN-poisoned
  buffers under WRITE_DISCARD — :mod:`repro.analysis.sanitizer`);
* asserts reads are never stale against the coherence maps.

The recorded log is validated offline by
:func:`~repro.analysis.checker.check_log` (races, stale reads, invalid
copies) — also exposed as ``python -m repro.analysis <logfile>`` — and
the DISTAL code generator runs :mod:`repro.analysis.lint` over every
statement, schedule and emitted kernel before registering it.

This package deliberately imports nothing from :mod:`repro.legion` or
:mod:`repro.distal` so the runtime can import it without cycles.  The
one exception is the *static advisor* (:mod:`repro.analysis.advisor`),
which replays plans through the real solver and machine model and so
sits above those layers — it is therefore exposed lazily (module
``__getattr__``) rather than imported here, and reached via
``python -m repro.analysis advise`` or ``from repro.analysis import
advisor``.  The plan-capture types (:mod:`repro.analysis.plan`) and the
kernel cost models (:mod:`repro.analysis.costmodel`) keep the no-cycle
rule and are imported eagerly.
"""

from repro.analysis.checker import Violation, check_log
from repro.analysis.costmodel import KernelModel, for_task_name, get_model
from repro.analysis.formatsel import (
    FormatAdvice,
    FormatCandidate,
    FormatDecision,
    FormatProfile,
    advise_formats,
    profile_matrix,
    select_format,
    sell_layout,
)
from repro.analysis.events import (
    AllreduceEvent,
    CheckpointEvent,
    CopyEvent,
    EventLog,
    FaultEvent,
    FoldEvent,
    ReqAccess,
    ShardEvent,
    TaskEvent,
)
from repro.analysis.lint import (
    DistalLintError,
    LintIssue,
    lint_all,
    lint_kernel_spec,
    lint_schedule,
    lint_statement,
)
from repro.analysis.plan import PlanNote, PlanOp, PlanRegion, PlanTrace
from repro.analysis.recorder import (
    active_logs,
    drain_logs,
    register,
    set_validation_default,
    validation_default,
)

# Advisor symbols resolved lazily (see the module docstring).
_LAZY_ADVISOR = {
    "advisor", "Advice", "AdvisorConfig", "Finding", "advise", "analyze",
    "trace",
}


def __getattr__(name: str):
    if name in _LAZY_ADVISOR:
        import repro.analysis.advisor as _advisor

        if name == "advisor":
            return _advisor
        return getattr(_advisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ValidationError(RuntimeError):
    """An online validation check failed (stale read, bad partition)."""


__all__ = [
    "Advice",
    "AdvisorConfig",
    "AllreduceEvent",
    "CheckpointEvent",
    "CopyEvent",
    "DistalLintError",
    "EventLog",
    "FaultEvent",
    "Finding",
    "FoldEvent",
    "FormatAdvice",
    "FormatCandidate",
    "FormatDecision",
    "FormatProfile",
    "KernelModel",
    "LintIssue",
    "PlanNote",
    "PlanOp",
    "PlanRegion",
    "PlanTrace",
    "ReqAccess",
    "ShardEvent",
    "TaskEvent",
    "ValidationError",
    "Violation",
    "active_logs",
    "advise",
    "advise_formats",
    "advisor",
    "analyze",
    "check_log",
    "drain_logs",
    "for_task_name",
    "get_model",
    "lint_all",
    "lint_kernel_spec",
    "lint_schedule",
    "lint_statement",
    "profile_matrix",
    "register",
    "select_format",
    "sell_layout",
    "set_validation_default",
    "trace",
    "validation_default",
]
