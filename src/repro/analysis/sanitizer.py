"""Privilege sanitizer: make privilege violations fail loudly.

Under validation mode the runtime hands kernels *sanitized* region
arguments instead of the raw backing arrays:

* ``READ`` arguments become non-writeable NumPy views — a kernel that
  writes an input raises ``ValueError: assignment destination is
  read-only`` at the exact faulty statement instead of silently
  corrupting other shards' data.
* ``WRITE_DISCARD`` rectangles are NaN-poisoned before the kernel runs —
  a kernel that *reads* supposedly-discarded contents (or forgets to
  write part of its rectangle) propagates NaNs into checked numerics
  instead of silently reusing stale values.  Poisoning is elided for
  integer dtypes, which have no quiet poison value.

Numerics stay exact for correct kernels: a discard kernel by contract
overwrites every element of its rectangle, erasing the poison.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect


def readonly_view(array: np.ndarray) -> np.ndarray:
    """A non-writeable view sharing the array's buffer."""
    view = array.view()
    view.flags.writeable = False
    return view


def poison_value(dtype: np.dtype):
    """The poison for a dtype, or None when it has no quiet poison."""
    if np.issubdtype(dtype, np.complexfloating):
        return complex(np.nan, np.nan)
    if np.issubdtype(dtype, np.floating):
        return np.nan
    return None


def poison(array: np.ndarray, rect: Rect) -> bool:
    """NaN-poison a rect of a float/complex array; returns whether it did."""
    value = poison_value(array.dtype)
    if value is None or rect.is_empty():
        return False
    array[rect.slices()] = value
    return True
