"""Static plan advisor: ahead-of-execution analysis of sparse programs.

The dynamic half of :mod:`repro.analysis` (PR 1) validates an execution
*after* it ran, from its event log.  This module is the static half: it
takes a :class:`~repro.analysis.plan.PlanTrace` — recorded by abstract
interpretation of the program in deferred mode, or alongside a real run
— and *predicts* what the runtime would do on a given machine, before
any kernel executes:

* **partition choices** per launch, by running the actual constraint
  solver (:func:`repro.constraints.solver.solve_partitions`) over the
  recorded stores/constraints and replaying the runtime's key-partition
  reuse rule (§4.1);
* **communication volume** per channel class (intra-memory / NVLink /
  NIC), by replaying the mapper's coherence protocol — the same
  missing/find-source walk :meth:`Runtime.launch` performs — into a
  predicted :class:`~repro.analysis.events.EventLog`;
* **per-memory peak footprint**, by replaying instance mapping through
  a fresh :class:`~repro.legion.instance.InstanceManager` against the
  target machine's capacities and framebuffer reservations.

On top of the predicted execution it runs a lint battery: implicit
densification, format-conversion round-trips, broadcast-inducing
constraints, capacity overflow, dead/redundant writes and staging, and
fusible adjacent launches (groundwork for task fusion).

Because the predictor replays the *same* solver and coherence code the
runtime executes, its predicted copies agree exactly with the recorded
event log of a real run (``tests/analysis/test_advisor_agreement.py``).

Entry points: :func:`trace` / :func:`analyze` / :func:`advise` as a
library, ``python -m repro.analysis advise prog.py`` as a CLI.

Unlike the rest of :mod:`repro.analysis`, this module sits *above* the
runtime layers and imports them freely — which is why the package
``__init__`` only exposes it lazily (the runtime imports the package).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import depend
from repro.analysis.costmodel import for_task_name
from repro.analysis.events import EventLog, ReqAccess
from repro.analysis.formatsel import FormatAdvice, advise_formats
from repro.analysis.plan import PlanFree, PlanNote, PlanOp, PlanRegion, PlanTrace
from repro.constraints.solver import solve_partitions
from repro.legion import fusion
from repro.legion.coherence import RegionCoherence
from repro.legion.exceptions import OutOfMemoryError
from repro.legion.instance import InstanceManager
from repro.legion.partition import (
    ExplicitPartition,
    ImageByCoordinate,
    ImageByRange,
    Replicate,
    Tiling,
)
from repro.legion.privilege import Privilege
from repro.legion.task import ShardContext
from repro.machine import (
    Machine,
    MachineScope,
    MemoryKind,
    ProcessorKind,
    laptop,
    summit,
)


def _compile_cache_stats() -> Dict[str, int]:
    # Lazy: repro.distal.codegen is import-heavy and only needed when a
    # report is actually built.
    from repro.distal.codegen import compile_cache_stats

    return compile_cache_stats()


# ----------------------------------------------------------------------
# Configuration and report types
# ----------------------------------------------------------------------
@dataclass
class AdvisorConfig:
    """Lint thresholds (all byte thresholds compare *scaled* bytes)."""

    # Implicit densification: always reported; escalates to an error
    # when the materialized dense array reaches this many bytes.
    densify_error_bytes: int = 1 << 30
    # Replicated (broadcast) read operands are flagged once the extra
    # volume (operand bytes x (colors - 1)) reaches this threshold.
    broadcast_warn_bytes: int = 8 << 20
    # A fragment staged into the same memory this many times or more is
    # reported as redundant staging (data ping-pong).
    restage_warn_count: int = 4
    restage_warn_bytes: int = 1 << 20
    # Peak footprint at or above this fraction of a memory's budget
    # (capacity - reservation) is flagged even when it fits.
    pressure_warn_fraction: float = 0.85
    # Keep at most this many findings per rule (volume guard).
    max_findings_per_rule: int = 16
    # Auto-format pass (repro.analysis.formatsel): walk the plan's SpMV
    # launches, replay ELL / SELL-C-sigma / HYB candidates through the
    # machine model, and report ranked per-operand recommendations plus
    # the format lint battery.  Off by default; ``advise --autoformat``
    # turns it on.  With the pass enabled, an unamortized conversion is
    # an *error* — the flag asks "should this plan run under
    # RuntimeConfig.autoformat?", and the answer must gate CI.
    autoformat: bool = False


@dataclass(frozen=True)
class Finding:
    """One lint result; ``error`` findings make the CLI exit non-zero."""

    severity: str  # "error" | "warning" | "note"
    rule: str
    message: str

    def format(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message}"


@dataclass
class OpReport:
    """Aggregated launches with identical name + partition choices."""

    name: str
    count: int
    colors: int
    partitions: Dict[str, str]  # arg name -> partition description
    flops: float = 0.0
    bytes: float = 0.0
    kernel_seconds: float = 0.0


@dataclass
class MemoryReport:
    """Predicted peak footprint of one memory on the target machine."""

    memory: str
    kind: str
    node: int
    peak_bytes: int
    capacity: int
    reserved_bytes: int

    @property
    def budget(self) -> int:
        return max(self.capacity - self.reserved_bytes, 0)

    @property
    def pressure(self) -> float:
        return self.peak_bytes / self.budget if self.budget > 0 else float("inf")


@dataclass
class Advice:
    """The advisor's full static report for one traced program."""

    plan_name: str
    machine: str
    processors: str
    launches: int
    regions: int
    ops: List[OpReport] = field(default_factory=list)
    traffic: Dict[str, Dict[str, float]] = field(default_factory=dict)
    memories: List[MemoryReport] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    est_kernel_seconds: float = 0.0
    est_copy_seconds: float = 0.0
    comm_scale: float = 1.0
    # The predicted event stream (what the agreement tests compare
    # against a real run's recorded log).
    predicted: EventLog = field(default_factory=EventLog)
    # Predicted fusion groups, in execution order: (sub-launch names,
    # elided temporaries, kernel-fusion verdict label) per group the
    # runtime's deferred window will form.  The label is
    # ``repro.analysis.depend.verdict_label`` — "single", "merged" or
    # "replay:<reason>".  Empty when the analyzed config has fusion
    # disabled.  The fusion agreement test compares this against
    # ``Runtime.fusion_log`` entry for entry.
    fusion_groups: List[Tuple[Tuple[str, ...], int, str]] = field(
        default_factory=list
    )
    # Ranked per-operand format recommendations from the static
    # auto-format pass (empty unless AdvisorConfig.autoformat is on).
    format_advice: List[FormatAdvice] = field(default_factory=list)
    # Process-wide codegen reuse counters
    # (:func:`repro.distal.codegen.compile_cache_stats`), reported next
    # to the runtime's fast-path cache counters so a profile/advise
    # pair shows host-side caching end to end.
    caches: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def to_dict(self) -> dict:
        """JSON-ready summary (``--json``)."""
        return {
            "plan": self.plan_name,
            "machine": self.machine,
            "processors": self.processors,
            "launches": self.launches,
            "regions": self.regions,
            "ops": [
                {
                    "name": op.name,
                    "count": op.count,
                    "colors": op.colors,
                    "partitions": op.partitions,
                    "flops": op.flops,
                    "bytes": op.bytes,
                    "kernel_seconds": op.kernel_seconds,
                }
                for op in self.ops
            ],
            "traffic": self.traffic,
            "memories": [
                {
                    "memory": m.memory,
                    "kind": m.kind,
                    "node": m.node,
                    "peak_bytes": m.peak_bytes,
                    "capacity": m.capacity,
                    "reserved_bytes": m.reserved_bytes,
                    "pressure": m.pressure,
                }
                for m in self.memories
            ],
            "findings": [
                {"severity": f.severity, "rule": f.rule, "message": f.message}
                for f in self.findings
            ],
            "est_kernel_seconds": self.est_kernel_seconds,
            "est_copy_seconds": self.est_copy_seconds,
            "comm_scale": self.comm_scale,
            "fusion_groups": [
                {"names": list(names), "elided": elided, "verdict": verdict}
                for names, elided, verdict in self.fusion_groups
            ],
            "format_advice": [fa.to_dict() for fa in self.format_advice],
            "caches": self.caches,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def format_text(self) -> str:
        """Human-readable report (the default CLI output)."""
        lines = [
            f"advisor report: {self.plan_name}",
            f"machine: {self.machine}",
            f"scope: {self.processors}",
            f"plan: {self.launches} launches, {self.regions} regions",
            "",
            "partition choices:",
        ]
        for op in self.ops:
            lines.append(f"  {op.name} x{op.count}  colors={op.colors}")
            if op.partitions:
                parts = "  ".join(
                    f"{arg}:{desc}" for arg, desc in op.partitions.items()
                )
                lines.append(f"      {parts}")
        lines.append("")
        lines.append("predicted traffic (per channel class):")
        if self.traffic:
            for cls in ("intra", "nvlink", "nic"):
                if cls not in self.traffic:
                    continue
                t = self.traffic[cls]
                lines.append(
                    f"  {cls:7s} {int(t['copies']):6d} copies  "
                    f"{_fmt_bytes(t['bytes'])}  "
                    f"(x{self.comm_scale:g} scaled: "
                    f"{_fmt_bytes(t['scaled_bytes'])})"
                )
        else:
            lines.append("  (no inter-memory copies predicted)")
        lines.append("")
        lines.append("predicted peak memory:")
        for m in self.memories:
            lines.append(
                f"  {m.memory:16s} {_fmt_bytes(m.peak_bytes)} of "
                f"{_fmt_bytes(m.budget)} budget "
                f"({_fmt_bytes(m.capacity)} - {_fmt_bytes(m.reserved_bytes)} "
                f"reserved), pressure {m.pressure:.0%}"
            )
        lines.append("")
        lines.append(
            f"rough time estimate: kernels {self.est_kernel_seconds:.3e}s + "
            f"copies {self.est_copy_seconds:.3e}s"
        )
        lines.append("")
        compile_stats = self.caches.get("compile")
        if compile_stats:
            lines.append(
                "kernel compile cache: "
                f"{int(compile_stats.get('hits', 0))} hits / "
                f"{int(compile_stats.get('misses', 0))} misses"
            )
            lines.append("")
        merged = [g for g in self.fusion_groups if len(g[0]) > 1]
        if merged:
            away = sum(len(names) - 1 for names, _, _ in merged)
            elided = sum(e for _, e, _ in merged)
            nests = sum(1 for _, _, v in merged if v == "merged")
            lines.append(
                f"task fusion: {len(merged)} fused group(s) predicted "
                f"({away} launches merged away, {elided} temporaries "
                f"elided; {nests} merge into a single loop nest)"
            )
            lines.append("")
        if self.format_advice:
            lines.append("format advice (static auto-format pass):")
            for fa in self.format_advice:
                lines.append(
                    f"  {fa.operand} ({fa.current_fmt}, "
                    f"{fa.rows}x{fa.cols}, nnz {fa.nnz}, row mean "
                    f"{fa.row_mean:.1f} / max {fa.row_max}) over "
                    f"{fa.ops_observed} SpMV launch(es):"
                )
                for cand in fa.decision.candidates:
                    tags = []
                    if cand.fmt == fa.recommended_fmt:
                        tags.append("<- recommended")
                    if cand.fmt == fa.current_fmt:
                        tags.append("(current)")
                    if not cand.bitwise_safe:
                        tags.append("(not bitwise-safe)")
                    be = (
                        f"break-even {cand.break_even_ops:g} ops"
                        if cand.fmt != fa.current_fmt
                        else ""
                    )
                    lines.append(
                        f"    {cand.fmt:5s} {cand.op_seconds:.3e}s/op  "
                        f"{be:22s} {' '.join(tags)}".rstrip()
                    )
            lines.append("")
        if self.findings:
            lines.append("findings:")
            for f in self.findings:
                lines.append(f"  {f.format()}")
        else:
            lines.append("findings: none")
        lines.append(
            f"summary: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.findings) - len(self.errors) - len(self.warnings)} "
            f"note(s)"
        )
        return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}TiB"


def describe_partition(partition) -> str:
    """A short human-readable label for a partition choice."""
    if isinstance(partition, Replicate):
        return f"replicate x{partition.color_count}"
    if isinstance(partition, Tiling):
        return f"tile x{partition.color_count}"
    if isinstance(partition, ImageByRange):
        return f"image(range) x{partition.color_count}"
    if isinstance(partition, ImageByCoordinate):
        return f"image(coord) x{partition.color_count}"
    if isinstance(partition, ExplicitPartition):
        return f"explicit x{partition.color_count}"
    return type(partition).__name__


# ----------------------------------------------------------------------
# The predictor: replays the plan through solver + mapper, statically
# ----------------------------------------------------------------------
class _Predictor:
    """Replays a plan against a machine scope without running kernels.

    The replay mirrors :meth:`Runtime.launch` operation for operation —
    same shard-to-processor assignment (``procs[color % len(procs)]``),
    same per-requirement staging walk, same fold/allreduce structure —
    so the predicted :class:`EventLog` is copy-for-copy comparable with
    a recorded one.
    """

    def __init__(self, plan: PlanTrace, scope: MachineScope, config, options):
        self.plan = plan
        self.scope = scope
        self.machine: Machine = scope.machine
        self.procs = scope.processors
        self.config = config
        self.options = options
        self.instances = InstanceManager(
            reserved_fb_bytes=config.reserved_fb_bytes,
            coalesce_slack=config.coalesce_slack,
            coalescing=config.coalescing,
            data_scale=config.data_scale,
            inflight_window=config.inflight_pool_window,
        )
        self.log = EventLog(name=f"advise:{plan.name}")
        self.findings: List[Finding] = []
        self._finding_counts: Counter = Counter()
        self.coherence: Dict[int, RegionCoherence] = {}
        self.regions: Dict[int, object] = {}
        self.mem_by_uid = {m.uid: m for m in self.machine.memories}
        self.host_memory = next(
            m for m in self.machine.memories if m.kind == MemoryKind.SYSMEM
        )
        self.traffic: Dict[str, Dict[str, float]] = {}
        self.op_groups: Dict[tuple, OpReport] = {}
        # (op, solution, launch_colors) per replayed task op, in order.
        self.task_ops: List[Tuple[PlanOp, Dict[int, object], int]] = []
        # Deferred-window simulation: the same summaries and planner the
        # runtime uses (repro.legion.fusion), driven by the plan stream
        # plus its "sync" notes, so predicted groups agree exactly with
        # Runtime.fusion_log.
        self._sim_window: List[fusion.LaunchSummary] = []
        self.fusion_groups: List[Tuple[Tuple[str, ...], int, str]] = []
        # One record per *fused* predicted group, for the kernel-merge
        # lints: names, verdict label, replay-only reason/detail, and
        # the modeled compute a merged nest saves (deduplicated reads +
        # never-rewritten temporaries vs per-kernel accounting).
        self.merge_reports: List[dict] = []
        self._oom_memories: set = set()
        # memory uid -> estimated scaled bytes the runtime would spill
        # (LRU evictions that relieved a would-be OOM under config.spill).
        self._spill_bytes: Counter = Counter()
        self._tick_count = 0.0
        self.est_kernel_seconds = 0.0

    # -- helpers -------------------------------------------------------
    def _tick(self) -> float:
        self._tick_count += 1.0
        return self._tick_count

    def _finding(self, severity: str, rule: str, message: str) -> None:
        self._finding_counts[rule] += 1
        if self._finding_counts[rule] == self.options.max_findings_per_rule + 1:
            self.findings.append(
                Finding("note", rule, "further findings suppressed")
            )
        if self._finding_counts[rule] <= self.options.max_findings_per_rule:
            self.findings.append(Finding(severity, rule, message))

    def _coh(self, region) -> RegionCoherence:
        coh = self.coherence.get(region.uid)
        if coh is None:
            # Region created before the trace began: conservatively treat
            # its contents as host-resident (attach semantics).
            coh = RegionCoherence()
            self.coherence[region.uid] = coh
            if region.rect.volume() > 0:
                coh.mark_valid(self.host_memory.uid, region.rect, 0.0)
        return coh

    def _mem_scale(self, region):
        if region.mem_scale is not None:
            return region.mem_scale
        return self.plan.mem_scale_by_extent.get(region.shape[0])

    def _account(self, src_uid: int, dst_uid: int, nbytes: int) -> None:
        src = self.mem_by_uid[src_uid]
        dst = self.mem_by_uid[dst_uid]
        if src.uid == dst.uid:
            cls = "intra"
        elif src.node == dst.node:
            cls = "nvlink"
        else:
            cls = "nic"
        entry = self.traffic.setdefault(
            cls, {"copies": 0, "bytes": 0.0, "scaled_bytes": 0.0}
        )
        entry["copies"] += 1
        entry["bytes"] += nbytes
        entry["scaled_bytes"] += nbytes * self.config.effective_comm_scale

    # -- replay --------------------------------------------------------
    def run(self) -> None:
        """Replay every plan event (with key partitions reset to the
        state at trace start, then restored)."""
        stores = self.plan.stores()
        saved = [(store, store.key_partition) for store in stores]
        for store in stores:
            store.key_partition = None
        try:
            for event in self.plan.events:
                if isinstance(event, PlanOp):
                    self._replay_op(event)
                elif isinstance(event, PlanRegion):
                    self._replay_region(event)
                elif isinstance(event, PlanFree):
                    self._replay_free(event)
                elif isinstance(event, PlanNote) and event.category == "sync":
                    # The runtime flushes its deferred window at every
                    # sync point (wait/barrier/host read/scope exit);
                    # mirror the split.  Frees do NOT flush.
                    self._close_sim_window()
                # Other PlanNotes are consumed by the lint passes.
            self._close_sim_window()
        finally:
            for store, key in saved:
                store.key_partition = key

    def _replay_region(self, event: PlanRegion) -> None:
        region = event.region
        self.regions[region.uid] = region
        coh = RegionCoherence()
        self.coherence[region.uid] = coh
        if event.attached and region.rect.volume() > 0:
            coh.mark_valid(self.host_memory.uid, region.rect, self._tick())

    def _replay_free(self, event: PlanFree) -> None:
        self.coherence.pop(event.region_uid, None)
        self.instances.free_region(event.region_uid)

    # -- deferred-window simulation ------------------------------------
    def _sim_launch(self, op: PlanOp, requirements, launch_colors) -> None:
        """Feed one replayed launch through the simulated fusion window.

        Mirrors :meth:`Runtime.launch` exactly: fusible launches buffer
        (overflow flushes), everything else flushes and runs eagerly
        (and does not appear in the fusion log).
        """
        summary = fusion.summarize(
            op.name,
            launch_colors,
            requirements,
            pointwise=op.pointwise,
            reduction=op.reduction,
        )
        if op.reduction is not None or not summary.fusible:
            self._close_sim_window()
            return
        self._sim_window.append(summary)
        if len(self._sim_window) >= self.config.fusion_window:
            self._close_sim_window()

    def _close_sim_window(self) -> None:
        if not self._sim_window:
            return
        window, self._sim_window = self._sim_window, []
        local = fusion.local_ids(window)
        kernel_fusion = bool(getattr(self.config, "kernel_fusion", False))
        for group in fusion.plan_window(window):
            names = tuple(window[i].name for i in group.indices)
            # The same classifier the runtime's flush runs, on the same
            # summaries — verdicts agree with Runtime.fusion_log.
            verdict = depend.classify(window, local, group)
            label = depend.verdict_label(group, verdict, kernel_fusion)
            self.fusion_groups.append((names, len(group.elide), label))
            if group.fused:
                self.merge_reports.append(
                    self._merge_report(window, group, verdict, label)
                )

    def _merge_report(self, window, group, verdict, label) -> dict:
        """Model what body-merging one fused group saves (or why not).

        Replay charges every sub-kernel's full traffic; a merged nest
        reads each external operand once and writes each output once,
        with in-group temporaries flowing as nest values.  The delta —
        at data scale, over the scope's memory bandwidth — is the
        modeled compute the ``kernel-merge-applied`` lint reports.
        """
        replay_bytes = 0.0
        merged_bytes = 0.0
        produced: set = set()
        counted: set = set()
        for idx in group.indices:
            summary = window[idx]
            for acc in summary.accesses:
                nbytes = (
                    acc.region.rect.volume() * acc.region.data.dtype.itemsize
                )
                replay_bytes += nbytes
                uid = acc.region.uid
                if (
                    acc.privilege.reads
                    and uid not in produced
                    and ("r", uid) not in counted
                ):
                    counted.add(("r", uid))
                    merged_bytes += nbytes
                if acc.privilege.writes:
                    if ("w", uid) not in counted:
                        counted.add(("w", uid))
                        merged_bytes += nbytes
                    produced.add(uid)
        saved = max(replay_bytes - merged_bytes, 0.0)
        scale = self.config.data_scale
        seconds = (
            self.procs[0].kernel_time(0.0, saved * scale) if saved else 0.0
        )
        return {
            "names": tuple(window[i].name for i in group.indices),
            "label": label,
            "reason": verdict.reason,
            "detail": verdict.detail,
            "saved_bytes": saved,
            "saved_seconds": seconds,
        }

    def _replay_op(self, op: PlanOp) -> None:
        if op.requirements is not None:
            # Fill path: concrete requirements, no solve, no key update.
            requirements = list(op.requirements)
            solution = None
            fold_partition = None
        else:
            stores = [store for _, store, _ in op.args]
            try:
                solution = solve_partitions(
                    stores,
                    op.constraints,
                    op.colors,
                    reuse_partitions=self.config.reuse_partitions,
                    exact_images=self.config.exact_images,
                )
            except Exception as exc:
                self._finding(
                    "error", "constraints",
                    f"op {op.name!r}: constraint solving failed: {exc}",
                )
                return
            requirements = []
            fold_partition = None
            for name, store, privilege in op.args:
                partition = solution[store.region.uid]
                requirements.append((name, store.region, partition, privilege))
                if privilege == Privilege.REDUCE and fold_partition is None:
                    if isinstance(store.key_partition, Tiling) and (
                        store.key_partition.color_count == op.colors
                    ):
                        fold_partition = store.key_partition
                    else:
                        fold_partition = Tiling.create(store.region, op.colors)

        launch_colors = max(
            (part.color_count for _, _, part, _ in requirements), default=1
        )
        self._sim_launch(op, requirements, launch_colors)
        self._aggregate(op, requirements, launch_colors)
        self._launch(op, requirements, fold_partition, launch_colors)

        if solution is not None:
            # Mirror AutoTask.execute's key-partition updates so later
            # launches reuse partitions exactly like the runtime (§4.1).
            for _, store, privilege in op.args:
                if not privilege.writes:
                    continue
                partition = solution[store.region.uid]
                if privilege == Privilege.REDUCE:
                    store.set_key_partition(fold_partition)
                elif isinstance(partition, Tiling):
                    store.set_key_partition(partition)
            self.task_ops.append((op, solution, launch_colors))
            self._lint_broadcast(op, solution, launch_colors)

    def _launch(self, op, requirements, fold_partition, launch_colors) -> None:
        launch_id = self.log.record_task(op.name, launch_colors)
        privileges = {name: priv for name, _, _, priv in requirements}
        scalar_values = {
            key: getattr(val, "value", val) for key, val in op.scalars.items()
        }
        reduce_writes: Dict[str, List[Tuple[Any, Any]]] = {}

        for color in range(launch_colors):
            proc = self.procs[color % len(self.procs)]
            memory = proc.memory
            arrays: Dict[str, Any] = {}
            rects: Dict[str, Any] = {}
            for name, region, partition, privilege in requirements:
                rect = partition.rect(color)
                arrays[name] = region.data
                rects[name] = rect
                if rect.is_empty():
                    continue
                self._ensure(memory, region, rect)
                if privilege.reads:
                    for piece in partition.pieces(color):
                        self._stage(region, memory, piece)

            flops, nbytes = self._shard_cost(
                op, color, launch_colors, arrays, rects, scalar_values,
                privileges,
            )
            scale = self.config.data_scale
            shard_seconds = proc.kernel_time(
                float(flops) * scale, float(nbytes) * scale
            )
            self.est_kernel_seconds += shard_seconds
            self._record_shard_cost(
                op, requirements, launch_colors, flops, nbytes, shard_seconds
            )

            tick = self._tick()
            for name, region, _partition, privilege in requirements:
                rect = rects[name]
                if rect.is_empty() or not privilege.writes:
                    continue
                if privilege == Privilege.REDUCE:
                    reduce_writes.setdefault(name, []).append((rect, memory))
                else:
                    self._coh(region).mark_written(memory.uid, rect, tick)

            self.log.record_shard(
                launch_id, op.name, color, proc.uid, memory.uid,
                [
                    ReqAccess(
                        name, region.uid, region.name, rects[name],
                        privilege.value,
                        tuple(partition.pieces(color))
                        if privilege.reads else (),
                    )
                    for name, region, partition, privilege in requirements
                ],
                tick, tick,
            )

        for name, region, _partition, _privilege in requirements:
            if name in reduce_writes:
                self._fold(
                    op, region, fold_partition, reduce_writes[name],
                    launch_colors, launch_id,
                )

        if op.reduction is not None:
            self.log.record_allreduce(op.reduction, launch_colors)

    def _shard_cost(
        self, op, color, colors, arrays, rects, scalar_values, privileges
    ) -> Tuple[float, float]:
        """One shard's (flops, bytes), via the recorded cost function."""
        if op.cost_fn is None:
            return 0.0, 0.0
        try:
            ctx = ShardContext(
                color, colors, arrays, rects, scalar_values, self.config,
                privileges,
            )
            flops, nbytes = op.cost_fn(ctx)
            return float(flops), float(nbytes)
        except Exception:
            # A cost function may touch values the deferred trace never
            # produced; fall back to the registered kernel model, if any.
            model = for_task_name(op.name)
            if model is not None:
                rect = next(
                    (r for r in rects.values() if not r.is_empty()), None
                )
                if rect is not None:
                    nnz = rect.volume()
                    est = model.evaluate(nnz, nnz, nnz)
                    return est["flops"], est["bytes"]
            return 0.0, 0.0

    def _record_shard_cost(self, op, requirements, colors, flops, nbytes, seconds):
        key = self._group_key(op, requirements, colors)
        report = self.op_groups[key]
        report.flops += flops
        report.bytes += nbytes
        report.kernel_seconds += seconds

    def _ensure(self, memory, region, rect) -> None:
        try:
            self.instances.ensure(
                memory, region.uid, rect, region.itemsize,
                scale=self._mem_scale(region),
            )
            return
        except OutOfMemoryError as exc:
            first = exc
        if getattr(self.config, "spill", False):
            # The runtime would relieve the pressure instead of dying:
            # model its policy (pool drain, then LRU eviction) and count
            # the evicted bytes as estimated spill traffic.  Evicting
            # clean vs. spilling dirty is a coherence distinction the
            # static replay cannot make, so every evicted byte is
            # (pessimistically) charged as spill.
            state = self.instances.state(memory)
            state.drain_pool()
            freed = state.evict_lru(first.requested)
            try:
                self.instances.ensure(
                    memory, region.uid, rect, region.itemsize,
                    scale=self._mem_scale(region),
                )
                self._spill_bytes[memory.uid] += int(freed)
                return
            except OutOfMemoryError:
                pass  # even a drained memory cannot hold it: hard OOM
        if memory.uid not in self._oom_memories:
            self._oom_memories.add(memory.uid)
            hint = (
                "" if getattr(self.config, "spill", False)
                else " (config.spill would degrade this to spill traffic)"
            )
            self._finding(
                "error", "capacity",
                f"memory {_mem_name(memory)} overflows while mapping "
                f"region {region.name!r}: {first}{hint}",
            )

    def _stage(self, region, memory, rect) -> None:
        """The mapper's staging walk: derive the copies a shard needs."""
        coh = self._coh(region)
        for piece in coh.missing(memory.uid, rect):
            for src_uid, frag, _t in coh.find_source(piece, exclude=memory.uid):
                nbytes = frag.volume() * region.itemsize
                self.log.record_copy(
                    region.uid, region.name, frag, src_uid, memory.uid, nbytes
                )
                self._account(src_uid, memory.uid, nbytes)
                coh.mark_valid(memory.uid, frag, self._tick())

    def _fold(
        self, op, region, fold_partition, writes, launch_colors, launch_id
    ) -> None:
        owner = fold_partition or Tiling.create(region, launch_colors)
        coh = self._coh(region)
        for color in range(owner.color_count):
            proc = self.procs[color % len(self.procs)]
            memory = proc.memory
            tile = owner.rect(color)
            if tile.is_empty():
                continue
            for rect, src_mem in writes:
                overlap = tile.intersect(rect)
                if overlap.is_empty():
                    continue
                nbytes = overlap.volume() * region.itemsize
                if src_mem.uid != memory.uid:
                    self.log.record_copy(
                        region.uid, region.name, overlap,
                        src_mem.uid, memory.uid, nbytes, why="fold",
                    )
                    self._account(src_mem.uid, memory.uid, nbytes)
            coh.mark_written(memory.uid, tile, self._tick())
            self.log.record_fold(
                launch_id, op.name, region.uid, region.name, tile, memory.uid
            )

    # -- aggregation ---------------------------------------------------
    def _group_key(self, op, requirements, colors) -> tuple:
        return (
            op.name, colors,
            tuple(
                (name, describe_partition(part))
                for name, _, part, _ in requirements
            ),
        )

    def _aggregate(self, op, requirements, colors) -> None:
        key = self._group_key(op, requirements, colors)
        report = self.op_groups.get(key)
        if report is None:
            self.op_groups[key] = report = OpReport(
                name=op.name, count=0, colors=colors,
                partitions={
                    name: describe_partition(part)
                    for name, _, part, _ in requirements
                },
            )
        report.count += 1

    # -- lints run during replay --------------------------------------
    def _lint_broadcast(self, op, solution, colors) -> None:
        if colors <= 1:
            return
        for name, store, privilege in op.args:
            partition = solution[store.region.uid]
            if not isinstance(partition, Replicate) or not privilege.reads:
                continue
            extra = store.region.nbytes * (colors - 1) * self.config.data_scale
            if extra >= self.options.broadcast_warn_bytes:
                self._finding(
                    "warning", "broadcast",
                    f"op {op.name!r}: argument {name!r} "
                    f"(region {store.region.name!r}, "
                    f"{_fmt_bytes(store.region.nbytes)}) is replicated to "
                    f"{colors} shards — {_fmt_bytes(extra)} of extra "
                    f"transfer/footprint; consider an alignment or image "
                    f"constraint instead",
                )


def _mem_name(memory) -> str:
    kind = "fb" if memory.kind == MemoryKind.FRAMEBUFFER else "sysmem"
    return f"{kind}[{memory.uid}]@node{memory.node}"


# ----------------------------------------------------------------------
# Post-replay lint passes over the plan + predicted execution
# ----------------------------------------------------------------------
def _lint_notes(predictor: _Predictor, plan: PlanTrace) -> None:
    """Densification and conversion-churn findings from library notes."""
    options = predictor.options
    scale = predictor.config.data_scale
    ancestry: Dict[int, List[str]] = {}  # object id -> format chain
    seen_conversions: Counter = Counter()
    for note in plan.notes:
        info = note.info
        if note.category == "densify":
            nbytes = float(info.get("nbytes", 0)) * scale
            severity = (
                "error" if nbytes >= options.densify_error_bytes else "warning"
            )
            predictor._finding(
                severity, "densify",
                f"{info.get('where', 'operation')} materializes a dense "
                f"{info.get('shape')} array ({_fmt_bytes(nbytes)} scaled) "
                f"from a {info.get('fmt', '?')} matrix — implicit "
                f"densification becomes allocation + broadcast at scale",
            )
        elif note.category == "convert":
            src_fmt = info.get("src_fmt", "?")
            dst_fmt = info.get("dst_fmt", "?")
            src_id = info.get("src_id")
            dst_id = info.get("dst_id")
            chain = ancestry.get(src_id, [src_fmt]) + [dst_fmt]
            if dst_id is not None:
                ancestry[dst_id] = chain
            if len(chain) >= 3 and chain[-1] in chain[:-1]:
                predictor._finding(
                    "warning", "convert-roundtrip",
                    f"format round-trip {' -> '.join(chain)} "
                    f"({_fmt_bytes(float(info.get('nbytes', 0)) * scale)} "
                    f"scaled) — each hop is a full conversion kernel/sort",
                )
            seen_conversions[(src_id, dst_fmt)] += 1
            if seen_conversions[(src_id, dst_fmt)] == 2:
                predictor._finding(
                    "warning", "convert-repeated",
                    f"the same matrix is converted {src_fmt} -> {dst_fmt} "
                    f"repeatedly — hoist the conversion out of the loop",
                )


def _lint_dead_writes(predictor: _Predictor, plan: PlanTrace) -> None:
    """WRITE_DISCARD over an unread previous write = dead computation."""
    pending: Dict[int, Tuple[int, str]] = {}  # region uid -> (op idx, name)
    for idx, op in enumerate(plan.ops):
        accesses: List[Tuple[object, Privilege]] = []
        if op.requirements is not None:
            accesses = [(region, priv) for _, region, _, priv in op.requirements]
        else:
            accesses = [(store.region, priv) for _, store, priv in op.args]
        # Reads first (WRITE observes previous contents; REDUCE
        # accumulates onto them), then writes.
        for region, priv in accesses:
            if priv.reads or priv == Privilege.REDUCE:
                pending.pop(region.uid, None)
        for region, priv in accesses:
            if not priv.writes or priv == Privilege.REDUCE:
                continue
            if priv == Privilege.WRITE_DISCARD and region.uid in pending:
                prev_idx, prev_name = pending[region.uid]
                predictor._finding(
                    "warning", "dead-write",
                    f"op {op.name!r} (launch #{idx}) discards region "
                    f"{region.name!r} written by {prev_name!r} "
                    f"(launch #{prev_idx}) that nothing read — the earlier "
                    f"write (and its copies) is dead",
                )
            if priv in (Privilege.WRITE, Privilege.WRITE_DISCARD):
                pending[region.uid] = (idx, op.name)


def _lint_restaging(predictor: _Predictor) -> None:
    """The same fragment staged into the same memory many times."""
    options = predictor.options
    counts: Counter = Counter()
    volumes: Counter = Counter()
    names: Dict[tuple, str] = {}
    for ev in predictor.log.events:
        if getattr(ev, "kind", "") != "copy" or ev.why != "stage":
            continue
        key = (ev.region, ev.rect, ev.dst_memory)
        counts[key] += 1
        volumes[key] += ev.nbytes
        names[key] = ev.region_name
    for key, count in counts.most_common():
        if count < options.restage_warn_count:
            break
        total = volumes[key] * predictor.config.effective_comm_scale
        if total < options.restage_warn_bytes:
            continue
        region, rect, dst = key
        predictor._finding(
            "note", "restage",
            f"region {names[key]!r} fragment {rect} staged into memory "
            f"{dst} {count} times ({_fmt_bytes(total)} scaled total) — "
            f"it is invalidated between uses (writer/reader ping-pong)",
        )


def _lint_capacity_pressure(predictor: _Predictor) -> None:
    options = predictor.options
    for memory in predictor.machine.memories:
        peak = predictor.instances.peak_bytes(memory)
        if peak <= 0:
            continue
        state = predictor.instances.state(memory)
        budget = memory.capacity - state.reserved_bytes
        if budget <= 0:
            continue
        if memory.uid in predictor._oom_memories:
            continue  # already an error
        if memory.uid in predictor._spill_bytes:
            # Would-be OOMs that config.spill relieves: the run completes
            # but pays eviction/spill traffic — a warning, not an error.
            spilled = predictor._spill_bytes[memory.uid]
            predictor._finding(
                "warning", "spill",
                f"memory {_mem_name(memory)} exceeds its "
                f"{_fmt_bytes(budget)} budget; graceful degradation "
                f"evicts/spills an estimated {_fmt_bytes(spilled)} "
                f"(runtime policy: LRU clean eviction, then dirty spill "
                f"to system memory)",
            )
            continue
        if peak / budget >= options.pressure_warn_fraction:
            predictor._finding(
                "warning", "memory-pressure",
                f"memory {_mem_name(memory)} peaks at {_fmt_bytes(peak)} of "
                f"{_fmt_bytes(budget)} budget ({peak / budget:.0%}) — "
                f"allocator churn territory "
                f"(threshold {options.pressure_warn_fraction:.0%})",
            )


def _lint_fusion(predictor: _Predictor) -> None:
    """Report the exact groups the deferred window will (or would) fuse.

    The groups come from the predictor's window simulation, which runs
    the runtime's own planner (:func:`repro.legion.fusion.plan_window`)
    over the plan stream — so with fusion enabled these findings are a
    statement of fact, not a heuristic: the runtime's ``fusion_log``
    will contain exactly these groups.
    """
    enabled = bool(getattr(predictor.config, "fusion", False))
    for names, elided, _verdict in predictor.fusion_groups:
        if len(names) <= 1:
            continue
        verb = (
            "will fuse" if enabled
            else "would fuse (config.fusion is disabled)"
        )
        extra = f", eliding {elided} temporar{'y' if elided == 1 else 'ies'}" if elided else ""
        predictor._finding(
            "note", "fusible",
            f"{len(names)} launches {verb} into one task"
            f"{extra}: {' + '.join(names)}",
        )


def _lint_kernel_merge(predictor: _Predictor) -> None:
    """Report per-group kernel-fusion verdicts from the dependence pass.

    ``kernel-merge-applied`` (info): the group is merge-safe and will
    execute as one generated loop nest, with the modeled compute the
    merge saves.  ``kernel-merge-blocked`` (warning): the dependence
    analyzer proved the group must replay, naming the blocking rule and
    the concrete launch/edge behind it.  Groups replaying only because
    ``config.kernel_fusion`` is off are not user-actionable per group
    and produce no finding.
    """
    if not bool(getattr(predictor.config, "kernel_fusion", False)):
        return
    for report in predictor.merge_reports:
        names = " + ".join(report["names"])
        if report["label"] == "merged":
            saved = report["saved_seconds"]
            predictor._finding(
                "note", "kernel-merge-applied",
                f"{len(report['names'])} kernels merge into one loop "
                f"nest ({names}); modeled compute saved: {saved:.3e}s",
            )
        elif report["reason"] is not None:
            predictor._finding(
                "warning", "kernel-merge-blocked",
                f"group ({names}) replays sub-kernels: "
                f"[{report['reason']}] {report['detail']}",
            )


def _lint_resilience(predictor: _Predictor) -> None:
    """The resilience pass: predicted checkpoint cost and fault lints.

    Reads the chaos config the plan would run under and the predictor's
    replayed coherence (the written sets an epoch would snapshot):

    * ``unprotected-run`` (warning) — losses scheduled with
      ``checkpoint_every=0``: no epoch bounds the journal, so a loss
      replays the whole run.
    * ``under-replicated`` (warning) — node losses with a single
      checkpoint store (``ckpt_replicas=1``: losing node 0 is
      unconditionally fatal), or more replicas requested than the
      machine has sysmem fault domains.
    * ``resilience`` (note) — predicted snapshot + replication bytes
      per checkpoint epoch and the estimated worst-case recovery cost
      (detection latency + restart delay + replica restore + replay of
      a full epoch's launches).
    """
    chaos = getattr(predictor.config, "chaos", None)
    if chaos is None:
        return
    machine = predictor.machine
    domains = len(
        {m.node for m in machine.memories if m.kind == MemoryKind.SYSMEM}
    )
    replicas = getattr(chaos, "ckpt_replicas", 1)
    effective = min(replicas, domains) if domains else 0
    node_losses = [l for l in chaos.losses if l.kind == "node"]

    # Predicted per-epoch snapshot: the written volume at end of plan
    # (what a steady-state epoch must protect), scaled like the
    # runtime's checkpoint copies.
    snap_bytes = 0.0
    for uid, coh in predictor.coherence.items():
        if coh.written.is_empty():
            continue
        itemsize = getattr(predictor.regions.get(uid), "itemsize", 8)
        snap_bytes += coh.written.volume() * itemsize
    snap_bytes *= predictor.config.effective_comm_scale
    repl_bytes = snap_bytes * max(effective - 1, 0)

    if chaos.losses and chaos.checkpoint_every == 0:
        predictor._finding(
            "warning", "unprotected-run",
            f"{len(chaos.losses)} loss(es) scheduled with "
            f"checkpoint_every=0: no checkpoint epoch bounds the "
            f"journal, so any loss replays the entire run (and at "
            f"ckpt_replicas=1 a node-0 loss is fatal with nothing "
            f"snapshotted at all)",
        )
    if node_losses and replicas == 1:
        predictor._finding(
            "warning", "under-replicated",
            f"{len(node_losses)} node loss(es) scheduled with "
            f"ckpt_replicas=1: the single node-0 checkpoint store is a "
            f"single point of failure — losing its node is "
            f"unconditionally fatal; set ckpt_replicas >= 2 to survive "
            f"store loss",
        )
    if replicas > domains > 0:
        predictor._finding(
            "warning", "under-replicated",
            f"ckpt_replicas={replicas} exceeds the machine's {domains} "
            f"sysmem fault domain(s); effective replication is only "
            f"{effective}",
        )
    if chaos.checkpoint_every > 0 or chaos.losses:
        detect = getattr(chaos, "heartbeat_period", 0.0) + getattr(
            chaos, "detection_timeout", 0.0
        )
        launches = max(len(predictor.task_ops), 1)
        # Replay re-times kernels and launch overhead (it skips only
        # the numerics), so a replayed launch costs about what the
        # original did.
        per_launch = (
            predictor.est_kernel_seconds / launches
            + predictor.config.launch_overhead
        )
        epoch = chaos.checkpoint_every or launches
        nic_bw = machine.config.nic_bandwidth
        restore = snap_bytes / nic_bw if nic_bw else 0.0
        worst = detect + chaos.recovery_delay + restore + epoch * per_launch
        predictor._finding(
            "note", "resilience",
            f"checkpoint epoch snapshots ~{_fmt_bytes(int(snap_bytes))} "
            f"x{max(effective, 1)} replica store(s) "
            f"(~{_fmt_bytes(int(repl_bytes))} replication traffic); "
            f"worst-case recovery ~{worst:.3e}s (detection {detect:.1e}s "
            f"+ restart {chaos.recovery_delay:.1e}s + replica restore + "
            f"replay of <= {epoch} launches)",
        )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def parse_machine(spec: str) -> Machine:
    """Parse a CLI machine spec: ``summit:N``, ``summit``, ``laptop``."""
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    if name == "laptop":
        return laptop()
    if name == "summit":
        nodes = int(arg) if arg else 1
        return summit(nodes=nodes)
    raise ValueError(
        f"unknown machine {spec!r} (expected laptop or summit[:nodes])"
    )


_KINDS = {
    "gpu": ProcessorKind.GPU,
    "cpu": ProcessorKind.CPU_SOCKET,
    "core": ProcessorKind.CPU_CORE,
}


def _make_scope(machine, kind, procs, per_node) -> MachineScope:
    proc_kind = _KINDS[kind] if isinstance(kind, str) else kind
    if proc_kind is None:
        proc_kind = ProcessorKind.GPU
    available = machine.procs(proc_kind)
    count = procs if procs is not None else len(available)
    return machine.scope(proc_kind, count, per_node)


def trace(
    fn,
    *args,
    machine: Optional[Machine] = None,
    kind=ProcessorKind.GPU,
    procs: Optional[int] = None,
    per_node: Optional[int] = None,
    config=None,
    deferred: bool = True,
    name: Optional[str] = None,
    **kwargs,
) -> PlanTrace:
    """Trace ``fn`` into a plan against a machine, without executing
    kernels (``deferred=True``) or alongside real execution."""
    from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope

    machine = machine or laptop()
    scope = _make_scope(machine, kind, procs, per_node)
    # Alongside mode pairs the plan with a real validated run whose
    # event log the copy-agreement tests compare per-op — fusion stays
    # off there so the comparison is launch-for-launch.  Deferred mode
    # analyzes the default (fusion-enabled) runtime.
    config = config or RuntimeConfig.legate(
        validate=not deferred, fusion=deferred
    )
    runtime = Runtime(scope, config)
    plan = PlanTrace(
        name=name or getattr(fn, "__name__", "trace"), deferred=deferred
    )
    plan.bind(runtime)
    runtime.plan_trace = plan
    try:
        with runtime_scope(runtime):
            plan.result = fn(*args, **kwargs)
    finally:
        runtime.plan_trace = None
    return plan


def analyze(
    plan: PlanTrace,
    scope: Optional[MachineScope] = None,
    config=None,
    options: Optional[AdvisorConfig] = None,
) -> Advice:
    """Statically predict the plan's execution and run the lint battery."""
    scope = scope or plan.scope
    config = config or plan.config
    if scope is None or config is None:
        raise ValueError(
            "plan is unbound: pass scope= and config= or trace via "
            "advisor.trace()"
        )
    options = options or AdvisorConfig()
    predictor = _Predictor(plan, scope, config, options)
    predictor.run()
    _lint_notes(predictor, plan)
    _lint_dead_writes(predictor, plan)
    _lint_restaging(predictor)
    _lint_capacity_pressure(predictor)
    _lint_fusion(predictor)
    _lint_kernel_merge(predictor)
    _lint_resilience(predictor)

    format_advice: List[FormatAdvice] = []
    if options.autoformat:
        # The pass answers "should this plan run under
        # RuntimeConfig.autoformat?" — so unamortized conversions
        # escalate to errors (autoformat_on) and gate the CLI exit code.
        format_advice, format_lints = advise_formats(
            plan, scope, config, autoformat_on=True
        )
        for severity, rule, message in format_lints:
            predictor._finding(severity, rule, message)

    machine = scope.machine
    cfg = machine.config
    memories = []
    for memory in machine.memories:
        peak = predictor.instances.peak_bytes(memory)
        if peak <= 0:
            continue
        state = predictor.instances.state(memory)
        memories.append(
            MemoryReport(
                memory=_mem_name(memory),
                kind=memory.kind.value,
                node=memory.node,
                peak_bytes=int(peak),
                capacity=int(memory.capacity),
                reserved_bytes=int(state.reserved_bytes),
            )
        )

    est_copy = 0.0
    class_bandwidth = {
        "intra": cfg.intra_memory_bandwidth,
        "nvlink": cfg.nvlink_bandwidth,
        "nic": cfg.nic_bandwidth,
    }
    for cls, entry in predictor.traffic.items():
        est_copy += entry["scaled_bytes"] / class_bandwidth[cls]

    severity_rank = {"error": 0, "warning": 1, "note": 2}
    findings = sorted(
        predictor.findings, key=lambda f: severity_rank.get(f.severity, 3)
    )
    ops = sorted(
        predictor.op_groups.values(), key=lambda r: -r.count
    )
    nodes = {p.node for p in scope.processors}
    return Advice(
        plan_name=plan.name,
        machine=f"{cfg.nodes} node(s), {len(machine.processors)} processors",
        processors=(
            f"{len(scope.processors)} x {scope.kind.value} "
            f"across {len(nodes)} node(s)"
        ),
        launches=len(plan.ops),
        regions=sum(1 for e in plan.events if isinstance(e, PlanRegion)),
        ops=ops,
        traffic=predictor.traffic,
        memories=memories,
        findings=findings,
        est_kernel_seconds=predictor.est_kernel_seconds,
        est_copy_seconds=est_copy,
        comm_scale=config.effective_comm_scale,
        predicted=predictor.log,
        # The simulation always runs (the lint reports hypothetical
        # groups either way), but only a fusion-enabled runtime actually
        # forms them — an agreement comparison against a fusion-off run
        # should see none.
        fusion_groups=(
            list(predictor.fusion_groups)
            if getattr(config, "fusion", False)
            else []
        ),
        format_advice=format_advice,
        caches={"compile": _compile_cache_stats()},
    )


def advise(
    fn,
    *args,
    machine: Optional[Machine] = None,
    kind=ProcessorKind.GPU,
    procs: Optional[int] = None,
    per_node: Optional[int] = None,
    config=None,
    options: Optional[AdvisorConfig] = None,
    **kwargs,
) -> Advice:
    """Trace ``fn`` in deferred mode and analyze it in one call."""
    plan = trace(
        fn, *args, machine=machine, kind=kind, procs=procs,
        per_node=per_node, config=config, deferred=True, **kwargs
    )
    return analyze(plan, options=options)
