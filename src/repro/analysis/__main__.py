"""``python -m repro.analysis <logfile>`` — validate a recorded run."""

import sys

from repro.analysis.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Output was piped into a pager/head that exited early; not an error.
    sys.stderr.close()
    sys.exit(0)
