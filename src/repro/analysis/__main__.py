"""``python -m repro.analysis <logfile>`` — validate a recorded run."""

import sys

from repro.analysis.cli import main

sys.exit(main())
