"""Kernel-fusion legality: dependence analysis over fused-group bodies.

PR 3's deferred window merges compatible element-wise launches into one
*task* but still replays every sub-kernel body in issue order — one
launch overhead is paid, yet the intermediates are written and re-read
and the cost model charges per kernel.  "Composing Distributed
Computations Through Task and Kernel Fusion" (Yadav et al.) shows the
remaining win comes from merging the kernel *bodies*; "Data-Centric
Python" (Ziogas et al.) shows how far generated NumPy-level loop nests
can be pushed.  Merging bodies is only safe when a static analysis
proves the combined nest is bitwise-identical to issue-order replay.

This module is that analysis.  It operates on the same
:class:`~repro.legion.fusion.LaunchSummary` sequences the fusion
planner consumes — names, privileges, partition boundaries, which
arguments share a region — plus each launch's body IR: the postfix
:attr:`~repro.legion.task.Pointwise.expr` programs the ufunc/lazy
layers attach (ops resolving through :mod:`repro.numeric.optable`) and
the DISTAL :class:`~repro.distal.ir.Assignment` statements generated
kernels carry.  From a fused group's accesses it builds per-group
def-use chains and region-overlap facts, then classifies the group:

* **merge-safe** — a single combined loop nest (one generated kernel,
  one cost entry, intermediates as in-nest temporaries; see
  :func:`repro.distal.codegen.generate_nest`) is provably
  bitwise-identical to issue-order replay; or
* **replay-only** — with a machine-readable reason (:data:`REASONS`).

Legality rules (all must hold for merge-safe):

1.  *Known bodies only.*  Every sub-launch carries a well-formed body
    IR whose ops resolve through the shared op table — the nest then
    runs the exact same NumPy callables in the exact same order as
    replay.  Hand-built kernels, ``clip``/``astype``/``where`` lambdas
    and malformed programs are ``opaque-kernel``.
2.  *No reduction reordering.*  A body carrying a DISTAL statement
    with reduction variables (index vars appearing only on the RHS)
    accumulates in a loop order the combined nest would not preserve:
    ``reduction-reorder``.
3.  *No replicated operands.*  A broadcast (whole-region) operand is
    shape-incompatible with a tile-sized nest variable:
    ``replicated-operand``.
4.  *Compatible iteration spaces.*  Every tiled access shares the same
    tile boundaries and every launch the same color count, so one nest
    iterates all statements' shards together:
    ``iteration-space-mismatch``.  (The window planner already
    enforces this for its own groups; direct callers may classify
    hand-built ones.)
5.  *No read-after-write through a non-elided region.*  A value
    flowing between sub-launches through a region that stays mapped
    (not elided) is externally visible between the two kernels; the
    nest must keep it an instance-backed array, which defeats the
    one-cost-entry merged model: ``raw-through-unelided-region``.
    RAW through *elided* temporaries is the merge-safe case — the
    value becomes an in-nest variable.  WAR and WAW need no edge
    restrictions: nest statements execute in issue order over whole
    shard rects, exactly like replay.

The analysis is purely structural — it reads only summaries, never the
runtime — so the runtime's flush path and the static advisor's window
simulation call the *same* :func:`classify` on the *same* summary
streams and agree verdict-for-verdict (``Advice.fusion_groups`` vs
``Runtime.fusion_log``; see ``tests/analysis/test_fusion_agreement``).

For merge-safe groups executed by the runtime,
:func:`build_nest_plan` lowers the concrete
:class:`~repro.legion.task.TaskLaunch` group into a :class:`NestPlan`
— programs with loads resolved to in-nest variables or external views,
per-statement output dtypes and store decisions, deduplicated
read/write traffic lists — which
:func:`repro.distal.codegen.generate_nest` turns into ONE exec'd
NumPy source per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.legion.fusion import GroupPlan, LaunchSummary
from repro.legion.privilege import Privilege
from repro.legion.task import Pointwise, TaskLaunch
from repro.numeric import optable

#: Machine-readable replay-only reasons, with the rule each encodes.
REASONS: Dict[str, str] = {
    "disabled": (
        "kernel fusion is off (RuntimeConfig.kernel_fusion=False); the "
        "group replays sub-kernels in issue order"
    ),
    "opaque-kernel": (
        "a sub-launch has no (or a malformed) body IR — hand-built "
        "kernels, clip/astype/where lambdas — so the nest cannot prove "
        "it runs the same callables in the same order"
    ),
    "reduction-reorder": (
        "a sub-launch's DISTAL statement carries reduction variables; "
        "a combined nest would reorder its accumulation"
    ),
    "replicated-operand": (
        "a sub-launch reads a replicated (whole-region) operand, which "
        "is shape-incompatible with a tile-sized nest variable"
    ),
    "iteration-space-mismatch": (
        "sub-launches disagree on tile boundaries or color counts, so "
        "no single loop nest iterates all of them"
    ),
    "raw-through-unelided-region": (
        "a value flows between sub-launches through a region that "
        "stays mapped (not elided) — externally visible between the "
        "two kernels"
    ),
}

#: Program step kinds a well-formed Pointwise.expr may contain.
_STEP_KINDS = ("load", "scalar", "un", "bin")


@dataclass(frozen=True)
class DependEdge:
    """One def-use fact inside a fused group.

    ``kind`` is ``"raw"`` (read-after-write), ``"war"``
    (write-after-read) or ``"waw"`` (write-after-write); producer and
    consumer are (window-local sub-launch position, launch name);
    ``elided`` says whether the region carrying the edge is an elided
    in-group temporary.
    """

    kind: str
    lid: int  # window-local region id (fusion.local_ids)
    region: str  # region display name ("" when unnamed)
    producer: Tuple[int, str]
    consumer: Tuple[int, str]
    elided: bool

    def describe(self) -> str:
        """Human-readable edge, for lint messages."""
        name = self.region or f"region#{self.lid}"
        return (
            f"{self.kind.upper()} on {name}: "
            f"{self.producer[1]}[{self.producer[0]}] -> "
            f"{self.consumer[1]}[{self.consumer[0]}]"
        )


@dataclass(frozen=True)
class Verdict:
    """The classification of one :class:`GroupPlan`.

    ``merge_safe`` groups may execute as a single combined loop nest;
    otherwise ``reason`` names the blocking rule (a :data:`REASONS`
    key, or ``None`` for single-launch groups where merging is moot)
    and ``detail`` pinpoints the blocking launch or dependence edge.
    ``edges`` holds every def-use fact found, blocking or not.
    """

    merge_safe: bool
    reason: Optional[str]
    detail: str
    edges: Tuple[DependEdge, ...] = ()

    @property
    def blocked(self) -> bool:
        """True when a fused group cannot be body-merged."""
        return not self.merge_safe and self.reason is not None


def kernel_ir(
    summary: LaunchSummary,
) -> Tuple[Optional[Tuple[Tuple[str, str], ...]], Optional[str], str]:
    """Validate one launch's body IR: ``(program, out, problem)``.

    Returns the postfix program and output requirement name when the
    IR is well-formed (``problem == ""``): every step kind is known,
    loads name declared accesses, un/bin ops resolve through the op
    table, stack discipline yields exactly one value, and ``out``
    names a written access.  Otherwise ``(None, None, problem)`` with
    a description — the launch is an opaque kernel.
    """
    pw = summary.pointwise
    if pw is None:
        return None, None, f"launch {summary.name!r} has no Pointwise marker"
    if pw.expr is None or pw.out is None:
        ops = "+".join(pw.ops) or summary.name
        return None, None, f"kernel {ops!r} exposes no body IR"
    by_name = {acc.name: acc for acc in summary.accesses}
    out_acc = by_name.get(pw.out)
    if out_acc is None or not out_acc.privilege.writes:
        return None, None, (
            f"launch {summary.name!r}: IR output {pw.out!r} is not a "
            f"written region argument"
        )
    depth = 0
    for step in pw.expr:
        if (
            not isinstance(step, tuple)
            or len(step) != 2
            or step[0] not in _STEP_KINDS
        ):
            return None, None, (
                f"launch {summary.name!r}: malformed IR step {step!r}"
            )
        kind, arg = step
        if kind == "load":
            if arg not in by_name:
                return None, None, (
                    f"launch {summary.name!r}: IR loads unknown "
                    f"argument {arg!r}"
                )
            depth += 1
        elif kind == "scalar":
            depth += 1
        elif kind == "un":
            if not optable.is_unop(arg) or depth < 1:
                return None, None, (
                    f"launch {summary.name!r}: unknown or misplaced "
                    f"unary op {arg!r}"
                )
        else:  # bin
            if not optable.is_binop(arg) or depth < 2:
                return None, None, (
                    f"launch {summary.name!r}: unknown or misplaced "
                    f"binary op {arg!r}"
                )
            depth -= 1
    if depth != 1:
        return None, None, (
            f"launch {summary.name!r}: IR leaves {depth} values on the "
            f"stack (expected 1)"
        )
    return pw.expr, pw.out, ""


def classify_statement(statement) -> Optional[str]:
    """The replay-only reason a DISTAL statement imposes, or ``None``.

    A statement with reduction variables (index vars appearing only on
    the RHS, e.g. ``j`` in ``y(i)=A(i,j)*x(j)``) accumulates across an
    inner loop whose order a combined nest would not preserve —
    ``"reduction-reorder"``.  Pure element-wise statements
    (``y(i)=a(i)*b(i)``) impose nothing.
    """
    if statement is None:
        return None
    reduction_vars = getattr(statement, "reduction_vars", None)
    if reduction_vars:
        return "reduction-reorder"
    return None


def def_use(
    summaries: Sequence[LaunchSummary],
    ids: Dict[int, int],
    indices: Sequence[int],
) -> Tuple[DependEdge, ...]:
    """Every RAW/WAR/WAW fact between distinct sub-launches of a group.

    Edges are region-granular (the runtime's aliasing unit): two
    requirements alias exactly when they share a region uid.  Edges
    within one sub-launch (in-place updates) are not dependences — a
    statement's reads complete before its write, by NumPy assignment
    semantics, in both the replay and the nest.
    """
    edges: List[DependEdge] = []
    last_write: Dict[int, Tuple[int, int, str]] = {}  # lid -> (pos, idx, name)
    readers: Dict[int, List[Tuple[int, int, str]]] = {}
    for pos, index in enumerate(indices):
        summary = summaries[index]
        seen_here: set = set()
        for acc in summary.accesses:
            lid = ids[acc.region.uid]
            rname = getattr(acc.region, "name", "") or ""
            if acc.privilege.reads:
                writer = last_write.get(lid)
                if writer is not None and writer[0] != pos:
                    edges.append(
                        DependEdge(
                            "raw", lid, rname,
                            (writer[0], writer[2]),
                            (pos, summary.name),
                            False,  # elision patched by classify()
                        )
                    )
                readers.setdefault(lid, []).append((pos, index, summary.name))
            if acc.privilege.writes:
                prev = last_write.get(lid)
                if prev is not None and prev[0] != pos:
                    edges.append(
                        DependEdge(
                            "waw", lid, rname,
                            (prev[0], prev[2]), (pos, summary.name), False,
                        )
                    )
                for rpos, _ridx, rnm in readers.get(lid, ()):
                    if rpos != pos and (lid, rpos, pos) not in seen_here:
                        seen_here.add((lid, rpos, pos))
                        edges.append(
                            DependEdge(
                                "war", lid, rname,
                                (rpos, rnm), (pos, summary.name), False,
                            )
                        )
                last_write[lid] = (pos, index, summary.name)
    return tuple(edges)


def classify(
    summaries: Sequence[LaunchSummary],
    ids: Dict[int, int],
    plan: GroupPlan,
) -> Verdict:
    """Classify one planned group: merge-safe or replay-only.

    Checks the legality rules in a deterministic order (module docs);
    the first violated rule names the verdict, so the runtime and the
    advisor — which call this on identical summary streams — report
    identical reasons.  Single-launch groups return a non-blocked,
    non-merge-safe verdict (``reason is None``): there is nothing to
    merge.
    """
    indices = plan.indices
    if len(indices) <= 1:
        return Verdict(False, None, "single launch; nothing to merge")

    # Rules 1 + 2: every body known, no reduction-carrying statements.
    for index in indices:
        summary = summaries[index]
        reason = classify_statement(
            summary.pointwise.statement if summary.pointwise else None
        )
        if reason is not None:
            statement = summary.pointwise.statement
            return Verdict(
                False, reason,
                f"launch {summary.name!r} carries statement "
                f"{statement.key()!r} with reduction var(s) "
                f"{', '.join(str(v) for v in statement.reduction_vars)}",
            )
        _program, _out, problem = kernel_ir(summary)
        if problem:
            return Verdict(False, "opaque-kernel", problem)

    # Rule 3: no replicated operands.
    for index in indices:
        summary = summaries[index]
        for acc in summary.accesses:
            if acc.part_kind == "rep":
                return Verdict(
                    False, "replicated-operand",
                    f"launch {summary.name!r} replicates "
                    f"{acc.region.name or acc.name or 'an operand'!r}",
                )

    # Rule 4: one iteration space.
    colors = {summaries[i].colors for i in indices}
    boundaries = {
        acc.boundaries
        for i in indices
        for acc in summaries[i].accesses
        if acc.part_kind == "tile"
    }
    if len(colors) > 1 or len(boundaries) > 1:
        return Verdict(
            False, "iteration-space-mismatch",
            f"group spans {len(colors)} color count(s) and "
            f"{len(boundaries)} distinct tile boundary set(s)",
        )

    # Rule 5: RAW only through elided temporaries.
    edges = tuple(
        DependEdge(
            e.kind, e.lid, e.region, e.producer, e.consumer,
            e.lid in plan.elide,
        )
        for e in def_use(summaries, ids, indices)
    )
    for edge in edges:
        if edge.kind == "raw" and not edge.elided:
            return Verdict(
                False, "raw-through-unelided-region",
                f"blocking edge {edge.describe()} (region stays mapped)",
                edges,
            )

    return Verdict(
        True, None,
        f"{len(indices)} statements merge into one nest "
        f"({len(plan.elide)} temporar"
        f"{'y' if len(plan.elide) == 1 else 'ies'} become nest values)",
        edges,
    )


def classify_window(
    summaries: Sequence[LaunchSummary],
    plans: Sequence[GroupPlan],
    ids: Optional[Dict[int, int]] = None,
) -> List[Verdict]:
    """Classify every planned group of a window (convenience)."""
    from repro.legion import fusion

    if ids is None:
        ids = fusion.local_ids(summaries)
    return [classify(summaries, ids, plan) for plan in plans]


def verdict_label(plan: GroupPlan, verdict: Verdict, kernel_fusion: bool) -> str:
    """The fusion-log label of a group: how it will (or did) execute.

    ``"single"`` for one-launch groups, ``"merged"`` for merge-safe
    groups under ``RuntimeConfig.kernel_fusion``, else
    ``"replay:<reason>"``.  Both ``Runtime.fusion_log`` and
    ``Advice.fusion_groups`` record exactly this string, which is what
    makes their entries comparable group-for-group.
    """
    if not plan.fused:
        return "single"
    if not kernel_fusion:
        return "replay:disabled"
    if verdict.merge_safe:
        return "merged"
    return f"replay:{verdict.reason or 'opaque-kernel'}"


# ----------------------------------------------------------------------
# Lowering merge-safe groups to nest plans (runtime side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NestStep:
    """One statement of a combined loop nest, loads resolved.

    ``program`` is the sub-launch's postfix body with every step
    lowered for the nest: ``("view", mangled)`` reads an external
    region through the fused context, ``("var", j)`` reuses step
    ``j``'s in-nest value (a RAW through an in-group write),
    ``("scalar", mangled)`` reads a fused scalar argument, and
    ``("un"/"bin", op)`` apply canonical op-table callables.  The
    computed value is cast to ``dtype`` — the bitwise-exact emulation
    of replay's ``out[...] = expr`` store — and written to ``out``
    unless the backing region is a dead elided temporary
    (``store=False``: the array never materializes at all).
    """

    index: int
    name: str
    program: Tuple[Tuple[str, object], ...]
    out: str  # mangled requirement name
    out_uid: int
    dtype: str  # np.dtype().str — round-trips through np.dtype()
    store: bool
    elided: bool
    # Flops per output element, matching the sub-launch's own cost
    # model exactly (fill: 0; ufunc: 1; lazy chain: max(ops, 1)) so a
    # merged group reports the same modeled flops as replay.
    weight: float


@dataclass(frozen=True)
class NestPlan:
    """A merge-safe group lowered for code generation.

    ``reads`` lists the mangled names of external inputs (deduplicated
    by region — a region read by three statements is charged once) and
    ``charged_writes`` the mangled outputs that remain instance-backed
    traffic; together they are the merged cost model's byte side, which
    is what makes merged modeled compute strictly cheaper than replay's
    per-kernel accounting whenever statements share operands or elide
    temporaries.
    """

    steps: Tuple[NestStep, ...]
    reads: Tuple[str, ...]
    charged_writes: Tuple[str, ...]

    @property
    def temps_eliminated(self) -> int:
        """Dead elided temporaries that never materialize anywhere."""
        return sum(1 for step in self.steps if not step.store)

    def key(self) -> tuple:
        """Hashable identity of the generated source (memoization)."""
        return (
            tuple(
                (
                    s.name, s.program, s.out, s.dtype, s.store, s.weight,
                )
                for s in self.steps
            ),
            self.reads,
            self.charged_writes,
        )


def build_nest_plan(
    group: Sequence[TaskLaunch],
    elide_uids: frozenset,
    dead_uids: frozenset = frozenset(),
) -> NestPlan:
    """Lower a merge-safe group of concrete launches to a nest plan.

    Callers must have classified the group merge-safe first (the
    runtime does; see ``Runtime._flush``).  ``elide_uids`` are the
    region uids the fusion plan elides; ``dead_uids`` the subset also
    freed before the flush — their stores are provably unobservable
    (no instance *and* no later host read), so the nest skips them
    entirely and the temporary exists only as a nest value.

    Requirement/scalar names are mangled ``"<i>.<name>"`` exactly as
    :func:`repro.legion.fusion.fuse` mangles them, so the generated
    kernel runs against the fused launch's context unchanged.
    """
    steps: List[NestStep] = []
    producer: Dict[int, int] = {}  # region uid -> producing step index
    reads: List[str] = []
    seen_reads: set = set()
    charged: List[str] = []
    seen_writes: set = set()
    for i, task in enumerate(group):
        pw = task.pointwise
        if pw is None or pw.expr is None or pw.out is None:
            raise ValueError(
                f"build_nest_plan: sub-launch {task.name!r} has no body "
                f"IR (classify the group first)"
            )
        by_name = {req.name: req for req in task.requirements}
        out_req = by_name[pw.out]
        program: List[Tuple[str, object]] = []
        ops = 0
        for kind, arg in pw.expr:
            if kind == "load":
                uid = by_name[arg].region.uid
                if uid in producer:
                    program.append(("var", producer[uid]))
                else:
                    mangled = f"{i}.{arg}"
                    program.append(("view", mangled))
                    if uid not in seen_reads:
                        seen_reads.add(uid)
                        reads.append(mangled)
            elif kind == "scalar":
                program.append(("scalar", f"{i}.{arg}"))
            else:
                ops += 1
                program.append((kind, optable.canonical(arg)))
        out_uid = out_req.region.uid
        elided = out_uid in elide_uids
        store = not (elided and out_uid in dead_uids)
        # Per-element flops mirroring the sub cost models exactly: a
        # fill moves bytes but computes nothing; everything else is
        # charged one flop per op per element, floored at one pass.
        weight = 0.0 if ops == 0 and pw.ops == ("fill",) else float(max(ops, 1))
        steps.append(
            NestStep(
                index=i,
                name=task.name,
                program=tuple(program),
                out=f"{i}.{pw.out}",
                out_uid=out_uid,
                dtype=np.dtype(out_req.region.data.dtype).str,
                store=store,
                elided=elided,
                weight=weight,
            )
        )
        producer[out_uid] = i
        if store and out_uid not in seen_writes:
            seen_writes.add(out_uid)
            charged.append(f"{i}.{pw.out}")
    return NestPlan(tuple(steps), tuple(reads), tuple(charged))
