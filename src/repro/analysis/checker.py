"""Offline race/dependence checker over a recorded event log.

This is the reproduction's Legion Spy: given the event stream of one
simulated execution it rebuilds the happens-before relation and proves
(or refutes) that every conflicting pair of accesses was ordered and
every read was fed by copies.

Happens-before rules
--------------------
* **Program order** — launches are issued sequentially (the frontend is
  a sequential Python program), so accesses in *different* launches are
  ordered by launch id.
* **Intra-launch concurrency** — shards (colors) of one launch execute
  logically in parallel: there is *no* edge between them.  Two shards of
  the same launch touching overlapping rectangles of the same region
  with conflicting privileges (at least one writes, and they are not
  both REDUCE folds) race — this is what a bad mapper, a bad explicit
  partition or a lost image constraint produces.
* **Copy edges** — program order alone does not move data: a read in
  memory ``M`` of a rect written elsewhere is only justified by copy
  events delivering those bytes into ``M``.  The checker replays the
  log's writes and copies into its own validity map (independent of the
  runtime's coherence tracking) and flags *stale reads*: pieces that
  were written somewhere but never made valid in the reading memory.

Reads of data never written anywhere are legal (uninitialized data
transfers nothing), matching the runtime's attach semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.events import (
    CopyEvent,
    EventLog,
    FaultEvent,
    FoldEvent,
    ReqAccess,
    ShardEvent,
)
from repro.geometry import Rect, RectSet


@dataclass(frozen=True)
class Violation:
    """One checker finding, anchored to the event that exposed it."""

    kind: str  # "intra-launch-race" | "stale-read" | "copy-from-invalid"
    seq: int
    region: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] seq={self.seq} region={self.region}: {self.message}"


def _conflicts(a: ReqAccess, b: ReqAccess) -> bool:
    """Whether two overlapping accesses need an ordering edge."""
    if a.privilege == "reduce" and b.privilege == "reduce":
        return False  # commutative folds are atomic with respect to each other
    return a.writes or b.writes


class _RegionState:
    """The checker's independent validity map for one region."""

    __slots__ = ("valid", "written")

    def __init__(self):
        # memory uid -> rects currently valid there
        self.valid: Dict[int, RectSet] = {}
        # rects ever written in any memory
        self.written: RectSet = RectSet()

    def valid_in(self, memory: int) -> RectSet:
        return self.valid.setdefault(memory, RectSet())

    def stale(self, memory: int, rect: Rect) -> List[Rect]:
        """Pieces of ``rect`` written somewhere but not valid here."""
        need = self.written.intersect_rect(rect)
        if need.is_empty():
            return []
        return need.subtract(self.valid_in(memory)).rects()

    def mark_copied(self, memory: int, rect: Rect) -> None:
        self.valid_in(memory).add(rect)

    def mark_written(self, memory: int, rect: Rect) -> None:
        """Exclusive write: valid here, invalid everywhere else."""
        for mem, rset in self.valid.items():
            if mem != memory:
                self.valid[mem] = rset.subtract_rect(rect)
        self.valid_in(memory).add(rect)
        self.written.add(rect)


def check_log(log: EventLog, max_violations: int = 100) -> List[Violation]:
    """Replay a log and return every ordering/validity violation found."""
    violations: List[Violation] = []
    states: Dict[int, _RegionState] = {}
    names: Dict[int, str] = {}
    # launch id -> per-region accesses seen so far: (color, req)
    launches: Dict[int, Dict[int, List[Tuple[int, ReqAccess]]]] = {}

    def state(region: int) -> _RegionState:
        st = states.get(region)
        if st is None:
            st = states[region] = _RegionState()
        return st

    for ev in log.events:
        if len(violations) >= max_violations:
            break
        if isinstance(ev, CopyEvent):
            names.setdefault(ev.region, ev.region_name)
            if ev.why not in ("stage", "spill", "checkpoint", "restore"):
                # Fold transfers carry REDUCE partials, not region
                # contents; they establish nothing.  Spill, checkpoint
                # and restore copies move real region contents (dirty
                # pieces to/between checkpoint stores) and do establish
                # validity — replica copies establish, confirmed loss
                # (FaultEvent below) drops.
                continue
            st = state(ev.region)
            # The source must itself have been able to supply the bytes.
            bad = st.stale(ev.src_memory, ev.rect)
            for piece in bad:
                violations.append(
                    Violation(
                        "copy-from-invalid", ev.seq, ev.region_name,
                        f"copy of {piece} from memory {ev.src_memory} "
                        f"to {ev.dst_memory}, but the source never held "
                        f"valid data for it",
                    )
                )
            st.mark_copied(ev.dst_memory, ev.rect)
        elif isinstance(ev, ShardEvent):
            per_region = launches.setdefault(ev.launch, {})
            for req in ev.reqs:
                if req.rect.is_empty():
                    continue
                names.setdefault(req.region, req.region_name)
                st = state(req.region)
                # 1. Intra-launch races against previously seen shards.
                seen = per_region.setdefault(req.region, [])
                for color, other in seen:
                    if color == ev.color:
                        continue
                    overlap = req.rect.intersect(other.rect)
                    if overlap.is_empty() or not _conflicts(req, other):
                        continue
                    violations.append(
                        Violation(
                            "intra-launch-race", ev.seq, req.region_name,
                            f"task {ev.name!r}: shard {ev.color} "
                            f"({req.privilege} {req.rect}) and shard "
                            f"{color} ({other.privilege} {other.rect}) "
                            f"overlap on {overlap} with no ordering edge",
                        )
                    )
                seen.append((ev.color, req))
                # 2. Stale reads: every read must be justified by the
                # writes and copies replayed so far.  Exact image
                # partitions read only their recorded pieces, not the
                # bounding rect.  Journal-replay shards are exempt:
                # their reads were satisfied pre-fault, and a value
                # consumed and then overwritten may no longer exist
                # anywhere (their *writes* still count, below).
                if req.reads and not ev.replay:
                    for want in req.read_pieces:
                        for piece in st.stale(ev.memory, want):
                            violations.append(
                                Violation(
                                    "stale-read", ev.seq, req.region_name,
                                    f"task {ev.name!r} shard {ev.color} "
                                    f"reads {piece} in memory {ev.memory}, "
                                    f"but no copy ever delivered that data "
                                    f"there",
                                )
                            )
                # 3. Writes update the validity map.  REDUCE partials
                # become region contents only at the fold.
                if req.writes and req.privilege != "reduce":
                    st.mark_written(ev.memory, req.rect)
        elif isinstance(ev, FoldEvent):
            names.setdefault(ev.region, ev.region_name)
            state(ev.region).mark_written(ev.memory, ev.rect)
        elif isinstance(ev, FaultEvent):
            # A loss wipes the listed memories: drop their validity in
            # every region (``written`` history stays — post-recovery
            # reads must be re-justified by replayed copies).
            for st in states.values():
                for mem in ev.memories:
                    st.valid.pop(mem, None)
    return violations[:max_violations]
