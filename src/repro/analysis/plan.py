"""Plan capture: the advisor's symbolic trace of a sparse program.

The advisor (:mod:`repro.analysis.advisor`) works ahead of execution: it
needs the *sequence of task launches* a program would issue — each with
its stores, privileges, constraints and color count — without the cost
of actually running kernels.  This module is the recording half: a
:class:`PlanTrace` attached to a runtime (``runtime.plan_trace``)
receives one event per region creation, task launch, fill, free and
library annotation ("this op densified", "this op converted formats").

Two capture modes share the same hooks:

* **deferred** (``deferred=True``): :meth:`AutoTask.execute
  <repro.constraints.task.AutoTask.execute>` records the op and returns
  *without* solving constraints or launching.  Kernels never run, so
  scalar results are policy values (NaN for norms/dots so convergence
  loops run to ``maxiter``; 0 for counting reductions so sizing code
  stays well-defined).  This is the ``python -m repro.analysis advise``
  mode: the program is interpreted abstractly at trace time and the
  predictor replays the plan against a machine model afterwards.
* **alongside** (``deferred=False``): ops are recorded *and* executed
  normally.  Used by the agreement tests, which compare the advisor's
  predicted copies against the event log of the very same run.

This module deliberately imports nothing from :mod:`repro.legion`,
:mod:`repro.constraints` or :mod:`repro.distal`: callers pass their
region/store/privilege objects in and the trace stores them opaquely,
so the runtime can import this module without cycles (the same rule as
the rest of :mod:`repro.analysis`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple


class PlanOp:
    """One recorded task launch (or fill) in program order.

    Either ``args``/``constraints`` are set (an AutoTask: the predictor
    re-runs the constraint solver over the stores) or ``requirements``
    is set (a fill: the concrete ``(name, region, partition, privilege)``
    list the runtime would have used directly).
    """

    kind = "op"

    __slots__ = (
        "name", "args", "constraints", "scalars", "reduction", "colors",
        "cost_fn", "requirements", "pointwise", "index",
    )

    def __init__(
        self,
        name: str,
        colors: int,
        args: Optional[List[tuple]] = None,
        constraints: Optional[List[object]] = None,
        scalars: Optional[Dict[str, Any]] = None,
        reduction: Optional[str] = None,
        cost_fn=None,
        requirements: Optional[List[tuple]] = None,
        pointwise=None,
        index: int = 0,
    ):
        self.name = name
        self.colors = int(colors)
        self.args = args or []  # [(arg_name, Store, Privilege)]
        self.constraints = constraints or []
        self.scalars = scalars or {}
        self.reduction = reduction
        self.cost_fn = cost_fn
        # Fill path: [(arg_name, Region, Partition, Privilege)].
        self.requirements = requirements
        # Element-wise marker (repro.legion.task.Pointwise), stored
        # opaquely: the advisor's fusion-window simulation keys off it.
        self.pointwise = pointwise
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanOp({self.name!r}, colors={self.colors})"


class PlanRegion:
    """A region created during the trace (with attach information)."""

    kind = "region"

    __slots__ = ("region", "attached", "index")

    def __init__(self, region, attached: bool, index: int = 0):
        self.region = region
        self.attached = bool(attached)
        self.index = index


class PlanFree:
    """A region freed (instances recycled) during the trace."""

    kind = "free"

    __slots__ = ("region_uid", "index")

    def __init__(self, region_uid: int, index: int = 0):
        self.region_uid = int(region_uid)
        self.index = index


class PlanNote:
    """A library annotation: densification, format conversion, etc."""

    kind = "note"

    __slots__ = ("category", "info", "index")

    def __init__(self, category: str, info: Dict[str, Any], index: int = 0):
        self.category = category
        self.info = info
        self.index = index


class PlanTrace:
    """The recorded plan of one traced program."""

    def __init__(self, name: str = "trace", deferred: bool = False):
        self.name = name
        self.deferred = bool(deferred)
        self.events: List[object] = []
        # Bound from the tracing runtime (bind()): the predictor replays
        # against the same configuration and machine scope by default.
        self.config = None
        self.scope = None
        self.mem_scale_by_extent: Dict[int, float] = {}
        # The traced function's return value (set by advisor.trace).
        self.result: Any = None

    # ------------------------------------------------------------------
    def bind(self, runtime) -> "PlanTrace":
        """Adopt a runtime's config/scope as the default analysis target."""
        self.config = runtime.config
        self.scope = runtime.scope
        self.mem_scale_by_extent = runtime.mem_scale_by_extent
        return self

    # ------------------------------------------------------------------
    # Recording (called from runtime/AutoTask hooks; each is O(1))
    # ------------------------------------------------------------------
    def _append(self, event) -> None:
        event.index = len(self.events)
        self.events.append(event)

    def record_task_op(
        self,
        name: str,
        args: List[tuple],
        constraints: List[object],
        scalars: Dict[str, Any],
        reduction: Optional[str],
        colors: int,
        cost_fn,
        pointwise=None,
    ) -> PlanOp:
        """Record an AutoTask launch (stores + privileges + constraints)."""
        op = PlanOp(
            name, colors, args=list(args), constraints=list(constraints),
            scalars=dict(scalars), reduction=reduction, cost_fn=cost_fn,
            pointwise=pointwise,
        )
        self._append(op)
        return op

    def record_fill(
        self, region, partition, privilege, value, pointwise=None
    ) -> PlanOp:
        """Record a direct runtime fill (concrete partition, no solve)."""
        op = PlanOp(
            "fill", partition.color_count,
            scalars={"value": value},
            requirements=[("out", region, partition, privilege)],
            pointwise=pointwise,
        )
        self._append(op)
        return op

    def record_region(self, region, attached: bool) -> None:
        """Record a region creation (attached = host data provided)."""
        self._append(PlanRegion(region, attached))

    def record_free(self, region_uid: int) -> None:
        """Record a region's instances being recycled."""
        self._append(PlanFree(region_uid))

    def record_note(self, category: str, **info) -> None:
        """Record a library annotation (densify, convert, ...)."""
        self._append(PlanNote(category, info))

    # ------------------------------------------------------------------
    # Deferred-execution policy
    # ------------------------------------------------------------------
    def deferred_scalar(self, task_name: str) -> float:
        """The placeholder value a skipped scalar reduction returns.

        NaN for norms/dots: any ``float(x) <= tol`` convergence branch
        is False, so iterative solvers run to ``maxiter`` — the
        conservative (maximal) plan.  Counting reductions return 0 so
        ``int(...)`` sizing of two-pass assembly stays well-defined.
        """
        lowered = task_name.lower()
        if "count" in lowered or "nnz" in lowered:
            return 0.0
        return math.nan

    # ------------------------------------------------------------------
    @property
    def ops(self) -> List[PlanOp]:
        """The recorded launches, in program order."""
        return [e for e in self.events if isinstance(e, PlanOp)]

    @property
    def notes(self) -> List[PlanNote]:
        """The recorded library annotations, in program order."""
        return [e for e in self.events if isinstance(e, PlanNote)]

    def stores(self) -> List[object]:
        """Every distinct store appearing in the plan (by identity)."""
        seen: Dict[int, object] = {}
        for op in self.ops:
            for _, store, _ in op.args:
                seen.setdefault(id(store), store)
        return list(seen.values())

    def stats(self) -> Dict[str, int]:
        """Event counts by kind."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "deferred" if self.deferred else "alongside"
        return f"PlanTrace({self.name!r}, {mode}, {self.stats()})"
