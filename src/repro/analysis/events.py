"""Structured event log of one simulated execution (the Legion Spy input).

When :class:`~repro.legion.runtime.RuntimeConfig` has ``validate=True``
the runtime appends one event per task launch, shard execution, derived
copy, reduction fold and scalar allreduce.  Events carry everything the
offline checker (:mod:`repro.analysis.checker`) needs to rebuild the
happens-before graph independently of the runtime's own coherence maps:
region identities, per-shard rectangles, privileges and memory
placements.  The log serializes to JSON lines so runs can be captured
and validated later with ``python -m repro.analysis <logfile>``.

Event order is the order the runtime processed them, which is the order
its coherence state actually evolved — the checker replays it and cross
checks every read against what the copies it saw can justify.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geometry import Rect


def _rect_to_json(rect: Rect) -> List[List[int]]:
    return [list(rect.lo), list(rect.hi)]


def _rect_from_json(obj) -> Rect:
    return Rect(tuple(int(v) for v in obj[0]), tuple(int(v) for v in obj[1]))


@dataclass(frozen=True)
class ReqAccess:
    """One shard's access to one region argument."""

    name: str
    region: int
    region_name: str
    rect: Rect
    privilege: str  # Privilege.value: read / write / write-discard / reduce
    # For reads through exact image partitions, the disjoint pieces
    # actually staged (the referenced runs); empty means the whole rect.
    pieces: Tuple[Rect, ...] = ()

    @property
    def read_pieces(self) -> Tuple[Rect, ...]:
        """The rects a read actually observes."""
        return self.pieces if self.pieces else (self.rect,)

    @property
    def reads(self) -> bool:
        """Whether prior contents are observed (staged) by the shard."""
        return self.privilege in ("read", "write")

    @property
    def writes(self) -> bool:
        """Whether the shard produces new contents."""
        return self.privilege in ("write", "write-discard", "reduce")


@dataclass(frozen=True)
class TaskEvent:
    """A task launch entering the stream."""

    seq: int
    launch: int
    name: str
    colors: int
    kind: str = "task"


@dataclass(frozen=True)
class ShardEvent:
    """One color of a launch: its accesses, placement and interval.

    ``replay`` marks shards re-executed by post-loss journal replay:
    their writes re-establish validity, but their reads were satisfied
    in the original (pre-fault) execution — the checker exempts them
    from the stale-read rule, since a value consumed before the fault
    and then overwritten may legitimately no longer exist anywhere.
    """

    seq: int
    launch: int
    name: str
    color: int
    proc: int
    memory: int
    reqs: Tuple[ReqAccess, ...]
    start: float
    finish: float
    replay: bool = False
    kind: str = "shard"


@dataclass(frozen=True)
class CopyEvent:
    """A runtime-derived copy of a region fragment between memories.

    ``why`` is ``"stage"`` for coherence copies that make data valid in
    the destination and ``"fold"`` for REDUCE-partial transfers (which
    carry contributions, not region contents, and so do not establish
    validity).
    """

    seq: int
    region: int
    region_name: str
    rect: Rect
    src_memory: int
    dst_memory: int
    nbytes: int
    why: str = "stage"
    kind: str = "copy"


@dataclass(frozen=True)
class FoldEvent:
    """REDUCE contributions folded onto one owner tile."""

    seq: int
    launch: int
    name: str
    region: int
    region_name: str
    rect: Rect
    memory: int
    kind: str = "fold"


@dataclass(frozen=True)
class AllreduceEvent:
    """A cross-shard scalar reduction into a future."""

    seq: int
    op: str
    participants: int
    kind: str = "allreduce"


@dataclass(frozen=True)
class FaultEvent:
    """An injected fault (and its recovery) entering the stream.

    ``fault`` is the kind injected ("copy", "alloc", "gpu-loss",
    "node-loss"); for losses, ``memories`` lists the memory uids whose
    contents vanished — the checker drops their validity just as the
    runtime's coherence maps do, so post-recovery reads must be
    justified by replayed copies.
    """

    seq: int
    fault: str
    memories: Tuple[int, ...] = ()
    detail: str = ""
    kind: str = "fault"


@dataclass(frozen=True)
class CheckpointEvent:
    """A checkpoint epoch: dirty pieces snapshotted to system memory."""

    seq: int
    nbytes: int
    regions: int
    kind: str = "checkpoint"


@dataclass(frozen=True)
class DetectionEvent:
    """The modeled failure detector's state machine for one loss.

    A loss at simulated time ``at`` is *suspected* at the next
    heartbeat tick (``suspected``) and *confirmed* after the detection
    timeout (``confirmed``); recovery cannot begin before confirmation.
    Pure annotation for the checker — validity transitions ride the
    companion :class:`FaultEvent`.
    """

    seq: int
    fault: str  # "gpu-loss" | "node-loss"
    target: int
    at: float
    suspected: float
    confirmed: float
    kind: str = "detection"


Event = object  # union of the dataclasses above


@dataclass
class EventLog:
    """An append-only event stream for one runtime."""

    name: str = "run"
    events: List[Event] = field(default_factory=list)
    _seq: int = 0
    _launch: int = 0

    # ------------------------------------------------------------------
    # Recording (called by the runtime; each append is O(1))
    # ------------------------------------------------------------------
    def _next(self) -> int:
        self._seq += 1
        return self._seq

    def record_task(self, name: str, colors: int) -> int:
        """Open a new launch; returns its launch id."""
        self._launch += 1
        self.events.append(TaskEvent(self._next(), self._launch, name, colors))
        return self._launch

    def record_shard(
        self,
        launch: int,
        name: str,
        color: int,
        proc: int,
        memory: int,
        reqs: Iterable[ReqAccess],
        start: float,
        finish: float,
        replay: bool = False,
    ) -> None:
        """Record one executed shard with its region accesses."""
        self.events.append(
            ShardEvent(
                self._next(), launch, name, color, proc, memory,
                tuple(reqs), start, finish, replay,
            )
        )

    def record_copy(
        self,
        region: int,
        region_name: str,
        rect: Rect,
        src_memory: int,
        dst_memory: int,
        nbytes: int,
        why: str = "stage",
    ) -> None:
        """Record a derived inter-memory copy."""
        self.events.append(
            CopyEvent(
                self._next(), region, region_name, rect,
                src_memory, dst_memory, nbytes, why,
            )
        )

    def record_fold(
        self,
        launch: int,
        name: str,
        region: int,
        region_name: str,
        rect: Rect,
        memory: int,
    ) -> None:
        """Record a reduction fold write onto an owner tile."""
        self.events.append(
            FoldEvent(self._next(), launch, name, region, region_name, rect, memory)
        )

    def record_allreduce(self, op: str, participants: int) -> None:
        """Record a scalar allreduce."""
        self.events.append(AllreduceEvent(self._next(), op, participants))

    def record_fault(
        self, fault: str, memories: Iterable[int] = (), detail: str = ""
    ) -> None:
        """Record an injected fault (losses carry the wiped memories)."""
        self.events.append(
            FaultEvent(self._next(), fault, tuple(memories), detail)
        )

    def record_checkpoint(self, nbytes: int, regions: int) -> None:
        """Record one checkpoint epoch."""
        self.events.append(CheckpointEvent(self._next(), int(nbytes), regions))

    def record_detection(
        self,
        fault: str,
        target: int,
        at: float,
        suspected: float,
        confirmed: float,
    ) -> None:
        """Record one loss's suspected -> confirmed detector transition."""
        self.events.append(
            DetectionEvent(self._next(), fault, target, at, suspected, confirmed)
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        """Drop recorded events (sequence numbers keep increasing)."""
        self.events.clear()

    def stats(self) -> Dict[str, int]:
        """Event counts by kind."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Serialization (JSON lines)
    # ------------------------------------------------------------------
    def to_lines(self) -> List[str]:
        """The log as JSON lines."""
        lines = []
        for ev in self.events:
            lines.append(json.dumps(_event_to_json(ev), separators=(",", ":")))
        return lines

    def save(self, path: str) -> None:
        """Write the log as a JSONL file."""
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.to_lines():
                fh.write(line + "\n")

    @classmethod
    def load(cls, path: str, name: Optional[str] = None) -> "EventLog":
        """Read a JSONL log written by :meth:`save`."""
        log = cls(name=name or path)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                log.events.append(_event_from_json(json.loads(line)))
        if log.events:
            log._seq = max(getattr(ev, "seq", 0) for ev in log.events)
            log._launch = max(
                (getattr(ev, "launch", 0) for ev in log.events), default=0
            )
        return log


def _event_to_json(ev) -> dict:
    if isinstance(ev, TaskEvent):
        return {
            "kind": "task", "seq": ev.seq, "launch": ev.launch,
            "name": ev.name, "colors": ev.colors,
        }
    if isinstance(ev, ShardEvent):
        return {
            "kind": "shard", "seq": ev.seq, "launch": ev.launch,
            "name": ev.name, "color": ev.color, "proc": ev.proc,
            "memory": ev.memory, "start": ev.start, "finish": ev.finish,
            "replay": ev.replay,
            "reqs": [
                {
                    "name": r.name, "region": r.region,
                    "region_name": r.region_name,
                    "rect": _rect_to_json(r.rect), "privilege": r.privilege,
                    "pieces": [_rect_to_json(p) for p in r.pieces],
                }
                for r in ev.reqs
            ],
        }
    if isinstance(ev, CopyEvent):
        return {
            "kind": "copy", "seq": ev.seq, "region": ev.region,
            "region_name": ev.region_name, "rect": _rect_to_json(ev.rect),
            "src": ev.src_memory, "dst": ev.dst_memory,
            "nbytes": ev.nbytes, "why": ev.why,
        }
    if isinstance(ev, FoldEvent):
        return {
            "kind": "fold", "seq": ev.seq, "launch": ev.launch,
            "name": ev.name, "region": ev.region,
            "region_name": ev.region_name, "rect": _rect_to_json(ev.rect),
            "memory": ev.memory,
        }
    if isinstance(ev, AllreduceEvent):
        return {
            "kind": "allreduce", "seq": ev.seq, "op": ev.op,
            "participants": ev.participants,
        }
    if isinstance(ev, FaultEvent):
        return {
            "kind": "fault", "seq": ev.seq, "fault": ev.fault,
            "memories": list(ev.memories), "detail": ev.detail,
        }
    if isinstance(ev, CheckpointEvent):
        return {
            "kind": "checkpoint", "seq": ev.seq, "nbytes": ev.nbytes,
            "regions": ev.regions,
        }
    if isinstance(ev, DetectionEvent):
        return {
            "kind": "detection", "seq": ev.seq, "fault": ev.fault,
            "target": ev.target, "at": ev.at,
            "suspected": ev.suspected, "confirmed": ev.confirmed,
        }
    raise TypeError(f"unknown event {ev!r}")


def _event_from_json(obj: dict):
    kind = obj["kind"]
    if kind == "task":
        return TaskEvent(obj["seq"], obj["launch"], obj["name"], obj["colors"])
    if kind == "shard":
        reqs = tuple(
            ReqAccess(
                r["name"], r["region"], r["region_name"],
                _rect_from_json(r["rect"]), r["privilege"],
                tuple(_rect_from_json(p) for p in r.get("pieces", [])),
            )
            for r in obj["reqs"]
        )
        return ShardEvent(
            obj["seq"], obj["launch"], obj["name"], obj["color"],
            obj["proc"], obj["memory"], reqs, obj["start"], obj["finish"],
            obj.get("replay", False),
        )
    if kind == "copy":
        return CopyEvent(
            obj["seq"], obj["region"], obj["region_name"],
            _rect_from_json(obj["rect"]), obj["src"], obj["dst"],
            obj["nbytes"], obj.get("why", "stage"),
        )
    if kind == "fold":
        return FoldEvent(
            obj["seq"], obj["launch"], obj["name"], obj["region"],
            obj["region_name"], _rect_from_json(obj["rect"]), obj["memory"],
        )
    if kind == "allreduce":
        return AllreduceEvent(obj["seq"], obj["op"], obj["participants"])
    if kind == "fault":
        return FaultEvent(
            obj["seq"], obj["fault"],
            tuple(int(m) for m in obj.get("memories", [])),
            obj.get("detail", ""),
        )
    if kind == "checkpoint":
        return CheckpointEvent(obj["seq"], obj["nbytes"], obj["regions"])
    if kind == "detection":
        return DetectionEvent(
            obj["seq"], obj["fault"], obj["target"], obj["at"],
            obj["suspected"], obj["confirmed"],
        )
    raise ValueError(f"unknown event kind {kind!r}")
