"""Per-kernel cost and output-nnz models for the static advisor.

Every DISTAL-generated kernel (:data:`repro.core.coverage.GENERATED`)
registers a :class:`KernelModel` here: closed-form flop/byte estimates
and an *nnz bound* for the kernel's output as functions of the symbolic
problem parameters (rows, cols, nnz, dense width k).  The advisor uses
these when a traced plan carries only symbolic shapes; the coverage
inventory (:func:`repro.core.coverage.inventory`) reports the registry
as its "advisor-analyzable" column; and ``test_api_coverage`` asserts
the registry stays total over GENERATED.

Models are deliberately simple roofline inputs — counts of touched
values and index entries — not microarchitectural. ``for_task_name``
maps a runtime task name (``"csr:y(i)=A(i,j)*x(j):gpu"``, the DISTAL
spec naming convention) back to its model.

Like the rest of :mod:`repro.analysis`, this module imports nothing
from :mod:`repro.legion` or :mod:`repro.distal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Parameters every model receives: matrix rows/cols, stored nonzeros,
#: dense operand width (1 for vectors) and value itemsize in bytes.
Params = Tuple[int, int, int, int, int]


@dataclass(frozen=True)
class KernelModel:
    """Closed-form cost/nnz model of one generated kernel."""

    name: str         # coverage name, e.g. "csr_matvec"
    statement: str    # DISTAL statement key, e.g. "y(i)=A(i,j)*x(j)"
    fmt: str          # format name, e.g. "csr"
    flops: Callable[[int, int, int, int], float]
    bytes: Callable[[int, int, int, int, int], float]
    out_nnz: Callable[[int, int, int, int], int]

    def evaluate(
        self, rows: int, cols: int, nnz: int, k: int = 1, itemsize: int = 8
    ) -> Dict[str, float]:
        """flops / bytes / output-nnz for a concrete problem size."""
        return {
            "flops": float(self.flops(rows, cols, nnz, k)),
            "bytes": float(self.bytes(rows, cols, nnz, k, itemsize)),
            "out_nnz": int(self.out_nnz(rows, cols, nnz, k)),
        }


# ----------------------------------------------------------------------
# Shared per-(op, format) shard cost formulas.
#
# These are the single source of truth for SpMV roofline costs in the
# row-length-sensitive formats: the DISTAL-generated kernel cost
# functions (repro.distal.codegen) and the static format selector
# (repro.analysis.formatsel) both call them, so predicted and charged
# costs agree exactly.  The *processor* enters through
# ``Processor.kernel_time(flops, bytes)``; these functions only count
# work and traffic.  ``cf`` is the complex-arithmetic flop factor.
#
# Index-width asymmetry: Legate's global CSR keeps 64-bit coordinates
# (the matrix is one global region, so indices must span it) and pays
# the paper's §3 reshape penalty before external local libraries accept
# its pieces.  The row-length-sensitive formats below are *local*
# layouts, produced per row tile by the auto-format conversion, so
# their column indices and per-row metadata fit 32 bits — the classic
# ELLPACK/SELL-C-sigma implementation choice.  That 4-byte index is
# where their modeled bandwidth win comes from.
# ----------------------------------------------------------------------

#: Bytes per column index / metadata word in the local (post-partition)
#: formats: ell, sell, hyb.  Global CSR/COO coordinates stay 8 bytes.
LOCAL_INDEX_BYTES = 4.0


def csr_spmv_shard_cost(rows, nnz, isz, reshape_penalty=False, cf=1.0):
    """CSR row-split SpMV: vals+crd per nonzero, pos per row, x gather.

    Matches the generated ``csr:y(i)=A(i,j)*x(j)`` template, including
    the paper's §3 local-reshape penalty (8 bytes/row) that Legate pays
    before handing its global-format pieces to cuSPARSE/MKL.
    """
    flops = 2.0 * nnz * cf
    nbytes = nnz * (8.0 + 2.0 * isz) + rows * (16.0 + isz)
    if reshape_penalty:
        nbytes += rows * 8.0
    return flops, nbytes


def ell_spmv_shard_cost(rows, nnz, padded, isz, cf=1.0):
    """ELL SpMV: every padded lane is touched (32-bit col + value), the
    x gather is bounded by real nonzeros, plus one row length per row."""
    idx = LOCAL_INDEX_BYTES
    flops = 2.0 * padded * cf
    nbytes = padded * (idx + isz) + nnz * isz + rows * (idx + isz)
    return flops, nbytes


def sell_spmv_shard_cost(rows, nnz, padded, slices, isz, cf=1.0):
    """SELL-C-sigma SpMV: padded slice entries (32-bit cols), per-slice
    descriptors (16 bytes), and per-slot permutation/length words."""
    idx = LOCAL_INDEX_BYTES
    flops = 2.0 * padded * cf
    nbytes = (
        padded * (idx + isz) + nnz * isz + slices * 16.0
        + rows * (2.0 * idx + isz)
    )
    return flops, nbytes


def hyb_spmv_shard_cost(rows, nnz, ell_padded, spill, isz, cf=1.0):
    """HYB SpMV: padded ELL part plus local-index spill ranges."""
    idx = LOCAL_INDEX_BYTES
    flops = 2.0 * (ell_padded + spill) * cf
    nbytes = (
        ell_padded * (idx + isz) + spill * (idx + isz) + nnz * isz
        + rows * (3.0 * idx + isz)
    )
    return flops, nbytes


def coo_spmv_shard_cost(rows, nnz, isz, cf=1.0):
    """COO nnz-split scatter-add SpMV (read-modify-write on y)."""
    return 2.0 * nnz * cf, nnz * (16.0 + 4.0 * isz)


def spmv_shard_cost(fmt, shard, isz, reshape_penalty=False, cf=1.0):
    """Dispatch an SpMV shard cost by format name.

    ``shard`` is a mapping with the row-length statistics the format
    needs: ``rows``/``nnz`` always; ``padded`` for ell and sell,
    ``slices`` for sell, ``ell_padded``/``spill`` for hyb.
    """
    rows, nnz = shard["rows"], shard["nnz"]
    if fmt == "csr":
        return csr_spmv_shard_cost(rows, nnz, isz, reshape_penalty, cf)
    if fmt == "ell":
        return ell_spmv_shard_cost(rows, nnz, shard["padded"], isz, cf)
    if fmt == "sell":
        return sell_spmv_shard_cost(
            rows, nnz, shard["padded"], shard["slices"], isz, cf
        )
    if fmt == "hyb":
        return hyb_spmv_shard_cost(
            rows, nnz, shard["ell_padded"], shard["spill"], isz, cf
        )
    if fmt == "coo":
        return coo_spmv_shard_cost(rows, nnz, isz, cf)
    raise KeyError(f"no SpMV shard cost for format {fmt!r}")


def convert_from_csr_cost(rows, nnz, out_entries, isz):
    """Cost of repacking a CSR shard into another format.

    Reads the CSR triple (pos/crd/vals), writes ``out_entries`` stored
    lanes in the target local layout (padded entries for ELL and
    SELL-C-sigma, ELL part plus spill for HYB) at the compact
    32-bit index width.
    """
    flops = 1.0 * nnz
    nbytes = (
        nnz * (8.0 + isz) + rows * 16.0
        + out_entries * (LOCAL_INDEX_BYTES + isz)
    )
    return flops, nbytes


def _spmv_bytes(rows, cols, nnz, k, isz):
    # vals + crd per nonzero, pos per row, x gather bound, y write.
    return nnz * (isz + 8) + rows * (16 + isz) + cols * isz


def _spmm_bytes(rows, cols, nnz, k, isz):
    return nnz * (isz + 8) + rows * 16 + (rows + cols) * k * isz


_MODELS = [
    KernelModel(
        "csr_matvec", "y(i)=A(i,j)*x(j)", "csr",
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=_spmv_bytes,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "csr_rmatvec", "y(j)=A(i,j)*x(i)", "csr",
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: _spmv_bytes(c, r, n, k, isz),
        out_nnz=lambda r, c, n, k: c,
    ),
    KernelModel(
        "csr_matmat", "Y(i,k)=A(i,j)*X(j,k)", "csr",
        flops=lambda r, c, n, k: 2.0 * n * k,
        bytes=_spmm_bytes,
        out_nnz=lambda r, c, n, k: r * k,
    ),
    KernelModel(
        "csr_matmat_transpose", "Y(j,k)=A(i,j)*X(i,k)", "csr",
        flops=lambda r, c, n, k: 2.0 * n * k,
        bytes=lambda r, c, n, k, isz: _spmm_bytes(c, r, n, k, isz),
        out_nnz=lambda r, c, n, k: c * k,
    ),
    KernelModel(
        "csr_sddmm", "R(i,j)=B(i,j)*C(i,k)*D(j,k)", "csr",
        # Per stored nonzero: a k-length dot plus the Hadamard scale.
        flops=lambda r, c, n, k: n * (2.0 * k + 1.0),
        bytes=lambda r, c, n, k, isz: (
            2 * n * (isz + 8) + r * 16 + (r + c) * k * isz
        ),
        out_nnz=lambda r, c, n, k: n,
    ),
    KernelModel(
        "csr_row_sums", "y(i)=A(i,j)", "csr",
        flops=lambda r, c, n, k: float(n),
        bytes=lambda r, c, n, k, isz: n * isz + r * (16 + isz),
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "csr_col_sums", "y(j)=A(i,j)", "csr",
        flops=lambda r, c, n, k: float(n),
        bytes=lambda r, c, n, k, isz: n * (isz + 8) + c * isz,
        out_nnz=lambda r, c, n, k: c,
    ),
    KernelModel(
        "csr_diagonal", "y(i)=A(i,i)", "csr",
        # Binary search of each diagonal row segment: ~log cost folded
        # into a per-row constant.
        flops=lambda r, c, n, k: 2.0 * min(r, c),
        bytes=lambda r, c, n, k, isz: (
            min(r, c) * (16 + 8 + 2 * isz)
        ),
        out_nnz=lambda r, c, n, k: min(r, c),
    ),
    KernelModel(
        "dia_matvec", "y(i)=A(i,j)*x(j)", "dia",
        # nnz here = stored band entries (rows x ndiags).
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: n * isz + (r + c) * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "coo_matvec", "y(i)=A(i,j)*x(j)", "coo",
        flops=lambda r, c, n, k: 2.0 * n,
        # Two coordinate reads per nonzero (row and col).
        bytes=lambda r, c, n, k, isz: n * (isz + 16) + (r + c) * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "bsr_matvec", "y(i)=A(i,j)*x(j)", "bsr",
        # nnz = scalar entries inside stored blocks.
        flops=lambda r, c, n, k: 2.0 * n,
        # Block indices amortize over R*C entries; bound with the
        # scalar-entry count.
        bytes=lambda r, c, n, k, isz: n * isz + n + (r + c) * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "ell_matvec", "y(i)=A(i,j)*x(j)", "ell",
        # nnz here = stored (padded) lanes, rows x max row length;
        # indices are 32-bit local-layout words (LOCAL_INDEX_BYTES).
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: n * (isz + 4) + r * (4 + isz) + c * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "sell_matvec", "y(i)=A(i,j)*x(j)", "sell",
        # nnz here = packed slice entries (each slice padded to its own
        # widest row); slice descriptors fold into a per-row constant.
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: n * (isz + 4) + r * (8 + isz) + c * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "hyb_matvec", "y(i)=A(i,j)*x(j)", "hyb",
        # nnz here = ELL-part lanes plus spill entries.
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: n * (isz + 4) + r * (12 + isz) + c * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
]

#: coverage name -> model
REGISTRY: Dict[str, KernelModel] = {m.name: m for m in _MODELS}

#: (statement key, format name) -> model
BY_STATEMENT: Dict[Tuple[str, str], KernelModel] = {
    (m.statement, m.fmt): m for m in _MODELS
}


def get_model(name: str) -> Optional[KernelModel]:
    """The model registered under a coverage name, or None."""
    return REGISTRY.get(name)


def for_statement(statement: str, fmt: str) -> Optional[KernelModel]:
    """The model for a (statement key, format name) pair, or None."""
    return BY_STATEMENT.get((statement, fmt))


def for_task_name(task_name: str) -> Optional[KernelModel]:
    """Resolve a runtime task name to its kernel model.

    DISTAL kernel specs are named ``"<fmt>:<statement>:<proc-kind>"``
    (e.g. ``"csr:y(i)=A(i,j)*x(j):gpu"``).  Non-DISTAL task names
    (``"fill"``, ``"axpy"``, ...) resolve to None.
    """
    if task_name.startswith("fused{"):
        # Automatically fused groups (repro.legion.fusion) cost the sum
        # of their sub-launches; there is no single kernel model.
        return None
    parts = task_name.split(":")
    if len(parts) < 3:
        return None
    fmt = parts[0]
    statement = ":".join(parts[1:-1])
    return BY_STATEMENT.get((statement, fmt))


def analyzable(name: str) -> bool:
    """Whether a GENERATED kernel has a registered advisor model."""
    return name in REGISTRY
