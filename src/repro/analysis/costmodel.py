"""Per-kernel cost and output-nnz models for the static advisor.

Every DISTAL-generated kernel (:data:`repro.core.coverage.GENERATED`)
registers a :class:`KernelModel` here: closed-form flop/byte estimates
and an *nnz bound* for the kernel's output as functions of the symbolic
problem parameters (rows, cols, nnz, dense width k).  The advisor uses
these when a traced plan carries only symbolic shapes; the coverage
inventory (:func:`repro.core.coverage.inventory`) reports the registry
as its "advisor-analyzable" column; and ``test_api_coverage`` asserts
the registry stays total over GENERATED.

Models are deliberately simple roofline inputs — counts of touched
values and index entries — not microarchitectural. ``for_task_name``
maps a runtime task name (``"csr:y(i)=A(i,j)*x(j):gpu"``, the DISTAL
spec naming convention) back to its model.

Like the rest of :mod:`repro.analysis`, this module imports nothing
from :mod:`repro.legion` or :mod:`repro.distal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: Parameters every model receives: matrix rows/cols, stored nonzeros,
#: dense operand width (1 for vectors) and value itemsize in bytes.
Params = Tuple[int, int, int, int, int]


@dataclass(frozen=True)
class KernelModel:
    """Closed-form cost/nnz model of one generated kernel."""

    name: str         # coverage name, e.g. "csr_matvec"
    statement: str    # DISTAL statement key, e.g. "y(i)=A(i,j)*x(j)"
    fmt: str          # format name, e.g. "csr"
    flops: Callable[[int, int, int, int], float]
    bytes: Callable[[int, int, int, int, int], float]
    out_nnz: Callable[[int, int, int, int], int]

    def evaluate(
        self, rows: int, cols: int, nnz: int, k: int = 1, itemsize: int = 8
    ) -> Dict[str, float]:
        """flops / bytes / output-nnz for a concrete problem size."""
        return {
            "flops": float(self.flops(rows, cols, nnz, k)),
            "bytes": float(self.bytes(rows, cols, nnz, k, itemsize)),
            "out_nnz": int(self.out_nnz(rows, cols, nnz, k)),
        }


def _spmv_bytes(rows, cols, nnz, k, isz):
    # vals + crd per nonzero, pos per row, x gather bound, y write.
    return nnz * (isz + 8) + rows * (16 + isz) + cols * isz


def _spmm_bytes(rows, cols, nnz, k, isz):
    return nnz * (isz + 8) + rows * 16 + (rows + cols) * k * isz


_MODELS = [
    KernelModel(
        "csr_matvec", "y(i)=A(i,j)*x(j)", "csr",
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=_spmv_bytes,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "csr_rmatvec", "y(j)=A(i,j)*x(i)", "csr",
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: _spmv_bytes(c, r, n, k, isz),
        out_nnz=lambda r, c, n, k: c,
    ),
    KernelModel(
        "csr_matmat", "Y(i,k)=A(i,j)*X(j,k)", "csr",
        flops=lambda r, c, n, k: 2.0 * n * k,
        bytes=_spmm_bytes,
        out_nnz=lambda r, c, n, k: r * k,
    ),
    KernelModel(
        "csr_matmat_transpose", "Y(j,k)=A(i,j)*X(i,k)", "csr",
        flops=lambda r, c, n, k: 2.0 * n * k,
        bytes=lambda r, c, n, k, isz: _spmm_bytes(c, r, n, k, isz),
        out_nnz=lambda r, c, n, k: c * k,
    ),
    KernelModel(
        "csr_sddmm", "R(i,j)=B(i,j)*C(i,k)*D(j,k)", "csr",
        # Per stored nonzero: a k-length dot plus the Hadamard scale.
        flops=lambda r, c, n, k: n * (2.0 * k + 1.0),
        bytes=lambda r, c, n, k, isz: (
            2 * n * (isz + 8) + r * 16 + (r + c) * k * isz
        ),
        out_nnz=lambda r, c, n, k: n,
    ),
    KernelModel(
        "csr_row_sums", "y(i)=A(i,j)", "csr",
        flops=lambda r, c, n, k: float(n),
        bytes=lambda r, c, n, k, isz: n * isz + r * (16 + isz),
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "csr_col_sums", "y(j)=A(i,j)", "csr",
        flops=lambda r, c, n, k: float(n),
        bytes=lambda r, c, n, k, isz: n * (isz + 8) + c * isz,
        out_nnz=lambda r, c, n, k: c,
    ),
    KernelModel(
        "csr_diagonal", "y(i)=A(i,i)", "csr",
        # Binary search of each diagonal row segment: ~log cost folded
        # into a per-row constant.
        flops=lambda r, c, n, k: 2.0 * min(r, c),
        bytes=lambda r, c, n, k, isz: (
            min(r, c) * (16 + 8 + 2 * isz)
        ),
        out_nnz=lambda r, c, n, k: min(r, c),
    ),
    KernelModel(
        "dia_matvec", "y(i)=A(i,j)*x(j)", "dia",
        # nnz here = stored band entries (rows x ndiags).
        flops=lambda r, c, n, k: 2.0 * n,
        bytes=lambda r, c, n, k, isz: n * isz + (r + c) * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "coo_matvec", "y(i)=A(i,j)*x(j)", "coo",
        flops=lambda r, c, n, k: 2.0 * n,
        # Two coordinate reads per nonzero (row and col).
        bytes=lambda r, c, n, k, isz: n * (isz + 16) + (r + c) * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
    KernelModel(
        "bsr_matvec", "y(i)=A(i,j)*x(j)", "bsr",
        # nnz = scalar entries inside stored blocks.
        flops=lambda r, c, n, k: 2.0 * n,
        # Block indices amortize over R*C entries; bound with the
        # scalar-entry count.
        bytes=lambda r, c, n, k, isz: n * isz + n + (r + c) * isz,
        out_nnz=lambda r, c, n, k: r,
    ),
]

#: coverage name -> model
REGISTRY: Dict[str, KernelModel] = {m.name: m for m in _MODELS}

#: (statement key, format name) -> model
BY_STATEMENT: Dict[Tuple[str, str], KernelModel] = {
    (m.statement, m.fmt): m for m in _MODELS
}


def get_model(name: str) -> Optional[KernelModel]:
    """The model registered under a coverage name, or None."""
    return REGISTRY.get(name)


def for_statement(statement: str, fmt: str) -> Optional[KernelModel]:
    """The model for a (statement key, format name) pair, or None."""
    return BY_STATEMENT.get((statement, fmt))


def for_task_name(task_name: str) -> Optional[KernelModel]:
    """Resolve a runtime task name to its kernel model.

    DISTAL kernel specs are named ``"<fmt>:<statement>:<proc-kind>"``
    (e.g. ``"csr:y(i)=A(i,j)*x(j):gpu"``).  Non-DISTAL task names
    (``"fill"``, ``"axpy"``, ...) resolve to None.
    """
    if task_name.startswith("fused{"):
        # Automatically fused groups (repro.legion.fusion) cost the sum
        # of their sub-launches; there is no single kernel model.
        return None
    parts = task_name.split(":")
    if len(parts) < 3:
        return None
    fmt = parts[0]
    statement = ":".join(parts[1:-1])
    return BY_STATEMENT.get((statement, fmt))


def analyzable(name: str) -> bool:
    """Whether a GENERATED kernel has a registered advisor model."""
    return name in REGISTRY
