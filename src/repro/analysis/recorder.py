"""Validation-mode plumbing: the default flag and the live-log registry.

The runtime reads :func:`validation_default` when a
:class:`~repro.legion.runtime.RuntimeConfig` is constructed without an
explicit ``validate=``; the ``REPRO_VALIDATE`` environment variable (or
:func:`set_validation_default`) turns the whole process into validation
mode, which is how the pytest fixture in ``tests/conftest.py`` runs the
entire tier-1 suite under the checker.

Every :class:`~repro.analysis.events.EventLog` a validating runtime
creates registers itself here so test harnesses can sweep *all* logs —
including runtimes created inside library code — without threading the
log object through.
"""

from __future__ import annotations

import os
from typing import List

from repro.analysis.events import EventLog

_VALIDATE_DEFAULT = os.environ.get("REPRO_VALIDATE", "").strip() not in ("", "0")

_ACTIVE_LOGS: List[EventLog] = []

# Bound on remembered logs: validation is a test-time mode, but guard
# against a pathological run creating thousands of runtimes.
_MAX_LOGS = 256


def validation_default() -> bool:
    """Whether new RuntimeConfigs validate by default."""
    return _VALIDATE_DEFAULT


def set_validation_default(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _VALIDATE_DEFAULT
    previous = _VALIDATE_DEFAULT
    _VALIDATE_DEFAULT = bool(enabled)
    return previous


def register(log: EventLog) -> EventLog:
    """Track a validating runtime's log for later sweeping."""
    if len(_ACTIVE_LOGS) >= _MAX_LOGS:
        _ACTIVE_LOGS.pop(0)
    _ACTIVE_LOGS.append(log)
    return log


def active_logs() -> List[EventLog]:
    """All registered logs (oldest first)."""
    return list(_ACTIVE_LOGS)


def drain_logs() -> List[EventLog]:
    """Return and forget all registered logs."""
    out = list(_ACTIVE_LOGS)
    _ACTIVE_LOGS.clear()
    return out
