"""Static sparse-format selection over captured plans (auto-format pass).

The source paper fixes CSR/COO as the formats Legate Sparse speaks; this
module adds the closing move from the related work (pyGinkgo's
ELL / SELL-C-sigma, MSREP's balance argument): a *static* pass that
inspects a captured :class:`~repro.analysis.plan.PlanTrace` plus the
actual matrix's row-length distribution and decides — before any kernel
runs — which format each SpMV operand should be in.

The pass is three stages:

1. :func:`profile_matrix` condenses an operand's row lengths into a
   :class:`FormatProfile` (mean/max/std, ELL padding ratio, SELL-C-sigma
   slice imbalance, HYB spill volume).  Computed host-side; no kernels
   execute.
2. :func:`select_format` symbolically replays every candidate format
   through the machine model: per row-tile shard it evaluates the same
   shared cost formulas the generated kernels charge
   (:mod:`repro.analysis.costmodel`) and rolls them through
   ``Processor.kernel_time``, yielding ranked :class:`FormatCandidate`
   rows with conversion amortization break-evens.
3. :func:`advise_formats` walks the plan, groups SpMV launches by
   structure region, and emits :class:`FormatAdvice` plus the advisor
   lints ``format-skew``, ``format-padding-waste`` and
   ``format-convert-unamortized``.

The runtime auto-format hook (``RuntimeConfig.autoformat``) calls the
same :func:`select_format`, so advisor predictions and runtime decisions
agree by construction; the selector itself never reads
``config.autoformat``.  Like the rest of :mod:`repro.analysis`, module
import pulls in nothing from :mod:`repro.legion` or :mod:`repro.distal`
(the tile-boundary helper resolves lazily).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import costmodel

#: SELL-C-sigma defaults: slice height C and sorting-window sigma.
#: Sigma is deliberately large (windows are clipped to row-tile
#: boundaries anyway, so each processor still permutes only its own
#: rows): a tile-spanning sort clusters the long tail of a skewed
#: row-length distribution into few slices, which is where SELL's
#: padding win over small fixed windows comes from.
DEFAULT_SELL_C = 16
DEFAULT_SELL_SIGMA = 4096
#: HYB splits at this quantile of the nonzero row-length distribution.
DEFAULT_HYB_QUANTILE = 0.9

#: Candidate formats the selector replays, mapped to whether the
#: generated SpMV kernel preserves CSR accumulation order (bitwise
#: identical results).  COO's nnz-split scatter-add does not, so the
#: runtime never auto-converts to it — it stays advice-only.
CANDIDATE_FORMATS: Dict[str, bool] = {
    "csr": True,
    "ell": True,
    "sell": True,
    "hyb": True,
    "coo": False,
}


def tile_boundaries(n: int, colors: int) -> List[int]:
    """Row-tile boundaries, exactly as the runtime partitions stores."""
    from repro.legion.partition import Tiling

    return Tiling.create_boundaries(n, colors)


def hyb_ell_width(row_lengths: np.ndarray, quantile: float = DEFAULT_HYB_QUANTILE) -> int:
    """The ELL-part width HYB uses: a quantile of the *nonzero* row
    lengths, floored at one lane (guards all-empty matrices, where
    ``np.quantile`` on an empty array would raise)."""
    rl = np.asarray(row_lengths)
    occupied = rl[rl > 0]
    if occupied.size == 0:
        return 1
    return max(1, int(np.quantile(occupied, quantile)))


# ----------------------------------------------------------------------
# SELL-C-sigma layout
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SellLayout:
    """Slot-level SELL-C-sigma layout shared by conversion and selector.

    Slots use the same global numbering as rows; ``perm[slot]`` is the
    original row stored there.  Sigma windows and slices are clipped to
    the runtime's row-tile boundaries, so each tile permutes onto
    itself and packed slices never cross shards.
    """

    c: int
    sigma: int
    perm: np.ndarray        # slot -> original row
    rowlen: np.ndarray      # per slot
    start: np.ndarray       # per slot: packed index of lane 0
    stride: np.ndarray      # per slot: packed distance between lanes
    slice_pos: np.ndarray   # (nslices, 2) packed [lo, hi)
    total: int              # packed entries including padding
    tile_ranges: Tuple[Tuple[int, int], ...]  # packed [lo, hi) per tile
    boundaries: Tuple[int, ...]

    @property
    def nslices(self) -> int:
        return int(self.slice_pos.shape[0])


def sell_layout(
    row_lengths: Sequence[int],
    boundaries: Sequence[int],
    c: int = DEFAULT_SELL_C,
    sigma: int = DEFAULT_SELL_SIGMA,
) -> SellLayout:
    """Compute the SELL-C-sigma layout for given row-tile boundaries."""
    if c < 1 or sigma < 1:
        raise ValueError("SELL-C-sigma needs c >= 1 and sigma >= 1")
    rl = np.asarray(row_lengths, dtype=np.int64)
    n = rl.shape[0]
    perm = np.empty(n, dtype=np.int64)
    rowlen = np.empty(n, dtype=np.int64)
    start = np.empty(n, dtype=np.int64)
    stride = np.empty(n, dtype=np.int64)
    slice_bounds: List[Tuple[int, int]] = []
    tile_ranges: List[Tuple[int, int]] = []
    offset = 0
    for t in range(len(boundaries) - 1):
        tlo, thi = int(boundaries[t]), int(boundaries[t + 1])
        tile_lo = offset
        for wlo in range(tlo, thi, sigma):
            whi = min(wlo + sigma, thi)
            order = np.argsort(-rl[wlo:whi], kind="stable")
            perm[wlo:whi] = np.arange(wlo, whi)[order]
        rowlen[tlo:thi] = rl[perm[tlo:thi]]
        for slo in range(tlo, thi, c):
            shi = min(slo + c, thi)
            cs = shi - slo
            width = int(rowlen[slo:shi].max()) if shi > slo else 0
            start[slo:shi] = offset + np.arange(cs)
            stride[slo:shi] = cs
            slice_bounds.append((offset, offset + cs * width))
            offset += cs * width
        tile_ranges.append((tile_lo, offset))
    slice_pos = (
        np.asarray(slice_bounds, dtype=np.int64)
        if slice_bounds
        else np.zeros((0, 2), dtype=np.int64)
    )
    return SellLayout(
        c=c,
        sigma=sigma,
        perm=perm,
        rowlen=rowlen,
        start=start,
        stride=stride,
        slice_pos=slice_pos,
        total=offset,
        tile_ranges=tuple(tile_ranges),
        boundaries=tuple(int(b) for b in boundaries),
    )


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class FormatProfile:
    """Host-side row-distribution summary of one sparse operand."""

    rows: int
    cols: int
    nnz: int
    itemsize: int
    num_procs: int
    row_mean: float
    row_max: int
    row_std: float
    ell_width: int
    ell_padded: int
    ell_padding_ratio: float   # wasted fraction of padded lanes (0..1)
    sell_c: int
    sell_sigma: int
    sell_padded: int
    sell_slices: int
    sell_imbalance: float      # wasted fraction of packed lanes (0..1)
    hyb_width: int
    hyb_spill: int
    row_lengths: np.ndarray = field(repr=False)


def profile_matrix(
    row_lengths: Sequence[int],
    cols: int,
    itemsize: int,
    num_procs: int = 1,
    *,
    c: int = DEFAULT_SELL_C,
    sigma: int = DEFAULT_SELL_SIGMA,
    hyb_quantile: float = DEFAULT_HYB_QUANTILE,
) -> FormatProfile:
    """Condense row lengths into a :class:`FormatProfile`."""
    rl = np.asarray(row_lengths, dtype=np.int64)
    rows = int(rl.shape[0])
    nnz = int(rl.sum())
    row_max = int(rl.max()) if rows else 0
    ell_width = max(1, row_max)
    ell_padded = rows * ell_width
    boundaries = tile_boundaries(rows, num_procs)
    layout = sell_layout(rl, boundaries, c, sigma)
    hwidth = hyb_ell_width(rl, hyb_quantile)
    return FormatProfile(
        rows=rows,
        cols=int(cols),
        nnz=nnz,
        itemsize=int(itemsize),
        num_procs=int(num_procs),
        row_mean=float(rl.mean()) if rows else 0.0,
        row_max=row_max,
        row_std=float(rl.std()) if rows else 0.0,
        ell_width=ell_width,
        ell_padded=ell_padded,
        ell_padding_ratio=(
            (ell_padded - nnz) / ell_padded if ell_padded else 0.0
        ),
        sell_c=c,
        sell_sigma=sigma,
        sell_padded=layout.total,
        sell_slices=layout.nslices,
        sell_imbalance=(
            (layout.total - nnz) / layout.total if layout.total else 0.0
        ),
        hyb_width=hwidth,
        hyb_spill=int(np.maximum(rl - hwidth, 0).sum()),
        row_lengths=rl,
    )


# ----------------------------------------------------------------------
# Candidate replay
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FormatCandidate:
    """One format's modeled standing in the ranked replay."""

    fmt: str
    op_seconds: float        # modeled critical-path time of one SpMV
    total_seconds: float     # summed shard time (profiler kernel_seconds)
    convert_seconds: float   # one-time conversion from CSR
    delta_seconds: float     # csr op_seconds minus this op_seconds
    break_even_ops: float    # SpMVs until conversion amortizes (inf = never)
    bitwise_safe: bool


@dataclass(frozen=True)
class FormatDecision:
    """Ranked candidates plus the chosen (bitwise-safe) winner."""

    profile: FormatProfile
    candidates: Tuple[FormatCandidate, ...]
    best: FormatCandidate
    csr_seconds: float

    def candidate(self, fmt: str) -> Optional[FormatCandidate]:
        for cand in self.candidates:
            if cand.fmt == fmt:
                return cand
        return None


def _format_shard(fmt: str, rows: int, trl: np.ndarray, nnz: int,
                  profile: FormatProfile, pack_extent: int) -> Dict[str, int]:
    shard = {"rows": rows, "nnz": nnz}
    if fmt == "ell":
        shard["padded"] = rows * profile.ell_width
    elif fmt == "sell":
        shard["padded"] = pack_extent
        shard["slices"] = -(-rows // profile.sell_c)
    elif fmt == "hyb":
        shard["ell_padded"] = rows * profile.hyb_width
        shard["spill"] = int(np.maximum(trl - profile.hyb_width, 0).sum())
    return shard


def _convert_entries(fmt: str, shard: Dict[str, int]) -> int:
    if fmt == "ell" or fmt == "sell":
        return shard["padded"]
    if fmt == "hyb":
        return shard["ell_padded"] + shard["spill"]
    return shard["nnz"]


def select_format(profile: FormatProfile, scope, config) -> FormatDecision:
    """Replay every candidate format through the machine model.

    ``scope`` is the runtime's :class:`~repro.machine.MachineScope`;
    ``config`` supplies ``data_scale`` and the paper's §3
    ``local_reshape_penalty`` that CSR-family kernels pay.  The
    selector never consults ``config.autoformat`` — advisor analysis
    and the runtime hook must reach identical decisions.
    """
    procs = scope.processors
    boundaries = tile_boundaries(profile.rows, len(procs))
    rl = profile.row_lengths
    layout = sell_layout(rl, boundaries, profile.sell_c, profile.sell_sigma)
    scale = config.data_scale
    reshape = config.local_reshape_penalty
    cf = 4.0 if profile.itemsize == 16 else 1.0
    isz = profile.itemsize

    per_fmt: Dict[str, Dict[str, float]] = {}
    for fmt in CANDIDATE_FORMATS:
        op_crit = 0.0
        op_total = 0.0
        conv_crit = 0.0
        if fmt == "coo":
            # COO SpMV is nnz-split, not row-tiled.
            nnz_bounds = tile_boundaries(profile.nnz, len(procs))
            for t in range(len(nnz_bounds) - 1):
                snnz = nnz_bounds[t + 1] - nnz_bounds[t]
                flops, nbytes = costmodel.coo_spmv_shard_cost(
                    0, snnz, isz, cf
                )
                seconds = procs[t % len(procs)].kernel_time(
                    float(flops) * scale, float(nbytes) * scale
                )
                op_crit = max(op_crit, seconds)
                op_total += seconds
        for t in range(len(boundaries) - 1):
            tlo, thi = boundaries[t], boundaries[t + 1]
            trl = rl[tlo:thi]
            nnz = int(trl.sum())
            rows = thi - tlo
            plo, phi = layout.tile_ranges[t]
            shard = _format_shard(fmt, rows, trl, nnz, profile, phi - plo)
            proc = procs[t % len(procs)]
            if fmt != "coo":
                flops, nbytes = costmodel.spmv_shard_cost(
                    fmt, shard, isz, reshape, cf
                )
                seconds = proc.kernel_time(
                    float(flops) * scale, float(nbytes) * scale
                )
                op_crit = max(op_crit, seconds)
                op_total += seconds
            if fmt != "csr":
                cflops, cbytes = costmodel.convert_from_csr_cost(
                    rows, nnz, _convert_entries(fmt, shard), isz
                )
                conv_crit = max(
                    conv_crit,
                    proc.kernel_time(
                        float(cflops) * scale, float(cbytes) * scale
                    ),
                )
        per_fmt[fmt] = {
            "op": op_crit, "total": op_total, "convert": conv_crit,
        }

    csr_seconds = per_fmt["csr"]["op"]
    candidates = []
    for fmt, safe in CANDIDATE_FORMATS.items():
        entry = per_fmt[fmt]
        delta = csr_seconds - entry["op"]
        if fmt == "csr":
            break_even = 0.0
        elif delta > 0.0:
            break_even = math.ceil(entry["convert"] / delta)
        else:
            break_even = math.inf
        candidates.append(
            FormatCandidate(
                fmt=fmt,
                op_seconds=entry["op"],
                total_seconds=entry["total"],
                convert_seconds=entry["convert"],
                delta_seconds=delta,
                break_even_ops=break_even,
                bitwise_safe=safe,
            )
        )
    candidates.sort(key=lambda cand: cand.op_seconds)
    best = min(
        (cand for cand in candidates if cand.bitwise_safe),
        key=lambda cand: cand.op_seconds,
    )
    return FormatDecision(
        profile=profile,
        candidates=tuple(candidates),
        best=best,
        csr_seconds=csr_seconds,
    )


# ----------------------------------------------------------------------
# Plan walk
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FormatAdvice:
    """Per-operand recommendation emitted by the auto-format pass."""

    operand: str
    current_fmt: str
    recommended_fmt: str
    rows: int
    cols: int
    nnz: int
    row_mean: float
    row_max: int
    ops_observed: int
    current_seconds: float
    best_seconds: float
    predicted_speedup: float
    convert_seconds: float
    break_even_ops: float
    bitwise_safe: bool
    decision: FormatDecision = field(repr=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "operand": self.operand,
            "current_format": self.current_fmt,
            "recommended_format": self.recommended_fmt,
            "rows": self.rows,
            "cols": self.cols,
            "nnz": self.nnz,
            "row_mean": self.row_mean,
            "row_max": self.row_max,
            "ops_observed": self.ops_observed,
            "current_seconds": self.current_seconds,
            "best_seconds": self.best_seconds,
            "predicted_speedup": self.predicted_speedup,
            "convert_seconds": self.convert_seconds,
            "break_even_ops": self.break_even_ops,
            "bitwise_safe": self.bitwise_safe,
            "candidates": [
                {
                    "format": cand.fmt,
                    "op_seconds": cand.op_seconds,
                    "convert_seconds": cand.convert_seconds,
                    "break_even_ops": cand.break_even_ops,
                    "bitwise_safe": cand.bitwise_safe,
                }
                for cand in self.decision.candidates
            ],
        }


#: How to recover row lengths from a traced SpMV launch, per format.
#: (metadata store name, reducer over its host array)
_ROWLEN_SOURCES = {
    "csr": ("pos", lambda arr: arr[:, 1] - arr[:, 0]),
    # sell rowlen is per *slot*, but slots permute tiles onto
    # themselves, so per-tile statistics are unchanged.
    "ell": ("rowlen", lambda arr: arr),
    "sell": ("rowlen", lambda arr: arr),
    "hyb": ("rowlen", lambda arr: arr),
}

_SPMV_STATEMENT = "y(i)=A(i,j)*x(j)"


def advise_formats(
    plan,
    scope,
    config,
    *,
    skew_ratio: float = 8.0,
    padding_waste: float = 0.5,
    autoformat_on: bool = False,
    sell_c: int = DEFAULT_SELL_C,
    sell_sigma: int = DEFAULT_SELL_SIGMA,
) -> Tuple[List[FormatAdvice], List[Tuple[str, str, str]]]:
    """Walk a plan's SpMV launches and advise per-operand formats.

    Returns ``(advice, lints)`` where each lint is a plain
    ``(severity, rule, message)`` triple the advisor wraps into its
    :class:`~repro.analysis.advisor.Finding` type.  When
    ``autoformat_on`` (the analyzed config would convert at runtime),
    an unamortized conversion escalates from warning to error so
    ``advise --autoformat`` can gate CI.
    """
    groups: Dict[int, Dict[str, object]] = {}
    for op in plan.ops:
        model = costmodel.for_task_name(op.name)
        if model is None or model.statement != _SPMV_STATEMENT:
            continue
        source = _ROWLEN_SOURCES.get(model.fmt)
        if source is None:
            continue
        meta_name, reduce_fn = source
        stores = {name: store for name, store, _priv in op.args}
        meta = stores.get(meta_name)
        x = stores.get("x")
        vals = stores.get("vals")
        if vals is None:
            vals = stores.get("data")
        if meta is None or x is None or vals is None:
            continue
        key = meta.region.uid
        group = groups.setdefault(
            key,
            {
                "fmt": model.fmt,
                "row_lengths": np.asarray(
                    reduce_fn(meta.region.data), dtype=np.int64
                ),
                "cols": int(x.region.shape[0]),
                "itemsize": int(np.dtype(vals.region.dtype).itemsize),
                "label": meta.region.name or f"region{key}",
                "count": 0,
            },
        )
        group["count"] += 1

    advice: List[FormatAdvice] = []
    lints: List[Tuple[str, str, str]] = []
    for key in sorted(groups):
        group = groups[key]
        rl = group["row_lengths"]
        profile = profile_matrix(
            rl,
            group["cols"],
            group["itemsize"],
            num_procs=len(scope.processors),
            c=sell_c,
            sigma=sell_sigma,
        )
        decision = select_format(profile, scope, config)
        current = decision.candidate(group["fmt"])
        cur_seconds = current.op_seconds if current else decision.csr_seconds
        best = decision.best
        entry = FormatAdvice(
            operand=str(group["label"]),
            current_fmt=str(group["fmt"]),
            recommended_fmt=best.fmt,
            rows=profile.rows,
            cols=profile.cols,
            nnz=profile.nnz,
            row_mean=profile.row_mean,
            row_max=profile.row_max,
            ops_observed=int(group["count"]),
            current_seconds=cur_seconds,
            best_seconds=best.op_seconds,
            predicted_speedup=(
                cur_seconds / best.op_seconds if best.op_seconds else 1.0
            ),
            convert_seconds=best.convert_seconds,
            break_even_ops=best.break_even_ops,
            bitwise_safe=best.bitwise_safe,
            decision=decision,
        )
        advice.append(entry)

        skew = (
            profile.row_max / profile.row_mean if profile.row_mean else 0.0
        )
        if (
            entry.current_fmt == "csr"
            and skew >= skew_ratio
            and best.fmt != "csr"
        ):
            lints.append((
                "warning",
                "format-skew",
                f"operand {entry.operand!r}: row-length skew "
                f"max/mean = {skew:.1f} over {entry.ops_observed} SpMV "
                f"launch(es); format {best.fmt!r} models "
                f"{entry.predicted_speedup:.2f}x over CSR "
                f"(break-even {best.break_even_ops:g} ops)",
            ))
        if entry.current_fmt in ("ell", "hyb"):
            waste = profile.ell_padding_ratio
            if waste >= padding_waste:
                lints.append((
                    "warning",
                    "format-padding-waste",
                    f"operand {entry.operand!r}: {100.0 * waste:.0f}% of "
                    f"{entry.current_fmt.upper()} lanes are padding "
                    f"(width {profile.ell_width}, mean row "
                    f"{profile.row_mean:.1f}); consider SELL-C-sigma "
                    f"or HYB",
                ))
        if (
            best.fmt != entry.current_fmt
            and math.isfinite(best.break_even_ops)
            and entry.ops_observed < best.break_even_ops
        ):
            lints.append((
                "error" if autoformat_on else "warning",
                "format-convert-unamortized",
                f"operand {entry.operand!r}: converting to {best.fmt!r} "
                f"amortizes after {best.break_even_ops:g} SpMVs but the "
                f"plan performs only {entry.ops_observed}"
                + (
                    "; the autoformat runtime would convert anyway"
                    if autoformat_on
                    else ""
                ),
            ))
        elif (
            best.fmt != entry.current_fmt
            and not math.isfinite(best.break_even_ops)
        ):
            lints.append((
                "warning",
                "format-convert-unamortized",
                f"operand {entry.operand!r}: no candidate format beats "
                f"{entry.current_fmt!r} by enough to amortize conversion",
            ))
    return advice, lints
