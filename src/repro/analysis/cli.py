"""Command-line entry points for the analysis tooling.

Three subcommands share ``python -m repro.analysis``:

* ``python -m repro.analysis <run.jsonl>`` — the PR-1 checker: replay a
  recorded event log and report races, stale reads, invalid copies.
* ``python -m repro.analysis advise <prog.py> [--machine summit:4]`` —
  the static advisor: run the program in deferred-trace mode (no
  kernels execute), predict partitions, communication and footprint on
  the requested machine, lint the plan, and print the report.  Exits 1
  when the lint battery finds errors (densification over threshold,
  capacity overflow, unsolvable constraints).
* ``python -m repro.analysis profile <run.spans.json>`` — the timeline
  analyzer: load a span log written by ``Timeline.save`` (see
  ``RuntimeConfig.profile`` / ``REPRO_PROFILE`` and the harness
  ``--profile`` flag), print per-resource utilization, gaps and the
  critical path, and optionally re-export a Chrome/Perfetto trace.

Event logs are produced by running any program with ``RuntimeConfig``
``validate=True`` (or ``REPRO_VALIDATE=1`` in the environment) and
calling ``runtime.event_log.save(path)``; span logs by running with
``profile=True`` (``REPRO_PROFILE=1``) and ``runtime.timeline.save(path)``.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
import traceback
from typing import List, Optional

from repro.analysis.checker import check_log
from repro.analysis.events import EventLog


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Replay a runtime event log and report races, stale "
        "reads and invalid copies (a Legion-Spy-style validator).",
    )
    parser.add_argument("logfile", help="JSONL event log written by EventLog.save")
    parser.add_argument(
        "--stats", action="store_true", help="print event counts by kind"
    )
    parser.add_argument(
        "--max", type=int, default=100, metavar="N",
        help="stop after N violations (default 100)",
    )
    return parser


def build_advise_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis advise",
        description="Statically analyze a sparse program: trace it in "
        "deferred mode (kernels are skipped), predict partition choices, "
        "communication volume per channel class and per-memory peak "
        "footprint on a machine model, and lint for densification, "
        "conversion churn, broadcasts and capacity overflow.",
    )
    parser.add_argument("program", help="Python program to trace")
    parser.add_argument(
        "--machine", default="laptop", metavar="SPEC",
        help="machine model: laptop or summit[:nodes] (default laptop)",
    )
    parser.add_argument(
        "--kind", choices=["gpu", "cpu", "core"], default="gpu",
        help="processor kind to run on (default gpu)",
    )
    parser.add_argument(
        "--procs", type=int, default=None, metavar="N",
        help="processors in the scope (default: all of the kind)",
    )
    parser.add_argument(
        "--per-node", type=int, default=None, metavar="N",
        help="cap processors taken per node",
    )
    parser.add_argument(
        "--data-scale", type=float, default=1.0, metavar="X",
        help="problem magnification applied to footprints/volumes "
        "(trace at reduced size, analyze at paper scale)",
    )
    parser.add_argument(
        "--autoformat", action="store_true",
        help="run the static auto-format pass: rank ELL/SELL-C-sigma/HYB "
        "against the current format for every SpMV operand and lint for "
        "skew, padding waste and unamortized conversions (unamortized "
        "conversions are errors under this flag)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "args", nargs="*", metavar="...",
        help="arguments passed to the traced program "
        "(separate with -- to pass options through)",
    )
    return parser


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis profile",
        description="Analyze a recorded timeline span log: per-resource "
        "utilization and idle gaps, critical-path extraction, and "
        "Chrome-trace/Perfetto export.",
    )
    parser.add_argument(
        "tracefile", help="span log written by Timeline.save (see --profile)"
    )
    parser.add_argument(
        "--chrome", metavar="OUT", default=None,
        help="also write a Chrome/Perfetto trace JSON to OUT",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="print every step of the critical path",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="idle gaps to list in the summary (default 10)",
    )
    return parser


def _profile_main(argv: List[str]) -> int:
    args = build_profile_parser().parse_args(argv)
    # Imported here, not at module top: repro.analysis sits below the
    # runtime layers (see repro.analysis.__init__ on the cycle rule).
    from repro.legion.timeline import Timeline

    try:
        timeline = Timeline.load(args.tracefile)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"error: cannot read trace {args.tracefile!r}: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.chrome:
        timeline.save_chrome_trace(args.chrome)
        print(f"wrote Chrome trace: {args.chrome} ({len(timeline)} spans)")
    print(timeline.format_ascii(top=args.top))
    meta = timeline.meta
    if "fastpath" in meta:
        print(f"host fast path: {'on' if meta['fastpath'] else 'off'}")
    phases = meta.get("host_phases") or {}
    if phases:
        total = sum(phases.values())
        print(f"host phases ({total:.6f}s total):")
        for name, seconds in sorted(
            phases.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {name:>16}: {seconds:.6f}s")
    caches = meta.get("caches") or {}
    if caches:
        print("fast-path caches:")
        for name, count in sorted(caches.items()):
            print(f"  {name:>16}: {int(count)}")
    compile_stats = meta.get("compile_cache") or {}
    if compile_stats:
        print(
            "kernel compile cache: "
            f"{int(compile_stats.get('hits', 0))} hits / "
            f"{int(compile_stats.get('misses', 0))} misses"
        )
    if args.critical_path:
        path = timeline.critical_path()
        print(f"critical path ({len(path.steps)} steps):")
        for step in path.steps:
            where = f" on {step.resource}" if step.resource else ""
            print(
                f"  [{step.start:.6f} -> {step.finish:.6f}] "
                f"{step.kind}: {step.name}{where} ({step.duration:.6f}s)"
            )
    return 0


def _check_main(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    try:
        log = EventLog.load(args.logfile)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read log {args.logfile!r}: {exc}", file=sys.stderr)
        return 2
    if args.stats:
        for kind, count in sorted(log.stats().items()):
            print(f"{kind:>10}: {count}")
    violations = check_log(log, max_violations=args.max)
    for violation in violations:
        print(str(violation))
    if violations:
        print(f"FAILED: {len(violations)} violation(s) in {len(log)} events")
        return 1
    print(f"OK: {len(log)} events, no violations")
    return 0


def _advise_main(argv: List[str]) -> int:
    # Everything after a literal "--" belongs to the traced program.
    passthrough: List[str] = []
    if "--" in argv:
        split = argv.index("--")
        argv, passthrough = argv[:split], argv[split + 1 :]
    args = build_advise_parser().parse_args(argv)
    args.args = list(args.args) + passthrough
    # Imported here, not at module top: the advisor sits above the
    # runtime layers (see repro.analysis.__init__ on the cycle rule).
    from repro.analysis.advisor import (
        AdvisorConfig,
        analyze,
        parse_machine,
        _make_scope,
    )
    from repro.analysis.plan import PlanTrace
    from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope

    try:
        machine = parse_machine(args.machine)
        scope = _make_scope(machine, args.kind, args.procs, args.per_node)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    config = RuntimeConfig.legate(validate=False, data_scale=args.data_scale)
    runtime = Runtime(scope, config)
    plan = PlanTrace(name=args.program, deferred=True)
    plan.bind(runtime)
    runtime.plan_trace = plan
    saved_argv = sys.argv
    sys.argv = [args.program] + list(args.args)
    try:
        with runtime_scope(runtime):
            runpy.run_path(args.program, run_name="__main__")
    except SystemExit as exc:  # traced programs may call sys.exit(0)
        if exc.code not in (None, 0):
            print(
                f"error: traced program exited with {exc.code}",
                file=sys.stderr,
            )
            return 2
    except Exception:
        traceback.print_exc()
        print(
            f"error: traced program {args.program!r} raised during the "
            f"deferred trace", file=sys.stderr,
        )
        return 2
    finally:
        sys.argv = saved_argv
        runtime.plan_trace = None

    advice = analyze(plan, options=AdvisorConfig(autoformat=args.autoformat))
    if args.json:
        print(json.dumps(advice.to_dict(), indent=2))
    else:
        print(advice.format_text())
    return 1 if advice.errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch ``advise``/``profile`` or the legacy checker; returns
    the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "advise":
        return _advise_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    return _check_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
