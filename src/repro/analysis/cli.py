"""Command-line entry point: validate a recorded event log.

Usage::

    python -m repro.analysis run.jsonl            # check, exit 1 on violations
    python -m repro.analysis run.jsonl --stats    # also print event counts
    python -m repro.analysis run.jsonl --max 10   # cap reported violations

Logs are produced by running any program with ``RuntimeConfig``
``validate=True`` (or ``REPRO_VALIDATE=1`` in the environment) and
calling ``runtime.event_log.save(path)``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.checker import check_log
from repro.analysis.events import EventLog


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Replay a runtime event log and report races, stale "
        "reads and invalid copies (a Legion-Spy-style validator).",
    )
    parser.add_argument("logfile", help="JSONL event log written by EventLog.save")
    parser.add_argument(
        "--stats", action="store_true", help="print event counts by kind"
    )
    parser.add_argument(
        "--max", type=int, default=100, metavar="N",
        help="stop after N violations (default 100)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the checker over a log file; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        log = EventLog.load(args.logfile)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read log {args.logfile!r}: {exc}", file=sys.stderr)
        return 2
    if args.stats:
        for kind, count in sorted(log.stats().items()):
            print(f"{kind:>10}: {count}")
    violations = check_log(log, max_violations=args.max)
    for violation in violations:
        print(str(violation))
    if violations:
        print(f"FAILED: {len(violations)} violation(s) in {len(log)} events")
        return 1
    print(f"OK: {len(log)} events, no violations")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
