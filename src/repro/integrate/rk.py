"""Runge-Kutta and extrapolation integrators on distributed arrays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.numeric.array import ndarray

# Dormand-Prince 5(4) tableau.
_DP_C = (0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0)
_DP_A = (
    (),
    (1 / 5,),
    (3 / 40, 9 / 40),
    (44 / 45, -56 / 15, 32 / 9),
    (19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729),
    (9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656),
    (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84),
)
_DP_B5 = (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0)
_DP_B4 = (
    5179 / 57600,
    0.0,
    7571 / 16695,
    393 / 640,
    -92097 / 339200,
    187 / 2100,
    1 / 40,
)


@dataclass
class IntegrationResult:
    """Integrator output: final state, statistics, samples."""
    t: float
    y: ndarray
    nfev: int
    nsteps: int
    success: bool
    message: str = ""
    t_eval: List[float] = field(default_factory=list)
    y_eval: List[np.ndarray] = field(default_factory=list)


RHS = Callable[[float, ndarray], ndarray]


def _axpy_sum(y0: ndarray, terms: List[Tuple[float, ndarray]]) -> ndarray:
    out = y0.copy()
    for coeff, vec in terms:
        if coeff != 0.0:
            out += vec * coeff
    return out


def rk4_step(fun: RHS, t: float, y: ndarray, h: float) -> ndarray:
    """One classic RK4 step."""
    k1 = fun(t, y)
    k2 = fun(t + h / 2, _axpy_sum(y, [(h / 2, k1)]))
    k3 = fun(t + h / 2, _axpy_sum(y, [(h / 2, k2)]))
    k4 = fun(t + h, _axpy_sum(y, [(h, k3)]))
    return _axpy_sum(y, [(h / 6, k1), (h / 3, k2), (h / 3, k3), (h / 6, k4)])


def _dp_step(fun: RHS, t: float, y: ndarray, h: float):
    """One Dormand-Prince step: returns (y5, error_norm, nfev)."""
    ks: List[ndarray] = []
    for stage in range(7):
        if stage == 0:
            yi = y
        else:
            terms = [
                (h * a, ks[i]) for i, a in enumerate(_DP_A[stage]) if a != 0.0
            ]
            yi = _axpy_sum(y, terms)
        ks.append(fun(t + _DP_C[stage] * h, yi))
    y5 = _axpy_sum(y, [(h * b, ks[i]) for i, b in enumerate(_DP_B5) if b != 0.0])
    err_terms = [
        (h * (b5 - b4), ks[i])
        for i, (b5, b4) in enumerate(zip(_DP_B5, _DP_B4))
        if b5 != b4
    ]
    zero = y * 0.0
    err_vec = _axpy_sum(zero, err_terms)
    err = float(rnp.linalg.norm(err_vec))
    return y5, err, 7


def _midpoint_sequence(fun: RHS, t: float, y: ndarray, H: float, nsteps: int) -> ndarray:
    """Gragg's modified midpoint rule with ``nsteps`` substeps."""
    h = H / nsteps
    y0 = y
    y1 = _axpy_sum(y, [(h, fun(t, y))])
    for i in range(1, nsteps):
        y2 = _axpy_sum(y0, [(2 * h, fun(t + i * h, y1))])
        y0, y1 = y1, y2
    # Gragg's smoothing step: 0.5 * (z_{n-1} + z_n + h * f(t+H, z_n)).
    return _axpy_sum(y0 + y1, [(h, fun(t + H, y1))]) * 0.5


_GBS_SEQUENCE = (2, 4, 6, 8)  # extrapolation to ~8th order


def _gbs8_step(fun: RHS, t: float, y: ndarray, H: float):
    """One extrapolated-midpoint step of order ~8 (the quantum driver).

    Neville recurrence in (H/n)^2:
        T[j,k] = T[j,k-1] + (T[j,k-1] - T[j-1,k-1]) / ((n_j/n_{j-k})^2 - 1)
    """
    nfev = 0
    prev_row: List[ndarray] = []
    for j, n in enumerate(_GBS_SEQUENCE):
        row = [_midpoint_sequence(fun, t, y, H, n)]
        nfev += n + 2
        for k in range(1, j + 1):
            ratio = (_GBS_SEQUENCE[j] / _GBS_SEQUENCE[j - k]) ** 2
            diff = row[k - 1] - prev_row[k - 1]
            row.append(row[k - 1] + diff * (1.0 / (ratio - 1.0)))
        prev_row = row
    return prev_row[-1], nfev


def solve_ivp(
    fun: RHS,
    t_span: Tuple[float, float],
    y0: ndarray,
    method: str = "RK45",
    *,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    max_step: Optional[float] = None,
    first_step: Optional[float] = None,
    step: Optional[float] = None,
    t_eval: Optional[List[float]] = None,
    max_steps: int = 100_000,
) -> IntegrationResult:
    """Integrate ``dy/dt = fun(t, y)`` from ``t_span[0]`` to ``t_span[1]``.

    ``RK45`` adapts its step from the embedded error estimate; ``RK4``
    and ``GBS8`` take fixed steps of ``step`` (required).
    """
    t0, tf = float(t_span[0]), float(t_span[1])
    if tf <= t0:
        raise ValueError("t_span must be increasing")
    t, y = t0, y0.copy()
    nfev = 0
    nsteps = 0
    eval_ts: List[float] = []
    eval_ys: List[np.ndarray] = []

    def record(tcur, ycur):
        if t_eval is not None:
            while eval_pending and eval_pending[0] <= tcur + 1e-12:
                eval_ts.append(eval_pending.pop(0))
                eval_ys.append(ycur.to_numpy())

    eval_pending = sorted(float(te) for te in (t_eval or []))

    if method in ("RK4", "GBS8"):
        if step is None:
            raise ValueError(f"{method} is fixed-step: pass step=")
        h = float(step)
        while t < tf - 1e-12 and nsteps < max_steps:
            h_cur = min(h, tf - t)
            if method == "RK4":
                y = rk4_step(fun, t, y, h_cur)
                nfev += 4
            else:
                y, used = _gbs8_step(fun, t, y, h_cur)
                nfev += used
            t += h_cur
            nsteps += 1
            record(t, y)
        return IntegrationResult(
            t, y, nfev, nsteps, t >= tf - 1e-12,
            "" if t >= tf - 1e-12 else "max_steps reached",
            eval_ts, eval_ys,
        )

    if method != "RK45":
        raise ValueError(f"unknown method {method!r}")

    h = first_step if first_step is not None else (tf - t0) / 100
    hmax = max_step if max_step is not None else (tf - t0)
    scale0 = float(rnp.linalg.norm(y))
    while t < tf - 1e-12 and nsteps < max_steps:
        h = min(h, hmax, tf - t)
        y_new, err, used = _dp_step(fun, t, y, h)
        nfev += used
        tolerance = atol + rtol * max(scale0, float(rnp.linalg.norm(y)))
        if err <= tolerance or h <= 1e-14:
            t += h
            y = y_new
            nsteps += 1
            record(t, y)
            factor = 2.0 if err == 0 else min(2.0, 0.9 * (tolerance / err) ** 0.2)
            h *= max(0.2, factor)
        else:
            h *= max(0.2, 0.9 * (tolerance / err) ** 0.25)
    return IntegrationResult(
        t, y, nfev, nsteps, t >= tf - 1e-12,
        "" if t >= tf - 1e-12 else "max_steps reached",
        eval_ts, eval_ys,
    )
