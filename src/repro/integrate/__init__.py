"""``repro.integrate``: Runge-Kutta integration over distributed arrays.

Ported from SciPy's integrators (paper §5.2): the quantum simulation
workload drives its Schrödinger dynamics with an 8th-order method, which
here is the Gragg-Bulirsch-Stoer extrapolated midpoint rule (``GBS8``);
``RK45`` is the adaptive Dormand-Prince pair, and ``RK4`` the classic
fixed-step method.  Every stage is a handful of distributed axpy tasks
plus the user's right-hand side (typically a sparse matvec) — exactly
the many-small-tasks pattern the paper's Fig. 11 discussion analyzes.
"""

from repro.integrate.rk import IntegrationResult, rk4_step, solve_ivp

__all__ = ["IntegrationResult", "rk4_step", "solve_ivp"]
