"""Parametric machine model with a Summit-like factory.

Processors carry the rates that matter for the paper's experiments —
double-precision throughput, attainable memory bandwidth and per-kernel
launch overhead — and memories carry capacities so that the runtime can
account for out-of-memory conditions (Fig. 11's 64-GPU point, Fig. 12's
CuPy failures).  Channels model bandwidth, latency and occupancy; the
per-node NIC is a single shared channel so that all-to-all traffic
contends for injection bandwidth, which is what degrades the quantum
simulation's weak scaling in the paper.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ProcessorKind(enum.Enum):
    """Processor varieties of the machine model."""
    CPU_SOCKET = "cpu-socket"  # a whole multi-core socket (Legate-CPU unit)
    CPU_CORE = "cpu-core"  # one core (single-threaded SciPy baseline)
    GPU = "gpu"


class MemoryKind(enum.Enum):
    """Memory varieties (system memory, GPU framebuffer)."""
    SYSMEM = "sysmem"
    FRAMEBUFFER = "framebuffer"


@dataclass(frozen=True)
class Memory:
    """One memory with a capacity, attached to a node."""
    uid: int
    kind: MemoryKind
    node: int
    capacity: int  # bytes


@dataclass(frozen=True)
class Processor:
    """One processor with roofline rates and launch overhead."""
    uid: int
    kind: ProcessorKind
    node: int
    memory: Memory
    flops: float  # double-precision FLOP/s
    mem_bandwidth: float  # bytes/s attainable
    kernel_overhead: float  # seconds per kernel launch

    def kernel_time(self, flops: float, bytes_moved: float) -> float:
        """Roofline execution time for a kernel on this processor."""
        compute = flops / self.flops if self.flops > 0 else 0.0
        memory = bytes_moved / self.mem_bandwidth if self.mem_bandwidth > 0 else 0.0
        return self.kernel_overhead + max(compute, memory)


@dataclass
class Channel:
    """A link with occupancy: copies serialize on ``busy_until``."""

    name: str
    bandwidth: float  # bytes/s
    latency: float  # seconds
    busy_until: float = 0.0

    def transfer(self, bytes_moved: int, ready: float) -> Tuple[float, float]:
        """Schedule a transfer; returns ``(start, finish)`` sim times."""
        start = max(ready, self.busy_until)
        finish = start + self.latency + bytes_moved / self.bandwidth
        self.busy_until = finish
        return start, finish

    def reset(self) -> None:
        """Clear occupancy (between simulated runs)."""
        self.busy_until = 0.0


@dataclass
class MachineConfig:
    """Rates for one machine variety (defaults approximate Summit)."""

    nodes: int = 1
    sockets_per_node: int = 2
    gpus_per_node: int = 6
    cores_per_socket: int = 20
    # V100: ~7 TF/s FP64, ~900 GB/s HBM2, 16 GB framebuffer.
    gpu_flops: float = 7.0e12
    gpu_bandwidth: float = 820e9
    gpu_kernel_overhead: float = 8e-6
    gpu_memory: int = 16 * 2**30
    # Power9 socket: ~0.5 TF/s FP64 aggregate, ~135 GB/s sustained.
    socket_flops: float = 0.52e12
    socket_bandwidth: float = 135e9
    socket_kernel_overhead: float = 2e-6
    sysmem_per_node: int = 512 * 2**30
    # Single core, for the single-threaded SciPy baseline.
    core_flops: float = 26e9
    core_bandwidth: float = 16e9
    core_kernel_overhead: float = 5e-7
    # NVLink 2.0 (intra-node, CPU<->GPU and GPU<->GPU on Summit).
    nvlink_bandwidth: float = 50e9
    nvlink_latency: float = 2e-6
    # Infiniband EDR: one shared NIC channel per node.
    nic_bandwidth: float = 12.5e9
    nic_latency: float = 1.5e-6
    # Same-memory staging copies (e.g. instance resizes) run at DRAM rate.
    intra_memory_bandwidth: float = 200e9


class Machine:
    """A collection of processors, memories and channels."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        self.processors: List[Processor] = []
        self.memories: List[Memory] = []
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._nic: Dict[int, Channel] = {}
        self._uid = itertools.count()
        self._build()

    def _build(self) -> None:
        cfg = self.config
        for node in range(cfg.nodes):
            sysmem = Memory(
                next(self._uid), MemoryKind.SYSMEM, node, cfg.sysmem_per_node
            )
            self.memories.append(sysmem)
            for _ in range(cfg.sockets_per_node):
                self.processors.append(
                    Processor(
                        next(self._uid),
                        ProcessorKind.CPU_SOCKET,
                        node,
                        sysmem,
                        cfg.socket_flops,
                        cfg.socket_bandwidth,
                        cfg.socket_kernel_overhead,
                    )
                )
            # One single-core processor per node for sequential baselines.
            self.processors.append(
                Processor(
                    next(self._uid),
                    ProcessorKind.CPU_CORE,
                    node,
                    sysmem,
                    cfg.core_flops,
                    cfg.core_bandwidth,
                    cfg.core_kernel_overhead,
                )
            )
            for _ in range(cfg.gpus_per_node):
                fb = Memory(
                    next(self._uid), MemoryKind.FRAMEBUFFER, node, cfg.gpu_memory
                )
                self.memories.append(fb)
                self.processors.append(
                    Processor(
                        next(self._uid),
                        ProcessorKind.GPU,
                        node,
                        fb,
                        cfg.gpu_flops,
                        cfg.gpu_bandwidth,
                        cfg.gpu_kernel_overhead,
                    )
                )
            self._nic[node] = Channel(
                f"nic[{node}]", cfg.nic_bandwidth, cfg.nic_latency
            )

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def procs(self, kind: ProcessorKind) -> List[Processor]:
        """All processors of one kind."""
        return [p for p in self.processors if p.kind == kind]

    def scope(
        self,
        kind: ProcessorKind,
        count: int,
        per_node: Optional[int] = None,
    ) -> "MachineScope":
        """Select ``count`` processors of ``kind``, at most ``per_node``
        from each node (the quantum benchmark uses 4 of 6 GPUs/node)."""
        chosen: List[Processor] = []
        by_node: Dict[int, int] = {}
        for proc in self.procs(kind):
            if per_node is not None and by_node.get(proc.node, 0) >= per_node:
                continue
            chosen.append(proc)
            by_node[proc.node] = by_node.get(proc.node, 0) + 1
            if len(chosen) == count:
                return MachineScope(self, chosen)
        raise ValueError(
            f"machine has only {len(chosen)} {kind.value} processors "
            f"(requested {count}, per_node={per_node})"
        )

    def channels_between(self, src: Memory, dst: Memory) -> List[Channel]:
        """The channel path a copy between two memories occupies."""
        if src.uid == dst.uid:
            key = (src.uid, src.uid)
            if key not in self._channels:
                self._channels[key] = Channel(
                    f"intra[{src.uid}]",
                    self.config.intra_memory_bandwidth,
                    0.0,
                )
            return [self._channels[key]]
        if src.node == dst.node:
            key = (min(src.uid, dst.uid), max(src.uid, dst.uid))
            if key not in self._channels:
                self._channels[key] = Channel(
                    f"nvlink[{key[0]},{key[1]}]",
                    self.config.nvlink_bandwidth,
                    self.config.nvlink_latency,
                )
            return [self._channels[key]]
        return [self._nic[src.node], self._nic[dst.node]]

    def interconnect_latency(self, nodes: int) -> float:
        """One network hop latency; used by the allreduce model."""
        return self.config.nic_latency if nodes > 1 else self.config.nvlink_latency

    def channels(self) -> List[Channel]:
        """Every channel in use so far (lazily created paths + NICs)."""
        return list(self._channels.values()) + list(self._nic.values())

    def channel_horizon(self) -> float:
        """The latest channel occupancy anywhere on the machine.

        Sync points fold this into the simulated clock: a trailing
        copy (checkpoint snapshot, spill) keeps the machine busy after
        the last kernel retires.
        """
        return max((c.busy_until for c in self.channels()), default=0.0)

    def reset_channels(self) -> None:
        """Clear all channel occupancy."""
        for chan in self._channels.values():
            chan.reset()
        for chan in self._nic.values():
            chan.reset()


class MachineScope:
    """A subset of processors targeted by one run of the runtime."""

    def __init__(self, machine: Machine, processors: List[Processor]):
        if not processors:
            raise ValueError("empty machine scope")
        self.machine = machine
        self.processors = processors

    def __len__(self) -> int:
        return len(self.processors)

    @property
    def kind(self) -> ProcessorKind:
        """The processor kind of this scope."""
        return self.processors[0].kind

    @property
    def nodes(self) -> int:
        """Distinct nodes the scope spans."""
        return len({p.node for p in self.processors})

    def memories(self) -> List[Memory]:
        # Socket processors on the same node share their system memory.
        """Deduplicated memories of the scope."""
        seen: Dict[int, Memory] = {}
        for proc in self.processors:
            seen.setdefault(proc.memory.uid, proc.memory)
        return list(seen.values())


def summit(nodes: int = 1) -> Machine:
    """A Summit-like machine: 2 Power9 sockets + 6 V100s per node."""
    return Machine(MachineConfig(nodes=nodes))


def laptop() -> Machine:
    """A tiny machine for unit tests: 1 node, 1 socket, 2 small GPUs."""
    return Machine(
        MachineConfig(
            nodes=1,
            sockets_per_node=1,
            gpus_per_node=2,
            gpu_memory=64 * 2**20,
            sysmem_per_node=2 * 2**30,
        )
    )
