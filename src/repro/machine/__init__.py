"""Machine models for the simulated distributed executions.

The paper evaluates on the Summit supercomputer; this package provides a
parametric description of such machines — nodes containing CPU sockets and
GPUs, their attached memories, and the bandwidth/latency-modelled channels
connecting memories (DRAM, NVLink 2.0, PCIe, Infiniband EDR).
"""

from repro.machine.model import (
    Channel,
    Machine,
    MachineScope,
    Memory,
    MemoryKind,
    Processor,
    ProcessorKind,
    laptop,
    summit,
)

__all__ = [
    "Channel",
    "Machine",
    "MachineScope",
    "Memory",
    "MemoryKind",
    "Processor",
    "ProcessorKind",
    "laptop",
    "summit",
]
