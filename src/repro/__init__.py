"""repro: a reproduction of *Legate Sparse* (SC '23, Yadav et al.).

A distributed drop-in replacement for ``scipy.sparse`` that composes
with a distributed NumPy, built on a Legion-like simulated runtime.
The three imports most programs need::

    import repro.numeric as np      # the cuNumeric-alike
    import repro.sparse  as sp      # the legate.sparse-alike
    from repro.legion import Runtime, RuntimeConfig, set_runtime

Configure a machine before (or instead of) the default::

    from repro.machine import ProcessorKind, summit
    rt = Runtime(summit(nodes=2).scope(ProcessorKind.GPU, 8),
                 RuntimeConfig.legate())
    set_runtime(rt)

See README.md for the tour, DESIGN.md for the substitution table and
calibration, docs/ARCHITECTURE.md for internals, and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
