"""Serve bench: a seeded load generator against the multi-tenant service.

The shared model is a MovieLens-style factorization
(:mod:`repro.apps.matfact` over :mod:`repro.apps.movielens` data): each
published *matrix version* is the model's predicted-ratings matrix on
the observed pattern after ``v`` training steps, and a request is a
user taste profile ``x`` scored as ``R_pred @ x`` — one SpMV against
the shared model.

The load generator is a pure function of the seed: per-tenant streams
of bursty arrivals with a tunable duplicate-input rate (cache traffic),
dtype mix (unbatchable traffic) and mid-run model updates (version
churn).  Scenarios measure:

* **scaling** — throughput and p50/p99 *modeled* latency at several
  tenant counts;
* **batching** — the same workload with cross-request batching on
  versus off (``max_batch=1``): per-request results must be
  bitwise-identical (sha256 per request id) and batching must strictly
  reduce total modeled launch overhead;
* **caching** — a duplicate-heavy workload with the result cache on
  versus off;
* **churn + pressure** — version churn, mixed dtypes and undersized
  queues, to exercise refusal accounting, admission control and the
  serving lints;
* **isolation** — one chaos-configured tenant whose injected faults
  (and retries) stay inside its dedicated runtime while other tenants'
  results stay bitwise-identical to a fault-free run;
* **backends** — the same workload driven by the simulated, sync and
  asyncio execution backends produces identical per-request bits.

``scripts/serve.py`` writes the payload to ``BENCH_serve.json``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sps

from repro.apps.matfact import MatrixFactorizationModel
from repro.apps.movielens import synthetic_movielens
from repro.legion.chaos import ChaosConfig
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, summit
from repro.serve import ServiceConfig, SparseService, TenantConfig

SERVE_USERS = 384
SERVE_ITEMS = 256
SERVE_RATINGS = 6_000
SERVE_K = 8
SERVE_PROCS = 2
# Arrivals come in bursts (a burst shares one arrival instant, bursts
# are ``gap`` apart) so scheduling windows actually contain co-pending
# requests — the traffic shape batching exists for.
BURST = 4
BURST_GAP = 2.5e-4


# ----------------------------------------------------------------------
# The shared model
# ----------------------------------------------------------------------
def build_model_versions(seed: int = 0, n_versions: int = 2) -> List:
    """Predicted-ratings matrices after 0..n-1 training steps.

    Version ``v`` is the factorization's prediction on the observed
    rating pattern after ``v`` full-batch SGD steps — a model update
    between versions is exactly "the trainer published a new epoch".
    """
    users, items, ratings = synthetic_movielens(
        SERVE_USERS, SERVE_ITEMS, SERVE_RATINGS, seed=seed
    )
    machine = summit(nodes=1)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, SERVE_PROCS),
        RuntimeConfig.legate(),
    )
    versions = []
    with runtime_scope(rt):
        model = MatrixFactorizationModel(
            SERVE_USERS, SERVE_ITEMS, k=SERVE_K,
            mu=float(ratings.mean()), seed=seed,
        )
        for _ in range(n_versions):
            R, rows, cols = model._batch_matrices(users, items, ratings)
            preds = model._predict_on_pattern(R, rows, cols).to_numpy()
            versions.append(
                sps.csr_matrix(
                    (preds, (rows.to_numpy(), cols.to_numpy())),
                    shape=(SERVE_USERS, SERVE_ITEMS),
                )
            )
            model.train_batch(users, items, ratings)
    return versions


# ----------------------------------------------------------------------
# The load generator (pure function of the seed)
# ----------------------------------------------------------------------
def generate_streams(
    seed: int,
    tenants: Sequence[str],
    requests_per_tenant: int,
    n: int = SERVE_ITEMS,
    dup_rate: float = 0.0,
    dtype_mix: float = 0.0,
) -> Dict[str, List[Tuple[float, np.ndarray]]]:
    """Per-tenant ``(arrival, x)`` streams with bursty arrivals.

    ``dup_rate`` draws the RHS from a small shared pool (identical
    bytes → cache-hittable, including across tenants); ``dtype_mix``
    downcasts some requests to float32 (legal, but unbatchable against
    float64 traffic).
    """
    rng = np.random.default_rng(seed)
    pool = [rng.standard_normal(n) for _ in range(4)]
    streams: Dict[str, List[Tuple[float, np.ndarray]]] = {}
    for tenant in tenants:
        t = 0.0
        items: List[Tuple[float, np.ndarray]] = []
        for i in range(requests_per_tenant):
            if i and i % BURST == 0:
                t += BURST_GAP
            if dup_rate and rng.random() < dup_rate:
                x = pool[int(rng.integers(len(pool)))]
            else:
                x = rng.standard_normal(n)
            if dtype_mix and rng.random() < dtype_mix:
                x = x.astype(np.float32)
            items.append((t, x))
        streams[tenant] = items
    return streams


# ----------------------------------------------------------------------
# Scenario runner
# ----------------------------------------------------------------------
def _digest(y: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(y).tobytes()).hexdigest()


def run_scenario(
    versions: Sequence,
    tenants: Sequence[TenantConfig],
    streams: Dict[str, List[Tuple[float, np.ndarray]]],
    max_batch: int = 8,
    cache_capacity: int = 256,
    backend: str = "simulated",
    window: int = 8,
    update_after: Optional[int] = None,
) -> Dict:
    """Serve one workload; returns metrics plus per-request digests.

    ``update_after`` publishes model version 1 after that many
    requests have been admitted (version churn: in-flight requests
    keep their pinned version, later admissions see the new one).
    """
    svc = SparseService(
        versions[0],
        list(tenants),
        ServiceConfig(
            procs=SERVE_PROCS,
            window=window,
            max_batch=max_batch,
            cache_capacity=cache_capacity,
            backend=backend,
        ),
    )
    if update_after is None:
        responses = svc.serve_streams(streams)
    else:
        ordered = sorted(
            (
                (arrival, tenant, x)
                for tenant, items in streams.items()
                for arrival, x in items
            ),
            key=lambda item: item[0],
        )
        for i, (arrival, tenant, x) in enumerate(ordered):
            if i == update_after:
                svc.update_model(versions[1])
            svc.submit(tenant, x, arrival)
        responses = svc.run()
    stats = svc.stats()
    prof = svc.runtime.profiler
    ok = [r for r in responses.values() if r.ok]
    # Digests key on (tenant, per-tenant sequence) — stable across
    # backends (rid assignment order depends on producer interleaving,
    # but each tenant's requests admit and serve in stream order).
    digests: Dict[str, str] = {}
    counters: Dict[str, int] = {}
    for r in sorted(ok, key=lambda resp: resp.rid):
        seq = counters.get(r.tenant, 0)
        counters[r.tenant] = seq + 1
        digests[f"{r.tenant}:{seq}"] = _digest(r.y)
    latencies = sorted(r.latency for r in ok)
    arrivals = [a for items in streams.values() for a, _ in items]
    span = (
        max((r.finish for r in ok), default=0.0) - min(arrivals, default=0.0)
    )
    return {
        "tenants": len(tenants),
        "backend": backend,
        "max_batch": max_batch,
        "cache_capacity": cache_capacity,
        "requests": sum(len(items) for items in streams.values()),
        "admitted": stats.requests_admitted,
        "rejected": stats.requests_rejected,
        "served": stats.requests_served,
        "failed": stats.requests_failed,
        "throughput_rps": len(ok) / span if span > 0 else 0.0,
        "p50_latency_s": float(np.percentile(latencies, 50)) if latencies else 0.0,
        "p99_latency_s": float(np.percentile(latencies, 99)) if latencies else 0.0,
        "launches": stats.launches,
        "batches": stats.batches,
        "batched_requests": stats.batched_requests,
        "refusals": dict(stats.refusals),
        "cache_hits": stats.cache.hits,
        "cache_misses": stats.cache.misses,
        "launch_overhead_s": prof.launch_overhead_seconds,
        "kernel_s": prof.kernel_seconds,
        "per_tenant": stats.per_tenant,
        "lints": [f"{i.code}: {i.message}" for i in svc.advise()],
        "digests": digests,
        "isolated_faults": {
            name: {
                k: v
                for k, v in sorted(
                    dom.runtime.profiler.faults_injected.items()
                )
                if v
            }
            for name, dom in svc._domains.items()
            if name != "shared"
        },
        "shared_faults": {
            k: v for k, v in sorted(prof.faults_injected.items()) if v
        },
        "shared_retries": prof.retries,
    }


def _strip_digests(record: Dict) -> Dict:
    return {k: v for k, v in record.items() if k != "digests"}


# ----------------------------------------------------------------------
# The full payload
# ----------------------------------------------------------------------
def run_all(
    tenant_counts: Sequence[int] = (2, 4, 8),
    requests_per_tenant: int = 24,
    seed: int = 0,
) -> Dict:
    """The BENCH_serve payload: scaling, batching, caching, churn,
    isolation and backend-equivalence scenarios over one seeded model."""
    versions = build_model_versions(seed=seed, n_versions=2)

    def plain_tenants(count):
        return [TenantConfig(f"t{i}") for i in range(count)]

    # -- scaling: throughput and tail latency vs tenant count ----------
    scaling = []
    for count in tenant_counts:
        names = [t.name for t in plain_tenants(count)]
        streams = generate_streams(
            seed + count, names, requests_per_tenant, dup_rate=0.2
        )
        scaling.append(
            _strip_digests(
                run_scenario(versions, plain_tenants(count), streams)
            )
        )

    # -- batching on vs off: bitwise identity + overhead reduction -----
    bat_tenants = plain_tenants(4)
    bat_names = [t.name for t in bat_tenants]
    bat_streams = generate_streams(seed + 1, bat_names, requests_per_tenant)
    batched = run_scenario(
        versions, bat_tenants, bat_streams, max_batch=8, cache_capacity=0
    )
    unbatched = run_scenario(
        versions, bat_tenants, bat_streams, max_batch=1, cache_capacity=0
    )
    batching = {
        "bitwise_identical": batched["digests"] == unbatched["digests"],
        "batched": _strip_digests(batched),
        "unbatched": _strip_digests(unbatched),
        "launch_overhead_reduction": (
            unbatched["launch_overhead_s"] - batched["launch_overhead_s"]
        ),
    }

    # -- caching: duplicate-heavy traffic, cache on vs off -------------
    cache_streams = generate_streams(
        seed + 2, bat_names, requests_per_tenant, dup_rate=0.6
    )
    cached = run_scenario(versions, bat_tenants, cache_streams)
    uncached = run_scenario(
        versions, bat_tenants, cache_streams, cache_capacity=0
    )
    caching = {
        "bitwise_identical": cached["digests"] == uncached["digests"],
        "cached": _strip_digests(cached),
        "uncached": _strip_digests(uncached),
    }

    # -- churn + pressure: refusals, rejections and the lints ----------
    churn_tenants = [
        TenantConfig(f"t{i}", max_queue=requests_per_tenant // 2)
        for i in range(4)
    ]
    churn_streams = generate_streams(
        seed + 3,
        [t.name for t in churn_tenants],
        requests_per_tenant,
        dtype_mix=0.3,
    )
    churn = _strip_digests(
        run_scenario(
            versions,
            churn_tenants,
            churn_streams,
            update_after=(4 * requests_per_tenant) // 2,
        )
    )

    # -- isolation: a chaos tenant's faults stay in its domain ---------
    iso_tenants = plain_tenants(3) + [
        TenantConfig(
            "chaotic",
            chaos=ChaosConfig(seed=seed + 7, copy_fault_rate=0.2),
        )
    ]
    iso_names = [t.name for t in iso_tenants]
    iso_streams = generate_streams(seed + 4, iso_names, requests_per_tenant)
    iso = run_scenario(versions, iso_tenants, iso_streams)
    base_streams = {
        name: items
        for name, items in iso_streams.items()
        if name != "chaotic"
    }
    iso_base = run_scenario(versions, plain_tenants(3), base_streams)
    # Compare the non-chaotic tenants' results against a run without the
    # chaotic tenant at all: fault injection (and retries) in the
    # isolated domain must not perturb anyone else's bits.  Request ids
    # differ between the two runs, so compare digest multisets.
    isolation = {
        "chaotic_faults": iso["isolated_faults"].get("chaotic", {}),
        "shared_faults": iso["shared_faults"],
        "others_unperturbed": iso_base["digests"]
        == {
            key: d
            for key, d in iso["digests"].items()
            if not key.startswith("chaotic:")
        },
        "with_chaos": _strip_digests(iso),
        "baseline": _strip_digests(iso_base),
    }

    # -- backends: identical bits across simulated / sync / asyncio ----
    be_streams = generate_streams(seed + 5, bat_names, requests_per_tenant)
    be_digests = {}
    for backend in ("simulated", "sync", "asyncio"):
        rec = run_scenario(
            versions, bat_tenants, be_streams, backend=backend
        )
        be_digests[backend] = rec["digests"]
    backends = {
        "identical": (
            be_digests["simulated"]
            == be_digests["sync"]
            == be_digests["asyncio"]
        ),
        "requests": len(be_digests["simulated"]),
    }

    return {
        "benchmark": "multi-tenant serving (load generator)",
        "machine": f"summit:1 x {SERVE_PROCS} GPUs (simulated)",
        "seed": seed,
        "model": {
            "dataset": f"synthetic movielens {SERVE_USERS}x{SERVE_ITEMS}",
            "nnz": int(versions[0].nnz),
            "factor_rank": SERVE_K,
            "versions": len(versions),
        },
        "scaling": scaling,
        "batching": batching,
        "caching": caching,
        "churn": churn,
        "isolation": isolation,
        "backends": backends,
    }
