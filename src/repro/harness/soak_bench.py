"""Chaos soak fuzzer: randomized multi-fault schedules vs. fig9 CG.

Where :mod:`repro.harness.chaos_bench` measures three hand-picked fault
schedules, the soak fuzzer *searches* the failure space: a seeded RNG
generates scenario after scenario of randomized multi-fault schedules —
concurrent node+GPU losses, losses timed to land during checkpoint
drains and journal replays, fault storms — at varying replica counts,
detection latencies and checkpoint cadences, and runs each against the
Fig. 9 CG loop.

Every scenario is judged against the **soak invariant**:

    the run either completes *bitwise-identical* to the fault-free
    baseline with a checker-clean event log, or raises a clean
    :class:`FaultError` naming what was exhausted — never a silent
    wrong answer.

Scenario 0 is pinned (not random): a ``ckpt_replicas=2`` schedule that
loses node 0's sysmem mid-solve and must *complete* — the acceptance
criterion that Resilience 2.0 removed PR 4's single point of failure.

:func:`run_soak` packages everything into the ``BENCH_soak.json``
payload written by ``scripts/soak.py``; per-scenario records carry
recovery-cost and detection-latency stats from the profiler.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.analysis.checker import check_log
from repro.apps.poisson import poisson2d_scipy
from repro.legion.chaos import ChaosConfig, LossSchedule
from repro.legion.exceptions import FaultError
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, summit

SOAK_GRID = 20  # 400-row 2-D Poisson: small enough to soak many runs
SOAK_ITERS = 6
SOAK_NODES = 2
SOAK_PROCS = 4
# Randomized schedules draw from these pools.
_CKPT_CADENCES = (4, 6, 8, 12)
_HEARTBEATS = (0.0, 1e-4, 2.5e-4)
_TIMEOUTS = (0.0, 5e-5, 2e-4)
_FAMILIES = (
    "gpu_loss",       # one GPU framebuffer vanishes
    "node_loss",      # one whole node (sysmem + framebuffers)
    "concurrent",     # node + GPU lost at the same instant
    "replay_storm",   # second loss timed to land during recovery replay
    "ckpt_drain",     # dense cadence, loss near an epoch boundary
    "storm",          # 3-4 mixed losses across the solve window
    "unprotected",    # losses with checkpoint_every=0 (journal from start)
)


def _digest(arr) -> str:
    data = arr.to_numpy()
    return hashlib.sha256(data.tobytes()).hexdigest()


def _measure(
    chaos: Optional[ChaosConfig],
    nodes: int = SOAK_NODES,
    procs: int = SOAK_PROCS,
    grid: int = SOAK_GRID,
    iters: int = SOAK_ITERS,
) -> Dict:
    """One fig9-style CG run under a fault schedule; returns metrics."""
    machine = summit(nodes=nodes)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs, per_node=max(1, procs // nodes)),
        RuntimeConfig.legate(chaos=chaos, validate=True),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(grid))
        b = rnp.ones(grid * grid)
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1)  # warm-up
        t0 = rt.barrier()
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=iters)
        t1 = rt.barrier()
        digest = _digest(x)
    prof = rt.profiler
    violations = check_log(rt.event_log)
    return {
        "modeled_time_s": t1 - t0,
        "t_solve_start": t0,
        "t_solve_end": t1,
        "faults_injected": {
            k: v for k, v in sorted(prof.faults_injected.items()) if v
        },
        "retries": prof.retries,
        "checkpoints": prof.checkpoints,
        "checkpoint_bytes": prof.checkpoint_bytes,
        "replication_bytes": prof.replication_bytes,
        "recoveries": prof.recoveries,
        "restores": prof.restores,
        "restore_bytes": prof.restore_bytes,
        "detections": prof.detections,
        "detection_seconds": prof.detection_seconds,
        "tasks_reexecuted": prof.tasks_reexecuted,
        "checker_violations": [str(v) for v in violations],
        "solution_sha256": digest,
    }


# ----------------------------------------------------------------------
# Scenario generation (pure function of the seed)
# ----------------------------------------------------------------------
def _loss_time(rng: np.random.Generator, window: Tuple[float, float]) -> float:
    t0, t1 = window
    return float(t0 + (0.1 + 0.8 * rng.random()) * (t1 - t0))


def _random_scenario(
    rng: np.random.Generator,
    index: int,
    window: Tuple[float, float],
    nodes: int,
    procs: int,
) -> Dict:
    """Draw one randomized multi-fault scenario spec."""
    family = _FAMILIES[int(rng.integers(len(_FAMILIES)))]
    replicas = int(rng.choice([1, 2, 2]))  # bias toward replicated runs
    cadence = int(rng.choice(_CKPT_CADENCES))
    heartbeat = float(rng.choice(_HEARTBEATS))
    timeout = float(rng.choice(_TIMEOUTS))
    noise = float(rng.choice([0.0, 0.0, 0.02]))
    losses: List[LossSchedule] = []
    if family == "gpu_loss":
        losses.append(LossSchedule("gpu", int(rng.integers(procs)), _loss_time(rng, window)))
    elif family == "node_loss":
        losses.append(LossSchedule("node", int(rng.integers(nodes)), _loss_time(rng, window)))
    elif family == "concurrent":
        t = _loss_time(rng, window)
        node = int(rng.integers(nodes))
        # The concurrent GPU loss hits a *different* node's processor so
        # the two faults wipe distinct fault domains at one instant.
        gpu = int(rng.integers(procs))
        losses.append(LossSchedule("node", node, t))
        losses.append(LossSchedule("gpu", gpu, t))
    elif family == "replay_storm":
        t = _loss_time(rng, window)
        losses.append(LossSchedule("node", int(rng.integers(nodes)), t))
        # recovery_delay is 1e-3: a loss ~0.5e-3 later lands inside the
        # first recovery's stall/replay and exercises re-entrancy.
        losses.append(LossSchedule("gpu", int(rng.integers(procs)), t + 5e-4))
    elif family == "ckpt_drain":
        cadence = 4  # dense epochs: losses land near drain boundaries
        losses.append(LossSchedule("node", int(rng.integers(nodes)), _loss_time(rng, window)))
        losses.append(LossSchedule("gpu", int(rng.integers(procs)), _loss_time(rng, window)))
    elif family == "storm":
        for _ in range(int(rng.integers(3, 5))):
            kind = "node" if rng.random() < 0.4 else "gpu"
            target = int(rng.integers(nodes if kind == "node" else procs))
            losses.append(LossSchedule(kind, target, _loss_time(rng, window)))
    elif family == "unprotected":
        cadence = 0
        losses.append(LossSchedule("gpu", int(rng.integers(procs)), _loss_time(rng, window)))
    losses.sort(key=lambda l: l.at_time)
    return {
        "name": f"s{index:03d}-{family}",
        "family": family,
        "chaos": ChaosConfig(
            seed=int(rng.integers(2**31)),
            copy_fault_rate=noise,
            checkpoint_every=cadence,
            ckpt_replicas=replicas,
            heartbeat_period=heartbeat,
            detection_timeout=timeout,
            losses=tuple(losses),
        ),
    }


def _pinned_scenario(window: Tuple[float, float]) -> Dict:
    """The acceptance scenario: replicas=2 survives losing node 0."""
    t_mid = (window[0] + window[1]) / 2.0
    return {
        "name": "s000-node0-replicas2",
        "family": "node0_replicas2",
        "chaos": ChaosConfig(
            seed=1,
            checkpoint_every=8,
            ckpt_replicas=2,
            heartbeat_period=2e-4,
            detection_timeout=1e-4,
            losses=(LossSchedule("node", 0, t_mid),),
        ),
    }


# ----------------------------------------------------------------------
# The soak loop
# ----------------------------------------------------------------------
def _judge(baseline: Dict, spec: Dict, nodes: int, procs: int) -> Dict:
    """Run one scenario and judge it against the soak invariant."""
    chaos = spec["chaos"]
    record: Dict = {
        "name": spec["name"],
        "family": spec["family"],
        "replicas": chaos.ckpt_replicas,
        "checkpoint_every": chaos.checkpoint_every,
        "heartbeat_period": chaos.heartbeat_period,
        "detection_timeout": chaos.detection_timeout,
        "losses": [
            {"kind": l.kind, "target": l.target, "at": l.at_time}
            for l in chaos.losses
        ],
        "chaos": repr(chaos),
    }
    try:
        run = _measure(chaos, nodes=nodes, procs=procs)
    except FaultError as exc:
        # A clean, named failure satisfies the invariant: the runtime
        # refused to produce an answer it could not stand behind.
        record.update(
            outcome="fault-error",
            error=str(exc),
            invariant_ok=True,
            silent_corruption=False,
        )
        return record
    except Exception as exc:  # noqa: BLE001 - any other escape is a bug
        record.update(
            outcome="crash",
            error=f"{type(exc).__name__}: {exc}",
            invariant_ok=False,
            silent_corruption=False,
        )
        return record
    bitwise = run["solution_sha256"] == baseline["solution_sha256"]
    clean = not run["checker_violations"]
    overhead = (
        run["modeled_time_s"] / baseline["modeled_time_s"]
        if baseline["modeled_time_s"] > 0
        else float("inf")
    )
    record.update(
        outcome="completed",
        bitwise_identical=bitwise,
        checker_clean=clean,
        invariant_ok=bitwise and clean,
        silent_corruption=not (bitwise and clean),
        overhead_ratio=overhead,
        **{
            k: run[k]
            for k in (
                "modeled_time_s", "faults_injected", "retries",
                "checkpoints", "checkpoint_bytes", "replication_bytes",
                "recoveries", "restores", "restore_bytes", "detections",
                "detection_seconds", "tasks_reexecuted",
                "checker_violations",
            )
        },
    )
    return record


def run_soak(
    scenarios: int = 20,
    seed: int = 0,
    nodes: int = SOAK_NODES,
    procs: int = SOAK_PROCS,
) -> Dict:
    """The full BENCH_soak payload: baseline plus ``scenarios`` judged runs.

    Scenario 0 is always the pinned node-0-loss-at-replicas-2
    acceptance schedule; the rest are drawn from the seeded RNG.  The
    payload's ``summary`` counts outcomes and aggregates recovery-cost
    and detection-latency statistics over the completed runs.
    """
    baseline = _measure(None, nodes=nodes, procs=procs)
    window = (baseline["t_solve_start"], baseline["t_solve_end"])
    rng = np.random.default_rng(seed)
    specs = [_pinned_scenario(window)]
    for i in range(1, max(scenarios, 1)):
        specs.append(_random_scenario(rng, i, window, nodes, procs))
    records = [_judge(baseline, spec, nodes, procs) for spec in specs]

    completed = [r for r in records if r["outcome"] == "completed"]
    survived_faults = [
        r for r in completed if any(r["faults_injected"].values())
    ]
    node0_replicated = [
        r
        for r in records
        if r["replicas"] >= 2
        and any(l["kind"] == "node" and l["target"] == 0 for l in r["losses"])
        and r["outcome"] == "completed"
        and r.get("bitwise_identical")
        and r.get("checker_clean")
    ]
    summary = {
        "scenarios": len(records),
        "completed": len(completed),
        "fault_errors": sum(1 for r in records if r["outcome"] == "fault-error"),
        "crashes": sum(1 for r in records if r["outcome"] == "crash"),
        "silent_corruptions": sum(1 for r in records if r["silent_corruption"]),
        "invariant_violations": sum(1 for r in records if not r["invariant_ok"]),
        "survived_with_faults": len(survived_faults),
        "node0_loss_replicated_survivals": len(node0_replicated),
        "total_recoveries": sum(r.get("recoveries", 0) for r in completed),
        "total_tasks_reexecuted": sum(
            r.get("tasks_reexecuted", 0) for r in completed
        ),
        "mean_detection_seconds": (
            float(np.mean([r["detection_seconds"] for r in completed]))
            if completed
            else 0.0
        ),
        "max_overhead_ratio": max(
            (r["overhead_ratio"] for r in completed), default=0.0
        ),
    }
    return {
        "benchmark": "chaos soak (randomized multi-fault schedules)",
        "machine": f"summit:{nodes} x {procs} GPUs (simulated)",
        "seed": seed,
        "invariant": (
            "every run completes bitwise-identical to fault-free with a "
            "checker-clean event log, or raises a clean FaultError — "
            "never a silent wrong answer"
        ),
        "baseline": baseline,
        "summary": summary,
        "scenarios": records,
    }
