"""Regenerate every paper artifact and write EXPERIMENTS.md.

Usage::

    python -m repro.harness.report            # full column sets (~10 min)
    python -m repro.harness.report --fast     # reduced columns (~2 min)

This is the reproduction's equivalent of the artifact's
``scripts/summit/run_all.sh`` + ``scripts/plot/plot.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.config import WEAK_SCALING_COLUMNS
from repro.harness.figures import FigureResult

FAST_COLUMNS = [(1, 1), (1, 3), (2, 6), (8, 24), (64, 192)]
FAST_QUANTUM = [1, 2, 4, 16, 64]

PAPER_EXPECTATIONS = {
    "Figure 8": [
        "All distributed systems weak-scale ~flat (trivially parallel).",
        "SciPy is flat and lowest; Legate-CPU is multi-threaded and far above it.",
        "Legate-GPU sits slightly below CuPy and PETSc-GPU (local reshape cost).",
    ],
    "Figure 9": [
        "Legate-GPU ~85% of PETSc-GPU at 1 GPU; ~65% at 192 GPUs.",
        "Legate's falloff appears from ~32 nodes (allreduce overheads).",
        "PETSc weak-scales nearly perfectly, dipping slightly at 192 GPUs.",
        "Legate-CPU >> SciPy; PETSc-CPU slightly ahead of Legate-CPU.",
    ],
    "Figure 10": [
        "CuPy ~1.3x Legate-GPU at 1 GPU (small V-cycle tasks expose overhead).",
        "Legate-GPU weak-scales well initially, then degrades.",
        "Legate-CPU significantly outperforms SciPy with good weak scaling.",
    ],
    "Figure 11": [
        "CuPy ~1.4x Legate-GPU at 1 GPU.",
        "GPUs >> CPUs at 1-4 processors (NVLink).",
        "GPU throughput sinks to/below CPU at 16 processors (NIC per byte).",
        "64-GPU point runs out of framebuffer memory.",
        "Weak-scaling efficiency degrades (near-all-to-all communication).",
    ],
    "Figure 12": [
        "CuPy ~2.8x Legate on ML-10M (1 GPU each).",
        "CuPy fits ML-25M but at ~half the throughput of Legate on 2 GPUs.",
        "CuPy OOMs on ML-50M/100M; Legate scales by adding GPUs.",
        "Legate's minimum resources grow with the dataset (1/2/6/12 GPUs).",
    ],
}


def run_all(fast: bool = False, only: Optional[List[str]] = None) -> List[FigureResult]:
    """Run every figure experiment; reduced columns when fast=True."""
    from repro.harness.experiments import (
        fig8_spmv,
        fig9_cg,
        fig10_gmg,
        fig11_quantum,
        fig12_matfact,
    )

    columns = FAST_COLUMNS if fast else WEAK_SCALING_COLUMNS
    jobs = {
        "fig8": lambda: fig8_spmv.run(columns=columns),
        "fig9": lambda: fig9_cg.run(columns=columns),
        "fig10": lambda: fig10_gmg.run(columns=columns),
        "fig11": lambda: fig11_quantum.run(
            proc_counts=FAST_QUANTUM if fast else None
        ),
        "fig12": lambda: fig12_matfact.run(),
    }
    results = []
    for name, job in jobs.items():
        if only and name not in only:
            continue
        start = time.time()
        print(f"[report] running {name}...", file=sys.stderr, flush=True)
        result = job()
        print(
            f"[report] {name} done in {time.time() - start:.1f}s",
            file=sys.stderr,
            flush=True,
        )
        results.append(result)
    return results


KNOWN_DEVIATIONS = [
    "Absolute throughputs come from the roofline machine model, not "
    "Summit; only relative shapes are claimed.",
    "Fig. 9: Legate/PETSc = 0.83 at 1 GPU and 0.62 at 192 GPUs vs the "
    "paper's 0.85/0.65; Legate's efficiency declines slightly more "
    "gradually than the paper's sharp knee at 32 nodes.",
    "Fig. 10/11: the CuPy single-GPU advantage measures 1.3-1.4x vs the "
    "paper's 1.3x/1.4x; per-GPU problem sizes were calibrated to put the "
    "workloads in the same overhead-vs-kernel regime.",
    "Fig. 11: CPU weak-scaling degrades more steeply than the paper's "
    "curve (our bounding-rect halos fetch nearly the whole vector; the "
    "paper reports tens-to-hundreds of MB per peer).",
    "Fig. 12: minimum resources measure 1/2/3/6 GPUs vs the paper's "
    "1/2/6/12 — our even row-wise partitioning packs the expanded "
    "datasets roughly 2x tighter than the authors' configuration; the "
    "qualitative claim (CuPy stops at 25M, Legate scales by adding "
    "GPUs, monotone growth) holds.",
    "Fig. 12: Legate's ML-25M advantage over CuPy measures ~5x vs the "
    "paper's ~2x (the memory-pressure model is coarse).",
]


def write_experiments_md(results: List[FigureResult], path: str = "EXPERIMENTS.md") -> None:
    """Write EXPERIMENTS.md: tables, checks, deviations."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated with `python -m repro.harness.report`.  Numbers are",
        "*simulated* throughputs on the Summit-like machine model (see",
        "DESIGN.md): the claim checked here is the paper's **shape** —",
        "who wins, by roughly what factor, and where crossovers fall —",
        "not Summit's absolute numbers.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.figure}: {result.title}")
        lines.append("")
        lines.append("Paper's reported behaviour:")
        for expectation in PAPER_EXPECTATIONS.get(result.figure, []):
            lines.append(f"- {expectation}")
        lines.append("")
        lines.append("Measured (simulated) series:")
        lines.append("")
        lines.append("```")
        lines.append(result.format_table())
        lines.append("```")
        lines.append("")
        for check in shape_checks(result):
            lines.append(f"- {check}")
        lines.append("")
    lines.append("## Known deviations from the paper")
    lines.append("")
    for item in KNOWN_DEVIATIONS:
        lines.append(f"- {item}")
    lines.append("")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"[report] wrote {path}", file=sys.stderr)


def shape_checks(result: FigureResult) -> List[str]:
    """Human-readable pass/fail lines for the paper's shape claims."""
    checks: List[str] = []

    def check(label: str, ok: bool) -> None:
        checks.append(f"{'PASS' if ok else 'MISS'}: {label}")

    s = result.series
    if result.figure == "Figure 8":
        lg = s["Legate-GPU"]
        check("Legate-GPU weak-scales flat (last >= 0.9x first)",
              lg.last() >= 0.9 * lg.first())
        check("SciPy flat and lowest",
              s["SciPy"].last() == s["SciPy"].first()
              and s["SciPy"].first() < s["Legate-CPU"].first())
        check("Legate-GPU slightly below CuPy",
              0.7 * s["CuPy (1 GPU)"].first() < lg.first() < s["CuPy (1 GPU)"].first())
    elif result.figure == "Figure 9":
        r1 = result.ratio("Legate-GPU", "PETSc-GPU", 1)
        rN = result.ratio("Legate-GPU", "PETSc-GPU", s["Legate-GPU"].points[-1][0])
        check(f"Legate/PETSc ~0.85 at 1 GPU (measured {r1:.2f})",
              0.75 <= r1 <= 0.95)
        check(f"Legate/PETSc ~0.65 at scale (measured {rN:.2f})",
              0.5 <= rN <= 0.8)
        check("Legate-CPU >> SciPy (>4x)",
              s["Legate-CPU"].first() > 4 * s["SciPy"].first())
        check("PETSc-CPU slightly ahead of Legate-CPU",
              1.0 < s["PETSc-CPU"].first() / s["Legate-CPU"].first() < 1.6)
    elif result.figure == "Figure 10":
        ratio = s["CuPy (1 GPU)"].first() / s["Legate-GPU"].first()
        check(f"CuPy ~1.3x Legate-GPU at 1 GPU (measured {ratio:.2f})",
              1.1 <= ratio <= 1.8)
        check("Legate-CPU >> SciPy (>4x)",
              s["Legate-CPU"].first() > 4 * s["SciPy"].first())
        lg = s["Legate-GPU"]
        check("Legate-GPU efficiency degrades at scale",
              lg.last() < lg.at(3) if lg.at(3) else True)
    elif result.figure == "Figure 11":
        ratio = s["CuPy (1 GPU)"].first() / s["Legate-GPU"].first()
        check(f"CuPy ~1.4x Legate-GPU at 1 GPU (measured {ratio:.2f})",
              1.1 <= ratio <= 2.0)
        gpu4 = s["Legate-GPU"].at(4)
        cpu4 = s["Legate-CPU"].at(4)
        if gpu4 and cpu4:
            check("GPUs >> CPUs at 4 processors (NVLink)", gpu4 > 1.5 * cpu4)
        gpu16 = s["Legate-GPU"].at(16)
        cpu16 = s["Legate-CPU"].at(16)
        if gpu16 and cpu16:
            check("GPU sinks to/below CPU at 16 processors", gpu16 <= 1.25 * cpu16)
        check("64-GPU point out of memory",
              s["Legate-GPU"].points[-1][1] is None)
    elif result.figure == "Figure 12":
        cupy = s["CuPy (samples/s)"]
        legate = s["Legate Sparse (samples/s)"]
        res = s["Legate min resources (GPUs)"]
        r10 = cupy.at(0) / legate.at(0) if (cupy.at(0) and legate.at(0)) else None
        if r10:
            check(f"CuPy ~2.8x Legate on ML-10M (measured {r10:.2f})",
                  1.8 <= r10 <= 4.0)
        if cupy.at(1) and legate.at(1):
            check("Legate beats CuPy on ML-25M",
                  legate.at(1) > cupy.at(1))
        check("CuPy OOM on ML-50M and ML-100M",
              cupy.at(2) is None and cupy.at(3) is None)
        vals = [v for _, v in res.points]
        check("Legate min resources grow monotonically",
              all(a <= b for a, b in zip(vals, vals[1:]) if a and b))
    return checks


def main():  # pragma: no cover - CLI entry
    """CLI: run experiments, print tables/plots, write the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset, e.g. --only fig8 fig12")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--plot", action="store_true",
                        help="also render ASCII log-log charts")
    args = parser.parse_args()
    results = run_all(fast=args.fast, only=args.only)
    for result in results:
        print(result.format_table())
        for check in shape_checks(result):
            print("  " + check)
        if args.plot:
            from repro.harness.plotting import ascii_plot

            print()
            print(ascii_plot(result))
        print()
    write_experiments_md(results, args.out)


if __name__ == "__main__":  # pragma: no cover
    main()
