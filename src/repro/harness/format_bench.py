"""CSR-vs-advised-format measurement harness (auto-format selection).

Runs a power-law-skew SpMV workload (:mod:`repro.harness.skew`) twice —
once with plain CSR and once with ``RuntimeConfig.autoformat`` enabled,
which lets the runtime convert the operand to the statically selected
format (SELL-C-sigma on this workload) at its first launch — and
reports for each mode:

* modeled loop time and summed per-shard kernel seconds (the format
  selector's objective),
* the runtime's ``autoformat_log`` (what converted, to what, predicted
  win and break-even),
* host wall-clock for the timed section,
* a bitwise digest of the result vector.

:func:`run_all` packages the pair into the ``BENCH_format.json``
payload written by ``scripts/format.py``; ``benchmarks/test_format.py``
asserts the acceptance bar on the same dicts (a non-CSR recommendation,
strictly lower modeled compute, identical bits, and advisor/runtime
agreement on the chosen format).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Optional

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.analysis.formatsel import profile_matrix, select_format
from repro.harness.skew import power_law_csr
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

SKEW_N = 8192
SKEW_M = 4096
SKEW_SEED = 42
# Past the selector's predicted break-even (~70 SpMVs on this matrix),
# so the one-time conversion amortizes inside the timed loop.
SPMV_ITERS = 120


def _digest(arr) -> str:
    data = arr.to_numpy()
    return hashlib.sha256(data.tobytes()).hexdigest()


def bench_spmv(
    machine: Optional[Machine] = None,
    procs: int = 2,
    n: int = SKEW_N,
    m: int = SKEW_M,
    iters: int = SPMV_ITERS,
    autoformat: bool = False,
) -> Dict:
    """One skew-SpMV run; returns the metrics dict."""
    machine = machine or summit(nodes=1)
    scipy_mat = power_law_csr(n, m, seed=SKEW_SEED)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(autoformat=autoformat),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(scipy_mat)
        x = rnp.ones(m)
        y = A @ x  # warm-up: staging + the one-time auto-conversion
        t0 = rt.barrier()
        snap = rt.profiler.snapshot()
        wall0 = time.perf_counter()
        for _ in range(iters):
            y = A @ x
        t1 = rt.barrier()
        wall1 = time.perf_counter()
        delta = rt.profiler.since(snap)
        digest = _digest(y)
        conversions = [dict(entry) for entry in rt.autoformat_log]
    return {
        "autoformat": autoformat,
        "iters": iters,
        "rows": n,
        "cols": m,
        "nnz": int(scipy_mat.nnz),
        "modeled_time_s": t1 - t0,
        "modeled_kernel_seconds": delta.kernel_seconds,
        "tasks_launched": delta.tasks_launched,
        "host_wall_clock_s": wall1 - wall0,
        "conversions": conversions,
        "solution_sha256": digest,
    }


def static_advice(
    machine: Optional[Machine] = None,
    procs: int = 2,
    n: int = SKEW_N,
    m: int = SKEW_M,
) -> Dict:
    """The selector's static pick for the bench matrix (no runtime)."""
    machine = machine or summit(nodes=1)
    scope = machine.scope(ProcessorKind.GPU, procs)
    scipy_mat = power_law_csr(n, m, seed=SKEW_SEED)
    lengths = np.diff(scipy_mat.indptr).astype(np.int64)
    profile = profile_matrix(
        lengths, m, scipy_mat.dtype.itemsize, num_procs=procs
    )
    decision = select_format(profile, scope, RuntimeConfig.legate())
    best = decision.best
    return {
        "recommended_format": best.fmt,
        "csr_op_seconds": decision.csr_seconds,
        "best_op_seconds": best.op_seconds,
        "break_even_ops": best.break_even_ops,
        "row_skew": profile.row_max / max(profile.row_mean, 1e-300),
    }


def run_all(procs: int = 2) -> Dict:
    """The full BENCH_format payload: static advice plus both modes."""
    advice = static_advice(procs=procs)
    baseline = bench_spmv(procs=procs, autoformat=False)
    advised = bench_spmv(procs=procs, autoformat=True)
    converted = advised["conversions"]
    runtime_fmt = converted[0]["dst_fmt"] if converted else "csr"
    return {
        "benchmark": "auto-format selection (power-law skew SpMV)",
        "machine": f"summit:1 x {procs} GPUs (simulated)",
        "static_advice": advice,
        "csr": baseline,
        "advised": advised,
        "advised_format": runtime_fmt,
        "advisor_agrees": runtime_fmt == advice["recommended_format"],
        "kernel_seconds_ratio": (
            advised["modeled_kernel_seconds"]
            / baseline["modeled_kernel_seconds"]
        ),
        "bitwise_identical": (
            advised["solution_sha256"] == baseline["solution_sha256"]
        ),
    }
