"""Terminal plots of the weak-scaling figures (the artifact's plot.py).

Renders a :class:`~repro.harness.figures.FigureResult` as an ASCII
log-log chart, one glyph per series — good enough to eyeball the same
shapes the paper's matplotlib figures show.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.harness.figures import FigureResult

GLYPHS = "o*x+#@%&"


def _log(v: float) -> float:
    return math.log10(max(v, 1e-12))


def ascii_plot(
    result: FigureResult,
    width: int = 64,
    height: int = 20,
) -> str:
    """Log-log chart: x = processors, y = throughput."""
    points: List[Tuple[float, float, int]] = []
    names = list(result.series.keys())
    for sid, name in enumerate(names):
        for procs, value in result.series[name].points:
            if value is not None and value > 0:
                points.append((_log(procs), _log(value), sid))
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    xspan = max(xhi - xlo, 1e-9)
    yspan = max(yhi - ylo, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for x, y, sid in points:
        col = int((x - xlo) / xspan * (width - 1))
        row = height - 1 - int((y - ylo) / yspan * (height - 1))
        cell = grid[row][col]
        # Overlapping points from different series: show a collision mark.
        grid[row][col] = GLYPHS[sid % len(GLYPHS)] if cell == " " else "±"

    lines = [f"{result.figure}: {result.title}"]
    top_label = f"1e{yhi:.1f} it/s"
    bottom_label = f"1e{ylo:.1f}"
    for idx, row in enumerate(grid):
        prefix = top_label if idx == 0 else (bottom_label if idx == height - 1 else "")
        lines.append(f"{prefix:>12} |" + "".join(row))
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(
        " " * 13
        + f"{10**xlo:.0f} procs"
        + " " * max(1, width - 20)
        + f"{10**xhi:.0f} procs"
    )
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}" for i, name in enumerate(names)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def plot_all(results: List[FigureResult]) -> str:
    """ASCII charts for a list of figure results."""
    return "\n\n".join(ascii_plot(r) for r in results)
