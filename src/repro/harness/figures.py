"""Result containers + table formatting for the figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Series:
    """One line of a weak-scaling plot: (processor count, throughput)."""

    name: str
    points: List[Tuple[int, Optional[float]]] = field(default_factory=list)
    # Per-point annotations (e.g. the OutOfMemoryError account for an
    # OOM cell), keyed by processor count; rendered as table footnotes.
    details: Dict[int, str] = field(default_factory=dict)

    def add(
        self, procs: int, throughput: Optional[float], detail: Optional[str] = None
    ) -> None:
        """Append a (processors, throughput|None) point.

        ``detail`` attaches a per-point account — for OOM points, the
        exception's :meth:`~repro.legion.exceptions.OutOfMemoryError.describe`
        string naming the memory, region, rect and mapping task.
        """
        self.points.append((procs, throughput))
        if detail:
            self.details[procs] = detail

    def detail_at(self, procs: int) -> Optional[str]:
        """The annotation attached at a processor count, if any."""
        return self.details.get(procs)

    def at(self, procs: int) -> Optional[float]:
        """Throughput at a processor count (None if absent/OOM)."""
        for p, v in self.points:
            if p == procs:
                return v
        return None

    def first(self) -> Optional[float]:
        """First non-OOM value."""
        for _, v in self.points:
            if v is not None:
                return v
        return None

    def last(self) -> Optional[float]:
        """Last non-OOM value."""
        for _, v in reversed(self.points):
            if v is not None:
                return v
        return None


@dataclass
class FigureResult:
    """All series of one figure, with the paper's labels."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    columns: List[str]
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def series_for(self, name: str) -> Series:
        """Get-or-create a named series."""
        if name not in self.series:
            self.series[name] = Series(name)
        return self.series[name]

    def add_note(self, note: str) -> None:
        """Attach a footnote to the table."""
        self.notes.append(note)

    def format_table(self) -> str:
        """The figure as text: one row per system, one column per scale."""
        width = max(12, max((len(n) for n in self.series), default=12) + 1)
        colw = max(9, max(len(c) for c in self.columns) + 1)
        lines = [f"{self.figure}: {self.title}", f"({self.ylabel} vs {self.xlabel})"]
        header = " " * width + "".join(c.rjust(colw) for c in self.columns)
        lines.append(header)
        for name, series in self.series.items():
            cells = []
            values = {p: v for p, v in series.points}
            for idx, _ in enumerate(self.columns):
                if idx < len(series.points):
                    v = series.points[idx][1]
                    cells.append(("OOM" if v is None else f"{v:.3g}").rjust(colw))
                else:
                    cells.append("-".rjust(colw))
            lines.append(name.ljust(width) + "".join(cells))
        for name, series in self.series.items():
            for procs, detail in sorted(series.details.items()):
                lines.append(f"  {name} @ {procs}: {detail}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def ratio(self, a: str, b: str, procs: int) -> Optional[float]:
        """throughput(a) / throughput(b) at a processor count."""
        va = self.series[a].at(procs) if a in self.series else None
        vb = self.series[b].at(procs) if b in self.series else None
        if va is None or vb is None or vb == 0:
            return None
        return va / vb


def figure_main(run_fn, description: str, argv=None) -> None:
    """Shared CLI for the figure experiments: table + optional profiling.

    ``--columns N`` runs only the first N weak-scaling columns (quick
    smokes); ``--profile PATH`` records a timeline of every modeled
    activity and writes the Chrome trace to PATH, the native span log
    beside it (see :func:`repro.harness.config.run_profiled`), and an
    ASCII utilization/critical-path summary after the table.
    ``REPRO_PROFILE=1`` in the environment also enables recording —
    ``--profile`` is what additionally exports the artifacts.
    """
    import argparse

    from repro.harness.config import (
        WEAK_SCALING_COLUMNS,
        run_profiled,
        spans_artifact_path,
    )

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--columns", type=int, default=None, metavar="N",
        help="run only the first N weak-scaling columns",
    )
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="record a timeline; write the Chrome trace to PATH and the "
        "native span log beside it",
    )
    args = parser.parse_args(argv)
    columns = WEAK_SCALING_COLUMNS[: args.columns] if args.columns else None
    if args.profile:
        fig, timeline = run_profiled(run_fn, args.profile, columns=columns)
        print(fig.format_table())
        print()
        print(timeline.format_ascii())
        print(f"chrome trace: {args.profile}")
        print(f"span log:     {spans_artifact_path(args.profile)}")
    else:
        print(run_fn(columns=columns).format_table())
