"""Resilience measurement harness (deterministic chaos injection).

Runs the Fig. 9 CG solver loop fault-free to establish a baseline, then
re-runs it under three deterministic fault schedules
(:mod:`repro.legion.chaos`):

* ``transient_copy`` — every copy has a seeded probability of a
  transient link error, retried with exponential backoff;
* ``alloc_flaky`` — instance mappings hit seeded transient allocation
  failures;
* ``gpu_loss`` — a whole GPU framebuffer vanishes mid-solve; the
  runtime recovers from the last checkpoint epoch by journal replay.

Every run records for comparison: a bitwise digest of the solution
vector (required identical to the baseline — faults are a *timing*
event, never a numerics event), modeled solve time (the resilience
overhead), fault/retry/recovery counters, and the offline checker's
verdict over the recorded event log (zero violations required — the
recovery protocol must leave a provably coherent history).

:func:`run_all` packages everything into the ``BENCH_chaos.json``
payload written by ``scripts/chaos.py``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import repro.numeric as rnp
import repro.sparse as sp
from repro.analysis.checker import check_log
from repro.apps.poisson import poisson2d_scipy
from repro.legion.chaos import ChaosConfig, LossSchedule
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

CG_GRID = 64  # 4096-row 2-D Poisson, same workload as fusion_bench
CG_ITERS = 8
CHAOS_SEED = 7
COPY_FAULT_RATE = 0.05
ALLOC_FAULT_RATE = 0.05
CHECKPOINT_EVERY = 8  # task launches per checkpoint epoch
# Acceptance bar: modeled solve time under chaos may grow by at most
# this factor over the fault-free baseline (retries, backoff, recovery
# delay and replay all charge the simulated clock).
MAX_OVERHEAD_RATIO = 3.0


def _digest(arr) -> str:
    data = arr.to_numpy()
    return hashlib.sha256(data.tobytes()).hexdigest()


def _measure(
    machine: Machine,
    procs: int,
    chaos: Optional[ChaosConfig],
    grid: int = CG_GRID,
    iters: int = CG_ITERS,
) -> Dict:
    """One fig9-style CG run under a fault schedule; returns metrics.

    The runtime records an event log (``validate=True``) and the
    offline checker replays it afterwards: fault and recovery events
    must leave a history with zero coherence/ordering violations.
    """
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(chaos=chaos, validate=True),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(grid))
        b = rnp.ones(grid * grid)
        # Warm-up solve: staging + instance steady state.
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1)
        t0 = rt.barrier()
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=iters)
        t1 = rt.barrier()
        digest = _digest(x)
    prof = rt.profiler
    violations = check_log(rt.event_log)
    return {
        "chaos": "none" if chaos is None else repr(chaos),
        "iters": iters,
        "modeled_time_s": t1 - t0,
        "t_solve_start": t0,
        "t_solve_end": t1,
        "faults_injected": {k: v for k, v in sorted(prof.faults_injected.items()) if v},
        "retries": prof.retries,
        "backoff_seconds": prof.backoff_seconds,
        "evictions": prof.evictions,
        "spills": prof.spills,
        "checkpoints": prof.checkpoints,
        "checkpoint_bytes": prof.checkpoint_bytes,
        "tasks_reexecuted": prof.tasks_reexecuted,
        "checker_violations": [str(v) for v in violations],
        "solution_sha256": digest,
    }


def _compare(baseline: Dict, run: Dict) -> Dict:
    """Attach the acceptance-bar fields to one chaos run."""
    overhead = (
        run["modeled_time_s"] / baseline["modeled_time_s"]
        if baseline["modeled_time_s"] > 0
        else float("inf")
    )
    return {
        **run,
        "overhead_ratio": overhead,
        "bitwise_identical": run["solution_sha256"] == baseline["solution_sha256"],
        "checker_clean": not run["checker_violations"],
    }


def _scenarios(t_solve: Tuple[float, float]) -> Dict[str, ChaosConfig]:
    """The fault schedules, anchored to the baseline's solve window.

    Runs are deterministic, so the fault-free timeline predicts the
    chaos run's timeline up to the first fault — scheduling the GPU
    loss at the midpoint of the baseline's solve window guarantees it
    lands mid-solve.
    """
    t_mid = (t_solve[0] + t_solve[1]) / 2.0
    return {
        "transient_copy": ChaosConfig(
            seed=CHAOS_SEED, copy_fault_rate=COPY_FAULT_RATE
        ),
        "alloc_flaky": ChaosConfig(
            seed=CHAOS_SEED, alloc_fault_rate=ALLOC_FAULT_RATE
        ),
        "gpu_loss": ChaosConfig(
            seed=CHAOS_SEED,
            checkpoint_every=CHECKPOINT_EVERY,
            losses=(LossSchedule("gpu", 1, t_mid),),
        ),
    }


def run_all(procs: int = 2) -> Dict:
    """The full BENCH_chaos payload: baseline + every fault schedule."""
    machine = summit(nodes=1)
    baseline = _measure(machine, procs, None)
    scenarios = {}
    for name, chaos in _scenarios(
        (baseline["t_solve_start"], baseline["t_solve_end"])
    ).items():
        scenarios[name] = _compare(
            baseline, _measure(summit(nodes=1), procs, chaos)
        )
    return {
        "benchmark": "resilience (deterministic chaos, checkpoint/restart)",
        "machine": f"summit:1 x {procs} GPUs (simulated)",
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "baseline": baseline,
        "scenarios": scenarios,
    }
