"""Seeded power-law (skewed) sparse-matrix generator.

Scale-free graphs and preferential-attachment meshes give SpMV its
hardest row-length distributions: most rows hold a handful of nonzeros
while a heavy tail holds tens to hundreds.  CSR handles the skew but
pays per-row pointer traffic; ELL drowns in padding; SELL-C-sigma and
HYB are built for exactly this shape.  This module generates such
matrices deterministically (a seeded :class:`numpy.random.Generator`)
so the format benchmark (:mod:`repro.harness.format_bench`) and the
selector tests exercise the same bits on every run.

Row lengths are drawn from a *discrete* power law over the integer
support ``[min_len, max_len]`` with weights proportional to
``k**-exponent``.  The discrete support matters: many tied lengths let
a tile-spanning SELL sort pack slices nearly waste-free, which is the
regime where the static selector recommends leaving CSR.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sps

#: Defaults shared by the bench and the tests: ~25x max/mean skew.
DEFAULT_EXPONENT = 2.2
DEFAULT_MAX_LEN = 64

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def power_law_row_lengths(
    n: int,
    exponent: float = DEFAULT_EXPONENT,
    max_len: int = DEFAULT_MAX_LEN,
    min_len: int = 1,
    seed: SeedLike = 0,
) -> np.ndarray:
    """``n`` row lengths with ``P(len = k) ~ k**-exponent``.

    Lengths are clipped to ``[min_len, max_len]``; the distribution is
    sampled directly over that support (not rejection-clipped), so the
    tail mass piles at ``max_len`` only through the weight it earns.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if not (0 < min_len <= max_len):
        raise ValueError(f"need 0 < min_len <= max_len, got [{min_len}, {max_len}]")
    support = np.arange(min_len, max_len + 1, dtype=np.int64)
    weights = support.astype(np.float64) ** -float(exponent)
    weights /= weights.sum()
    return _rng(seed).choice(support, size=n, p=weights).astype(np.int64)


def power_law_csr(
    n: int,
    m: Optional[int] = None,
    exponent: float = DEFAULT_EXPONENT,
    max_len: int = DEFAULT_MAX_LEN,
    min_len: int = 1,
    seed: SeedLike = 0,
    dtype=np.float64,
) -> sps.csr_matrix:
    """A seeded ``n x m`` SciPy CSR matrix with power-law row lengths.

    Each row gets sorted, duplicate-free column indices (canonical CSR)
    and standard-normal values; complex dtypes get a distinct imaginary
    part so bitwise comparisons can't pass by accident.
    """
    m = n if m is None else m
    rng = _rng(seed)
    lengths = np.minimum(
        power_law_row_lengths(n, exponent, max_len, min_len, rng), m
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int64)
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        indices[lo:hi] = np.sort(rng.choice(m, hi - lo, replace=False))
    data = rng.standard_normal(nnz)
    if np.dtype(dtype).kind == "c":
        data = data + 1j * rng.standard_normal(nnz)
    mat = sps.csr_matrix(
        (data.astype(dtype), indices, indptr), shape=(n, m)
    )
    return mat
