"""Host-runtime overhead measurement (the fast path's acceptance bench).

The simulated runtime's *modeled* time is the paper's subject, but the
host process pays real Python seconds to produce it — per-launch
dependence analysis, mapping scans and coherence rebuilds whose cost
grows with the color count.  ``RuntimeConfig.fastpath`` (see
:mod:`repro.legion.fastpath`) attacks exactly that cost, and this
harness measures it:

* **scale runs** — the Fig. 9 CG inner loop at summit:64 and
  summit:1024 simulated GPUs, fast path on vs off, reporting host
  wall-clock seconds per 1 000 launches plus the profiler's host-phase
  breakdown (window flush, dependence, constraint solve, mapping,
  event advance) and cache hit/miss counters;
* **identity runs** — fig9 CG and fig10 GMG with ``validate=True`` in
  both modes: solution sha256, modeled time and offline-checker
  verdict must be identical, proving the fast path is bitwise-neutral.

``scripts/overhead.py`` writes the payload to
``BENCH_runtime_overhead.json`` and enforces the acceptance bars
(fast path strictly faster at both scales, identity runs clean).
"""

from __future__ import annotations

import hashlib
import math
import time
from typing import Dict, Optional

import repro.numeric as rnp
import repro.sparse as sp
from repro.analysis.checker import check_log
from repro.apps.poisson import poisson2d_scipy
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

CG_GRID = 64
CG_ITERS = 6
GMG_GRID = 63
GMG_ITERS = 4

# summit nodes carry 6 GPUs; round up so the scope can take `procs`.
GPUS_PER_NODE = 6

# Scale points: (procs, CG iterations).  The slow path's per-launch
# cost grows ~quadratically with colors, so the 1024-GPU point uses
# few iterations to keep the off-mode measurement affordable.
SCALES = ((64, 4), (1024, 2))


def _digest(arr) -> str:
    data = arr.to_numpy()
    return hashlib.sha256(data.tobytes()).hexdigest()


def _machine_for(procs: int) -> Machine:
    return summit(nodes=math.ceil(procs / GPUS_PER_NODE))


def _cg_state(grid: int):
    A = sp.csr_matrix(poisson2d_scipy(grid))
    b = rnp.ones(grid * grid)
    return A, b


def measure_scale(
    procs: int,
    fastpath: bool,
    iters: int,
    grid: int = CG_GRID,
) -> Dict:
    """Host seconds per 1k launches for CG at one machine scale."""
    rt = Runtime(
        _machine_for(procs).scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(fastpath=fastpath),
    )
    with runtime_scope(rt):
        A, b = _cg_state(grid)
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1)  # warm-up
        rt.barrier()
        snap = rt.profiler.snapshot()
        wall0 = time.perf_counter()
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=iters)
        t_model = rt.barrier()
        wall1 = time.perf_counter()
        delta = rt.profiler.since(snap)
        digest = _digest(x)
    wall = wall1 - wall0
    launches = delta.tasks_launched
    return {
        "machine": f"summit:{procs}",
        "procs": procs,
        "fastpath": fastpath,
        "iters": iters,
        "tasks_launched": launches,
        "host_wall_clock_s": wall,
        "host_s_per_1k_launches": wall / launches * 1000.0 if launches else 0.0,
        "modeled_time_s": t_model,
        "host_phases_s": {
            k: v for k, v in sorted(delta.host_phase_seconds.items()) if v
        },
        "fastpath_counters": {
            k: int(v) for k, v in sorted(delta.fastpath_counters.items()) if v
        },
        "solution_sha256": digest,
    }


def _scale_pair(procs: int, iters: int) -> Dict:
    on = measure_scale(procs, True, iters)
    off = measure_scale(procs, False, iters)
    return {
        "on": on,
        "off": off,
        "speedup": (
            off["host_s_per_1k_launches"] / on["host_s_per_1k_launches"]
            if on["host_s_per_1k_launches"]
            else float("inf")
        ),
        "bitwise_identical": (
            on["solution_sha256"] == off["solution_sha256"]
            and on["modeled_time_s"] == off["modeled_time_s"]
        ),
    }


def measure_identity(
    workload: str,
    fastpath: bool,
    procs: int = 2,
) -> Dict:
    """One validated fig9-CG or fig10-GMG run; checker must be clean."""
    rt = Runtime(
        summit(nodes=1).scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(fastpath=fastpath, validate=True),
    )
    with runtime_scope(rt):
        if workload == "fig9_cg":
            A, b = _cg_state(CG_GRID)
            state: tuple = (A, b, None)
            iters = CG_ITERS
        elif workload == "fig10_gmg":
            from repro.apps.multigrid import TwoLevelGMG

            A = sp.csr_matrix(poisson2d_scipy(GMG_GRID))
            b = rnp.ones(GMG_GRID * GMG_GRID)
            gmg = TwoLevelGMG(A, GMG_GRID, coarse_rtol=0.0, coarse_maxiter=8)
            state = (A, b, gmg.as_preconditioner())
            iters = GMG_ITERS
        else:  # pragma: no cover - caller error
            raise ValueError(f"unknown workload {workload!r}")
        A, b, M = state
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1, M=M)  # warm-up
        t0 = rt.barrier()
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=iters, M=M)
        t1 = rt.barrier()
        digest = _digest(x)
    violations = check_log(rt.event_log)
    return {
        "workload": workload,
        "fastpath": fastpath,
        "iters": iters,
        "modeled_time_s": t1 - t0,
        "solution_sha256": digest,
        "checker_violations": [str(v) for v in violations],
        "checker_clean": not violations,
    }


def _identity_pair(workload: str) -> Dict:
    on = measure_identity(workload, True)
    off = measure_identity(workload, False)
    return {
        "on": on,
        "off": off,
        "bitwise_identical": (
            on["solution_sha256"] == off["solution_sha256"]
            and on["modeled_time_s"] == off["modeled_time_s"]
        ),
        "checker_clean": on["checker_clean"] and off["checker_clean"],
    }


def run_all(scales=SCALES) -> Dict:
    """The full BENCH_runtime_overhead payload."""
    payload: Dict = {
        "benchmark": "host-runtime fast path (batched analysis + caches)",
        "metric": "host wall-clock seconds per 1000 task launches",
        "scales": {},
        "identity": {},
    }
    for procs, iters in scales:
        payload["scales"][f"summit:{procs}"] = _scale_pair(procs, iters)
    for workload in ("fig9_cg", "fig10_gmg"):
        payload["identity"][workload] = _identity_pair(workload)
    payload["all_faster"] = all(
        pair["speedup"] > 1.0 for pair in payload["scales"].values()
    )
    payload["all_identical"] = all(
        pair["bitwise_identical"] for pair in payload["scales"].values()
    ) and all(
        pair["bitwise_identical"] and pair["checker_clean"]
        for pair in payload["identity"].values()
    )
    return payload


def main(output: Optional[str] = None) -> Dict:  # pragma: no cover - CLI
    import json

    payload = run_all()
    text = json.dumps(payload, indent=2, sort_keys=True)
    if output:
        with open(output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return payload


if __name__ == "__main__":  # pragma: no cover
    main()
