"""Fused-vs-unfused measurement harness (task and kernel fusion).

Runs the two launch-overhead-bound solver workloads from the paper —
the Fig. 9 CG inner loop and the Fig. 10 GMG V-cycle PCG — in three
configurations:

* **merged** — deferred fusion window on AND kernel fusion on (the
  ``legate`` default): merge-safe groups execute as one generated loop
  nest with one cost entry;
* **replay** — fusion window on, ``kernel_fusion=False``: fused groups
  replay their sub-kernels in issue order (PR 3 behaviour);
* **unfused** — ``fusion=False``: one launch per operation.

and reports for each mode modeled solve time, issue-clock launch
overhead, modeled compute seconds (the profiler's ``kernel_seconds``),
launch / fusion / merge counters, copy traffic, host wall-clock for
the timed section, and a bitwise digest of the solution vector.

:func:`run_all` packages both workloads into the ``BENCH_fusion.json``
payload written by ``scripts/bench.py``; ``benchmarks/test_fusion.py``
asserts the acceptance bars on the same dicts (>= 30 % fewer launches,
strictly lower modeled launch overhead, merged modeled compute strictly
below replay, identical bits across all three modes).
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, Optional

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.poisson import poisson2d_scipy
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

CG_GRID = 64  # 4096-row 2-D Poisson: small tasks, overhead-bound
CG_ITERS = 6
GMG_GRID = 63  # odd: the 2-level hierarchy coarsens (k-1)/2
GMG_ITERS = 4


def _digest(arr) -> str:
    data = arr.to_numpy()
    return hashlib.sha256(data.tobytes()).hexdigest()


def _measure(
    machine: Machine,
    procs: int,
    fusion: bool,
    setup: Callable,
    solve: Callable,
    iters: int,
    kernel_fusion: bool = False,
) -> Dict:
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(fusion=fusion, kernel_fusion=kernel_fusion),
    )
    with runtime_scope(rt):
        state = setup()
        solve(state, 1)  # warm-up: staging + instance steady state
        t0 = rt.barrier()
        snap = rt.profiler.snapshot()
        wall0 = time.perf_counter()
        x = solve(state, iters)
        t1 = rt.barrier()
        wall1 = time.perf_counter()
        delta = rt.profiler.since(snap)
        digest = _digest(x)
    return {
        "fusion": fusion,
        "kernel_fusion": kernel_fusion,
        "iters": iters,
        "modeled_time_s": t1 - t0,
        "modeled_iters_per_s": iters / (t1 - t0),
        "modeled_launch_overhead_s": delta.launch_overhead_seconds,
        "modeled_compute_s": delta.kernel_seconds,
        "tasks_launched": delta.tasks_launched,
        "fused_tasks": delta.fused_tasks,
        "tasks_fused_away": delta.tasks_fused_away,
        "regions_elided": delta.regions_elided,
        "kernel_merges": delta.kernel_merges,
        "nest_temps_eliminated": delta.nest_temps_eliminated,
        "copy_bytes": {k: int(v) for k, v in delta.copy_bytes.items() if v},
        "host_wall_clock_s": wall1 - wall0,
        "solution_sha256": digest,
    }


def bench_cg(
    machine: Optional[Machine] = None,
    procs: int = 2,
    grid: int = CG_GRID,
    iters: int = CG_ITERS,
    fusion: bool = True,
    kernel_fusion: bool = False,
) -> Dict:
    """One fig9-style CG run; returns the metrics dict."""
    machine = machine or summit(nodes=1)

    def setup():
        A = sp.csr_matrix(poisson2d_scipy(grid))
        b = rnp.ones(grid * grid)
        return A, b

    def solve(state, maxiter):
        A, b = state
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=maxiter)
        return x

    return _measure(
        machine, procs, fusion, setup, solve, iters,
        kernel_fusion=kernel_fusion,
    )


def bench_gmg(
    machine: Optional[Machine] = None,
    procs: int = 2,
    grid: int = GMG_GRID,
    iters: int = GMG_ITERS,
    fusion: bool = True,
    kernel_fusion: bool = False,
) -> Dict:
    """One fig10-style GMG-preconditioned CG run; returns metrics."""
    from repro.apps.multigrid import TwoLevelGMG

    machine = machine or summit(nodes=1)
    if grid % 2 == 0:
        raise ValueError("GMG grid side must be odd")

    def setup():
        A = sp.csr_matrix(poisson2d_scipy(grid))
        b = rnp.ones(grid * grid)
        gmg = TwoLevelGMG(A, grid, coarse_rtol=0.0, coarse_maxiter=8)
        return A, b, gmg.as_preconditioner()

    def solve(state, maxiter):
        A, b, M = state
        x, _info = sp.linalg.cg(A, b, rtol=0.0, maxiter=maxiter, M=M)
        return x

    return _measure(
        machine, procs, fusion, setup, solve, iters,
        kernel_fusion=kernel_fusion,
    )


def _pair(runner, **kwargs) -> Dict:
    fused = runner(fusion=True, kernel_fusion=True, **kwargs)
    replay = runner(fusion=True, kernel_fusion=False, **kwargs)
    unfused = runner(fusion=False, kernel_fusion=False, **kwargs)
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    return {
        # "fused" is the full default stack: window + merged nests.
        "fused": fused,
        "replay": replay,
        "unfused": unfused,
        "launches_saved_fraction": saved,
        "overhead_ratio": (
            fused["modeled_launch_overhead_s"]
            / unfused["modeled_launch_overhead_s"]
        ),
        # Kernel fusion's own win: merged nests vs issue-order replay
        # of the *same* fused groups.  Deduplicated reads and
        # never-materialized temporaries make this strictly < 1.
        "compute_ratio": (
            fused["modeled_compute_s"] / replay["modeled_compute_s"]
        ),
        "bitwise_identical": (
            fused["solution_sha256"]
            == replay["solution_sha256"]
            == unfused["solution_sha256"]
        ),
    }


def run_all(procs: int = 2) -> Dict:
    """The full BENCH_fusion payload: both workloads, all three modes."""
    return {
        "benchmark": "automatic task fusion (deferred launch window)",
        "machine": f"summit:1 x {procs} GPUs (simulated)",
        "fig9_cg": _pair(bench_cg, procs=procs),
        "fig10_gmg": _pair(bench_gmg, procs=procs),
    }
