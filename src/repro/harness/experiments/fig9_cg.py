"""Figure 9: weak scaling of a Conjugate Gradient solver (2-D Poisson).

The paper's outcomes:

* CPU: Legate ≫ SciPy (multithreaded sockets), PETSc slightly ahead of
  Legate (Legion reserves cores for runtime work);
* GPU: Legate ≈ 85 % of PETSc at one GPU, weak-scales well but falls
  off from ~32 nodes as fast kernels expose Legion's allreduce
  overheads, ending at ≈ 65 % of PETSc at 192 GPUs;
* CuPy matches the single-GPU systems but cannot scale.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.poisson import poisson2d_scipy
from repro.baselines.petsc import KSP, MatMPIAIJ, MPISim, PetscVec
from repro.harness.config import (
    WEAK_SCALING_COLUMNS,
    column_label,
    nodes_needed,
    paper_legate,
)
from repro.harness.figures import FigureResult
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

# Full-scale: a 5100^2 grid per GPU (~26M rows), 3x that per socket.
PER_GPU_N = 26_000_000
PER_SOCKET_N = 3 * PER_GPU_N
ITERS = 6
BUILD_CAP = 250_000


def _build_grid(n_full: int, procs: int) -> int:
    """Grid side k for the reduced build (k^2 rows, >= 512 rows/proc)."""
    target = min(n_full, max(procs * 512, BUILD_CAP))
    return max(8, int(math.sqrt(target)))


def _legate_cg(
    machine: Machine,
    kind: ProcessorKind,
    procs: int,
    n_full: int,
    config_factory,
    iters: int = ITERS,
) -> float:
    k = _build_grid(n_full, procs)
    n_build = k * k
    k_full = math.sqrt(n_full)
    rt = Runtime(
        machine.scope(kind, procs),
        config_factory(data_scale=n_full / n_build, comm_scale=k_full / k),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(k))
        b = rnp.ones(n_build)
        # Warm-up solve: staging + instance steady state.
        sp.linalg.cg(A, b, rtol=0.0, maxiter=2)
        t0 = rt.barrier()
        sp.linalg.cg(A, b, rtol=0.0, maxiter=iters)
        t1 = rt.barrier()
    return iters / (t1 - t0)


def _petsc_cg(
    machine: Machine, kind: ProcessorKind, procs: int, n_full: int, iters: int = ITERS
) -> float:
    k = _build_grid(n_full, procs)
    n_build = k * k
    sim = MPISim(
        machine.scope(kind, procs),
        data_scale=n_full / n_build,
        comm_scale=math.sqrt(n_full) / k,
    )
    A = MatMPIAIJ(sim, poisson2d_scipy(k))
    b = PetscVec(sim, np.ones(n_build))
    ksp = KSP(sim, A)
    ksp.solve_cg(b, rtol=0.0, maxiter=2)
    t0 = sim.barrier()
    ksp.solve_cg(b, rtol=0.0, maxiter=iters)
    t1 = sim.barrier()
    return iters / (t1 - t0)


def run(machine: Optional[Machine] = None, columns=None) -> FigureResult:
    """Regenerate the Fig. 9 CG solver figure as a FigureResult."""
    columns = columns or WEAK_SCALING_COLUMNS
    machine = machine or summit(nodes=nodes_needed(columns))
    fig = FigureResult(
        figure="Figure 9",
        title="Conjugate Gradient Solver (weak scaling, 2-D Poisson)",
        xlabel="Sockets/GPUs",
        ylabel="throughput (iterations/s)",
        columns=[column_label(c) for c in columns],
    )
    for sockets, gpus in columns:
        fig.series_for("Legate-GPU").add(
            gpus,
            _legate_cg(
                machine, ProcessorKind.GPU, gpus, gpus * PER_GPU_N,
                paper_legate,
            ),
        )
        fig.series_for("CuPy (1 GPU)").add(
            gpus,
            _legate_cg(machine, ProcessorKind.GPU, 1, PER_GPU_N, RuntimeConfig.cupy),
        )
        fig.series_for("PETSc-GPU").add(
            gpus, _petsc_cg(machine, ProcessorKind.GPU, gpus, gpus * PER_GPU_N)
        )
        fig.series_for("Legate-CPU").add(
            sockets,
            _legate_cg(
                machine, ProcessorKind.CPU_SOCKET, sockets,
                sockets * PER_SOCKET_N, paper_legate,
            ),
        )
        fig.series_for("SciPy").add(
            sockets,
            _legate_cg(
                machine, ProcessorKind.CPU_CORE, 1, PER_SOCKET_N, RuntimeConfig.scipy
            ),
        )
        fig.series_for("PETSc-CPU").add(
            sockets,
            _petsc_cg(machine, ProcessorKind.CPU_SOCKET, sockets, sockets * PER_SOCKET_N),
        )
    return fig


def main(argv=None):  # pragma: no cover - CLI entry
    """CLI: print the table; --profile exports timeline artifacts."""
    from repro.harness.figures import figure_main

    figure_main(run, "Regenerate Fig. 9 (CG weak scaling).", argv)


if __name__ == "__main__":  # pragma: no cover
    main()
