"""Figure 11: weak scaling of the Rydberg quantum simulation.

Outcomes to reproduce (paper §6.1):

* Legate (CPU and GPU) ≫ SciPy; CuPy ≈ 1.4x Legate at one GPU (the RK
  stages launch many small tasks);
* weak-scaling efficiency degrades with processor count — the wide-band
  Hamiltonian makes every processor exchange data with most others;
* 1-4 GPUs beat CPUs soundly (NVLink); beyond one node the GPU series
  sinks to and below the CPU series — at 16 processors the 4-GPU-per-
  node configuration has *half* the NIC bandwidth per byte exchanged of
  16 CPU sockets spread over 8 nodes;
* the 64-GPU run exhausts framebuffer memory (halo regions make memory
  scale imperfectly).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.rydberg import blockade_state_count, rydberg_hamiltonian_scipy
from repro.harness.config import paper_legate
from repro.harness.figures import FigureResult
from repro.integrate import solve_ivp
from repro.legion import OutOfMemoryError
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

PROC_COUNTS = [1, 2, 4, 8, 16, 32, 64]
GPUS_PER_NODE = 4  # the paper uses 4 of Summit's 6 GPUs for this app
DIM_PER_PROC = 400_000  # full-scale quantum amplitudes per processor
STEPS = 2


def _full_dim(procs: int) -> int:
    """Smallest blockade space >= procs * DIM_PER_PROC.

    Like the paper, the application cannot pick arbitrary sizes — the
    state space is a Fibonacci number of the atom count, so the problem
    can only approximately double (§6.1).
    """
    n = 8
    while blockade_state_count(n) < procs * DIM_PER_PROC:
        n += 1
    return blockade_state_count(n)


def _build_atoms(procs: int) -> int:
    """Smallest chain whose blockade space has >= 512 states/processor."""
    target = max(512 * procs, 20_000)
    n = 8
    while blockade_state_count(n) < target:
        n += 1
    return n


def _quantum_throughput(
    machine: Machine,
    kind: ProcessorKind,
    procs: int,
    dim_full: int,
    config_factory,
    per_node: Optional[int] = None,
    steps: int = STEPS,
) -> Tuple[Optional[float], Optional[str]]:
    """Returns ``(throughput, oom_detail)``: on OOM the throughput is
    None and the detail names the memory, region, rect and task that
    overflowed (surfaced as a table footnote)."""
    n_atoms = _build_atoms(procs)
    dim_build = blockade_state_count(n_atoms)
    rt = Runtime(
        machine.scope(kind, procs, per_node=per_node),
        config_factory(data_scale=dim_full / dim_build),
    )
    try:
        with runtime_scope(rt):
            H = sp.csr_matrix(rydberg_hamiltonian_scipy(n_atoms))
            psi = np.zeros(dim_build, dtype=np.complex128)
            psi[0] = 1.0
            y = rnp.array(psi)
            rhs = lambda t, v: (H @ v) * (-1j)  # noqa: E731
            # One warm-up step to reach instance steady state.
            res = solve_ivp(rhs, (0.0, 0.01), y, method="GBS8", step=0.01)
            y = res.y
            t0 = rt.barrier()
            solve_ivp(rhs, (0.0, 0.01 * steps), y, method="GBS8", step=0.01)
            t1 = rt.barrier()
        return steps / (t1 - t0), None
    except OutOfMemoryError as exc:
        return None, exc.describe()


def run(machine: Optional[Machine] = None, proc_counts: Optional[List[int]] = None) -> FigureResult:
    """Regenerate the Fig. 11 quantum figure as a FigureResult."""
    proc_counts = proc_counts or PROC_COUNTS
    # Enough nodes for the largest column as *sockets* (2/node) and as
    # GPUs (4 of 6 used per node).
    machine = machine or summit(nodes=max(1, max(proc_counts) // 2))
    fig = FigureResult(
        figure="Figure 11",
        title="Quantum Simulation (weak scaling, Rydberg chain, RK8)",
        xlabel="Sockets or GPUs",
        ylabel="throughput (iterations/s)",
        columns=[str(p) for p in proc_counts],
    )
    for procs in proc_counts:
        dim_full = _full_dim(procs)
        fig.series_for("Legate-GPU").add(
            procs,
            *_quantum_throughput(
                machine, ProcessorKind.GPU, procs, dim_full,
                paper_legate, per_node=GPUS_PER_NODE,
            ),
        )
        fig.series_for("Legate-CPU").add(
            procs,
            *_quantum_throughput(
                machine, ProcessorKind.CPU_SOCKET, procs, dim_full,
                paper_legate,
            ),
        )
        fig.series_for("CuPy (1 GPU)").add(
            procs,
            *_quantum_throughput(
                machine, ProcessorKind.GPU, 1, _full_dim(1), RuntimeConfig.cupy
            ),
        )
        fig.series_for("SciPy").add(
            procs,
            *_quantum_throughput(
                machine, ProcessorKind.CPU_CORE, 1, _full_dim(1),
                RuntimeConfig.scipy,
            ),
        )
    if fig.series_for("Legate-GPU").points[-1][1] is None:
        fig.add_note(
            "Legate-GPU at 64 GPUs ran out of framebuffer memory "
            "(halo regions grow with the machine; paper §6.1)."
        )
    return fig


def main():  # pragma: no cover - CLI entry
    """CLI: print the regenerated table."""
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
