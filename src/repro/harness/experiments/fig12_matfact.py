"""Figure 12 (table): sparse matrix factorization on MovieLens data.

Outcomes to reproduce:

* CuPy is ~2.8x faster than Legate on ML-10M (small tasks expose Legate
  overheads) but fits only the 10M and 25M datasets in one GPU;
* on ML-25M CuPy limps near the memory limit (its inefficient SDDMM
  dominates) and Legate on 2 GPUs roughly doubles its throughput;
* Legate scales to ML-50M and ML-100M by adding GPUs — the minimum
  resource count grows with the dataset, and the 100M run pays for
  cross-node all-to-all traffic (dense transposes in the gradient).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.matfact import MatrixFactorizationModel, sgd_epoch
from repro.apps.movielens import ML_SPECS, load_dataset
from repro.harness.config import paper_legate
from repro.harness.figures import FigureResult
from repro.legion import OutOfMemoryError
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

DATASETS = ["ml-10m", "ml-25m", "ml-50m", "ml-100m"]
GPU_CANDIDATES = [1, 2, 3, 6, 12, 18, 24]
BUILD_SCALE = 0.05  # host-RAM build fraction; data_scale compensates
K = 32
BATCH_FULL = 32_768
BATCHES = 3
# Device bytes per rating at full scale: train arrays, CSR + transpose
# forms, shuffle buffer and gradient temporaries (calibrated so ML-25M
# sits near one V100's limit, as the paper reports).
STORAGE_FACTOR = 600


@dataclass
class TableRow:
    """One dataset row of the Fig. 12 table."""
    dataset: str
    cupy_throughput: Optional[float]
    legate_throughput: Optional[float]
    min_gpus: Optional[int]


def _try_run(
    machine: Machine,
    config_factory,
    gpus: int,
    dataset: str,
    seed: int = 0,
) -> Tuple[Optional[float], Optional[str]]:
    """Returns ``(samples/second, oom_detail)`` for one configuration.

    On OOM the throughput is None and the detail names the memory,
    region, rect and task that overflowed (surfaced as a footnote)."""
    (users, items, ratings), spec = load_dataset(dataset, scale=BUILD_SCALE)
    n_users = int(users.max()) + 1
    n_items = int(items.max()) + 1
    data_scale = spec.n_ratings / len(ratings)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, gpus),
        config_factory(data_scale=data_scale),
    )
    # Different axes shrink by different factors in the reduced build:
    # ratings by `scale`, user/item dimensions by sqrt(scale).  Register
    # the magnification of factor-shaped regions (U, V, biases, grads).
    rt.mem_scale_by_extent[n_users] = spec.n_users / n_users
    rt.mem_scale_by_extent[n_items] = spec.n_items / n_items
    batch_build = max(256, int(BATCH_FULL / data_scale))
    try:
        with runtime_scope(rt):
            model = MatrixFactorizationModel(
                n_users, n_items, k=K, mu=float(ratings.mean())
            )
            # Model the resident training data (ratings live on-device
            # across the epoch, in several formats).  The array is tiled
            # across the GPUs; the runtime magnifies its footprint by
            # data_scale, giving n_ratings * STORAGE_FACTOR real bytes.
            resident = rnp.ones(max(1, int(len(ratings) * STORAGE_FACTOR / 8)))
            rt.barrier()
            rng = np.random.default_rng(seed)
            # Warm-up batch.
            sgd_epoch(model, users, items, ratings, batch_size=batch_build,
                      rng=rng, max_batches=1)
            t0 = rt.barrier()
            samples, _ = sgd_epoch(
                model, users, items, ratings, batch_size=batch_build,
                rng=rng, max_batches=BATCHES,
            )
            t1 = rt.barrier()
        if t1 <= t0:
            return None, None
        return samples * data_scale / (t1 - t0), None
    except OutOfMemoryError as exc:
        return None, exc.describe()


def run(machine: Optional[Machine] = None, datasets: Optional[List[str]] = None) -> FigureResult:
    """Regenerate the Fig. 12 factorization table as a FigureResult."""
    datasets = datasets or DATASETS
    machine = machine or summit(nodes=4)
    fig = FigureResult(
        figure="Figure 12",
        title="Sparse Matrix Factorization Performance",
        xlabel="dataset",
        ylabel="samples/second",
        columns=[ML_SPECS[d].name.upper() for d in datasets],
    )
    cupy = fig.series_for("CuPy (samples/s)")
    legate = fig.series_for("Legate Sparse (samples/s)")
    resources = fig.series_for("Legate min resources (GPUs)")
    for idx, dataset in enumerate(datasets):
        cupy.add(idx, *_try_run(machine, RuntimeConfig.cupy, 1, dataset))
        best = None
        detail = None
        for gpus in GPU_CANDIDATES:
            throughput, detail = _try_run(machine, paper_legate, gpus, dataset)
            if throughput is not None:
                best = (gpus, throughput)
                break
        if best is None:
            legate.add(idx, None, detail)
            resources.add(idx, None)
        else:
            legate.add(idx, best[1])
            resources.add(idx, float(best[0]))
    return fig


def main():  # pragma: no cover - CLI entry
    """CLI: print the regenerated table."""
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
