"""Figure 10: weak scaling of the geometric multigrid solver.

No distributed reference exists (the paper compares only against SciPy
and CuPy).  Outcomes to reproduce:

* Legate-CPU ≫ SciPy, with good weak scaling;
* CuPy ≈ 1.3x Legate-GPU at one GPU — the V-cycle launches many tasks
  small enough to expose Legate's task-launching and metadata overheads;
* Legate-GPU weak-scales at first, then degrades as the fast GPU kernels
  expose runtime overheads.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.multigrid import TwoLevelGMG
from repro.apps.poisson import poisson2d_scipy
from repro.harness.config import (
    WEAK_SCALING_COLUMNS,
    column_label,
    nodes_needed,
    paper_legate,
)
from repro.harness.figures import FigureResult
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

# Smaller per-GPU grids than Fig. 9: the V-cycle's coarse-level tasks
# must be small enough to expose runtime overheads (paper §6.1).
PER_GPU_N = 8_000_000
PER_SOCKET_N = 3 * PER_GPU_N
ITERS = 4
BUILD_CAP = 100_000


def _build_grid(n_full: int, procs: int) -> int:
    target = min(n_full, max(procs * 512, BUILD_CAP))
    k = max(9, int(math.sqrt(target)))
    return k if k % 2 == 1 else k + 1  # the 2-level hierarchy needs odd k


def _legate_gmg(
    machine: Machine,
    kind: ProcessorKind,
    procs: int,
    n_full: int,
    config_factory,
    iters: int = ITERS,
) -> float:
    k = _build_grid(n_full, procs)
    n_build = k * k
    rt = Runtime(
        machine.scope(kind, procs),
        config_factory(
            data_scale=n_full / n_build,
            comm_scale=math.sqrt(n_full) / k,
        ),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(k))
        b = rnp.ones(n_build)
        gmg = TwoLevelGMG(A, k, coarse_rtol=0.0, coarse_maxiter=8)
        M = gmg.as_preconditioner()
        # Warm-up: setup (Galerkin SpGEMMs) + staging, then one PCG iter.
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1, M=M)
        t0 = rt.barrier()
        sp.linalg.cg(A, b, rtol=0.0, maxiter=iters, M=M)
        t1 = rt.barrier()
    return iters / (t1 - t0)


def run(machine: Optional[Machine] = None, columns=None) -> FigureResult:
    """Regenerate the Fig. 10 multigrid figure as a FigureResult."""
    columns = columns or WEAK_SCALING_COLUMNS
    machine = machine or summit(nodes=nodes_needed(columns))
    fig = FigureResult(
        figure="Figure 10",
        title="Geometric Multi-Grid Solver (weak scaling, 2-level V-cycle PCG)",
        xlabel="Sockets/GPUs",
        ylabel="throughput (iterations/s)",
        columns=[column_label(c) for c in columns],
    )
    for sockets, gpus in columns:
        fig.series_for("Legate-GPU").add(
            gpus,
            _legate_gmg(
                machine, ProcessorKind.GPU, gpus, gpus * PER_GPU_N,
                paper_legate,
            ),
        )
        fig.series_for("CuPy (1 GPU)").add(
            gpus,
            _legate_gmg(machine, ProcessorKind.GPU, 1, PER_GPU_N, RuntimeConfig.cupy),
        )
        fig.series_for("Legate-CPU").add(
            sockets,
            _legate_gmg(
                machine, ProcessorKind.CPU_SOCKET, sockets,
                sockets * PER_SOCKET_N, paper_legate,
            ),
        )
        fig.series_for("SciPy").add(
            sockets,
            _legate_gmg(
                machine, ProcessorKind.CPU_CORE, 1, PER_SOCKET_N, RuntimeConfig.scipy
            ),
        )
    return fig


def main(argv=None):  # pragma: no cover - CLI entry
    """CLI: print the table; --profile exports timeline artifacts."""
    from repro.harness.figures import figure_main

    figure_main(run, "Regenerate Fig. 10 (GMG weak scaling).", argv)


if __name__ == "__main__":  # pragma: no cover
    main()
