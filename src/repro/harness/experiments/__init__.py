"""One module per paper artifact: Figs. 8-11 and the Fig. 12 table."""

from repro.harness.experiments import (
    fig8_spmv,
    fig9_cg,
    fig10_gmg,
    fig11_quantum,
    fig12_matfact,
)

ALL_EXPERIMENTS = {
    "fig8": fig8_spmv,
    "fig9": fig9_cg,
    "fig10": fig10_gmg,
    "fig11": fig11_quantum,
    "fig12": fig12_matfact,
}

__all__ = ["ALL_EXPERIMENTS"]
