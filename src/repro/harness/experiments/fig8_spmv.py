"""Figure 8: weak scaling of an SpMV microbenchmark on banded matrices.

Trivially parallel (halo = band width); the paper's outcomes:

* Legate and PETSc weak-scale essentially flat on CPUs and GPUs;
* SciPy is flat and lowest (single-threaded, no scaling);
* Legate sits slightly below CuPy/PETSc on GPUs — the cost of reshaping
  its global-format local pieces for cuSPARSE (§3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.baselines.petsc import KSP, MatMPIAIJ, MPISim
from repro.harness.config import (
    WEAK_SCALING_COLUMNS,
    column_label,
    nodes_needed,
    paper_legate,
    reduced_size,
)
from repro.harness.figures import FigureResult
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import Machine, ProcessorKind, summit

# Full-scale problem: rows per processor (weak scaling).
PER_GPU_ROWS = 25_000_000
PER_SOCKET_ROWS = 3 * PER_GPU_ROWS
BAND = 1  # tridiagonal band
ITERS = 8


def banded_scipy(n: int, band: int = BAND) -> sps.csr_matrix:
    """A banded test matrix (band diagonals of ones)."""
    diags = [np.full(n - abs(k), 1.0) for k in range(-band, band + 1)]
    return sps.diags(diags, list(range(-band, band + 1))).tocsr()


def _legate_throughput(
    machine: Machine,
    kind: ProcessorKind,
    procs: int,
    n_full: int,
    config_factory,
    iters: int = ITERS,
) -> float:
    n_build = reduced_size(n_full, procs)
    rt = Runtime(
        machine.scope(kind, procs),
        config_factory(data_scale=n_full / n_build),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(banded_scipy(n_build))
        x = rnp.ones(n_build)
        for _ in range(2):  # warm-up: staging + steady-state instances
            y = A @ x
        t0 = rt.barrier()
        for _ in range(iters):
            y = A @ x
        t1 = rt.barrier()
    return iters / (t1 - t0)


def _petsc_throughput(
    machine: Machine, kind: ProcessorKind, procs: int, n_full: int, iters: int = ITERS
) -> float:
    n_build = reduced_size(n_full, procs)
    sim = MPISim(machine.scope(kind, procs), data_scale=n_full / n_build)
    A = MatMPIAIJ(sim, banded_scipy(n_build))
    from repro.baselines.petsc import PetscVec

    x = PetscVec(sim, np.ones(n_build))
    y = A.mult(x)
    t0 = sim.barrier()
    for _ in range(iters):
        y = A.mult(x)
    t1 = sim.barrier()
    return iters / (t1 - t0)


def run(machine: Optional[Machine] = None, columns=None) -> FigureResult:
    """Regenerate the Fig. 8 SpMV microbenchmark as a FigureResult."""
    columns = columns or WEAK_SCALING_COLUMNS
    machine = machine or summit(nodes=nodes_needed(columns))
    fig = FigureResult(
        figure="Figure 8",
        title="SpMV Microbenchmark (weak scaling, banded matrix)",
        xlabel="Sockets/GPUs",
        ylabel="throughput (iterations/s)",
        columns=[column_label(c) for c in columns],
    )
    for sockets, gpus in columns:
        fig.series_for("Legate-GPU").add(
            gpus,
            _legate_throughput(
                machine, ProcessorKind.GPU, gpus, gpus * PER_GPU_ROWS,
                paper_legate,
            ),
        )
        fig.series_for("CuPy (1 GPU)").add(
            gpus,
            _legate_throughput(
                machine, ProcessorKind.GPU, 1, PER_GPU_ROWS, RuntimeConfig.cupy
            ),
        )
        fig.series_for("PETSc-GPU").add(
            gpus, _petsc_throughput(machine, ProcessorKind.GPU, gpus, gpus * PER_GPU_ROWS)
        )
        fig.series_for("Legate-CPU").add(
            sockets,
            _legate_throughput(
                machine, ProcessorKind.CPU_SOCKET, sockets,
                sockets * PER_SOCKET_ROWS, paper_legate,
            ),
        )
        fig.series_for("SciPy").add(
            sockets,
            _legate_throughput(
                machine, ProcessorKind.CPU_CORE, 1, PER_SOCKET_ROWS,
                RuntimeConfig.scipy,
            ),
        )
        fig.series_for("PETSc-CPU").add(
            sockets,
            _petsc_throughput(
                machine, ProcessorKind.CPU_SOCKET, sockets, sockets * PER_SOCKET_ROWS
            ),
        )
    return fig


def main():  # pragma: no cover - CLI entry
    """CLI: print the regenerated table."""
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
