"""Weak-scaling configuration shared by the figure experiments.

The paper's x-axis pairs one Power9 socket with its three NVLink-attached
V100s: ``1/1, 1/3, 2/6, 4/12, 8/24, 16/48, 32/96, 64/192`` (Figs. 8-10).
The first column starts the GPU series at a single GPU to compare with
CuPy.  Problem sizes are fixed *per processor*; single-device systems
(SciPy, CuPy) run their single-processor size at every column, which is
why their series are flat in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

# (sockets, gpus) per weak-scaling column.
WEAK_SCALING_COLUMNS: List[Tuple[int, int]] = [
    (1, 1),
    (1, 3),
    (2, 6),
    (4, 12),
    (8, 24),
    (16, 48),
    (32, 96),
    (64, 192),
]

SOCKET_COLUMNS = [s for s, _ in WEAK_SCALING_COLUMNS]
GPU_COLUMNS = [g for _, g in WEAK_SCALING_COLUMNS]


def column_label(col: Tuple[int, int]) -> str:
    """The paper's "sockets/GPUs" x-axis label."""
    return f"{col[0]}/{col[1]}"


def nodes_needed(columns=WEAK_SCALING_COLUMNS) -> int:
    """Summit nodes required for the largest column."""
    max_sockets = max(s for s, _ in columns)
    max_gpus = max(g for _, g in columns)
    return max(max_sockets // 2, (max_gpus + 5) // 6)


def paper_legate(**kwargs):
    """Legate config as the paper measured it: no fusion, no spilling.

    The published system predates the deferred fusion window (§6.1
    names fusion as future work), and several figure shapes depend on
    its absence — Fig. 11's 64-GPU OOM and Fig. 12's minimum-GPU
    counts both shrink once temporaries are elided.  Figure
    regeneration therefore pins ``fusion=False``; the fusion win is
    measured separately (:mod:`repro.harness.fusion_bench`).

    Spilling is pinned off for the same reason: the paper's OOM
    outcomes (Fig. 11's 64-GPU quantum point, Fig. 12's CuPy ML-50M/
    100M failures) are first-class results, and graceful degradation
    (``RuntimeConfig.spill``) would erase them.  The resilience win is
    measured separately (:mod:`repro.harness.chaos_bench`).

    Kernel fusion (``RuntimeConfig.kernel_fusion`` — merge-safe fused
    groups executing as one generated loop nest) is pinned off with
    fusion: it rides on the deferred window and further changes modeled
    compute; its win is measured in the same separate fusion benchmark.
    """
    from repro.legion.runtime import RuntimeConfig

    kwargs.setdefault("fusion", False)
    kwargs.setdefault("spill", False)
    kwargs.setdefault("kernel_fusion", False)
    # The host fast path is bitwise-neutral (identical modeled times,
    # event logs and numerics) but is still a reproduction-side
    # mechanism the published system never ran; figure regeneration
    # pins it off so the paper configuration exercises the original
    # per-launch code paths.  Its win is measured separately
    # (:mod:`repro.harness.overhead_bench`).
    kwargs.setdefault("fastpath", False)
    # The paper's system speaks CSR/COO only; auto-format selection is
    # this reproduction's extension and must not touch published figures.
    kwargs["autoformat"] = False
    return RuntimeConfig.legate(**kwargs)


def spans_artifact_path(trace_path: str) -> str:
    """The native span-log path written beside a Chrome trace.

    ``fig9_cg.trace.json`` -> ``fig9_cg.spans.json``; anything else
    gets ``.spans.json`` appended.
    """
    if trace_path.endswith(".trace.json"):
        return trace_path[: -len(".trace.json")] + ".spans.json"
    return trace_path + ".spans.json"


def run_profiled(run_fn, trace_path: str, columns=None):
    """Run a figure experiment with timeline profiling on; export traces.

    Enables the process-wide profile default (the experiments build
    their runtimes internally, so ``RuntimeConfig.profile`` picks it
    up), runs ``run_fn``, then selects the largest-scope ``legate``
    timeline from the registry and writes two artifacts:

    * ``trace_path`` — Chrome/Perfetto trace JSON (open in
      ``chrome://tracing`` or https://ui.perfetto.dev);
    * the sibling :func:`spans_artifact_path` — the native span log for
      ``python -m repro.analysis profile``.

    Returns ``(figure_result, timeline)``.
    """
    import os

    from repro.legion import timeline as tl_mod

    tl_mod.drain_timelines()  # don't export stale runs
    previous = tl_mod.set_profile_default(True)
    try:
        fig = run_fn(columns=columns)
    finally:
        tl_mod.set_profile_default(previous)
    recorded = [t for t in tl_mod.drain_timelines() if t.name == "legate"]
    if not recorded:
        raise RuntimeError("profiled figure run recorded no legate timelines")
    chosen = max(recorded, key=lambda t: (t.meta.get("procs", 0), len(t.spans)))
    # Process-wide kernel-compile cache totals ride along so
    # ``python -m repro.analysis profile`` can report codegen reuse
    # next to the runtime's host-phase/cache meta.
    from repro.distal.codegen import compile_cache_stats

    chosen.meta["compile_cache"] = compile_cache_stats()
    parent = os.path.dirname(trace_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    chosen.save_chrome_trace(trace_path)
    chosen.save(spans_artifact_path(trace_path))
    return fig, chosen


def reduced_size(full_size: int, procs: int, per_proc_floor: int = 512, cap: int = 400_000) -> int:
    """Pick a host-RAM-friendly build size for a full-scale problem.

    The runtime's ``data_scale`` makes up the difference; the build size
    keeps at least ``per_proc_floor`` elements per processor so the
    distribution (and its halos) stays representative.
    """
    return int(min(full_size, max(procs * per_proc_floor, min(cap, full_size))))
