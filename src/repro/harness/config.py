"""Weak-scaling configuration shared by the figure experiments.

The paper's x-axis pairs one Power9 socket with its three NVLink-attached
V100s: ``1/1, 1/3, 2/6, 4/12, 8/24, 16/48, 32/96, 64/192`` (Figs. 8-10).
The first column starts the GPU series at a single GPU to compare with
CuPy.  Problem sizes are fixed *per processor*; single-device systems
(SciPy, CuPy) run their single-processor size at every column, which is
why their series are flat in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

# (sockets, gpus) per weak-scaling column.
WEAK_SCALING_COLUMNS: List[Tuple[int, int]] = [
    (1, 1),
    (1, 3),
    (2, 6),
    (4, 12),
    (8, 24),
    (16, 48),
    (32, 96),
    (64, 192),
]

SOCKET_COLUMNS = [s for s, _ in WEAK_SCALING_COLUMNS]
GPU_COLUMNS = [g for _, g in WEAK_SCALING_COLUMNS]


def column_label(col: Tuple[int, int]) -> str:
    """The paper's "sockets/GPUs" x-axis label."""
    return f"{col[0]}/{col[1]}"


def nodes_needed(columns=WEAK_SCALING_COLUMNS) -> int:
    """Summit nodes required for the largest column."""
    max_sockets = max(s for s, _ in columns)
    max_gpus = max(g for _, g in columns)
    return max(max_sockets // 2, (max_gpus + 5) // 6)


def paper_legate(**kwargs):
    """Legate config as the paper measured it: no fusion, no spilling.

    The published system predates the deferred fusion window (§6.1
    names fusion as future work), and several figure shapes depend on
    its absence — Fig. 11's 64-GPU OOM and Fig. 12's minimum-GPU
    counts both shrink once temporaries are elided.  Figure
    regeneration therefore pins ``fusion=False``; the fusion win is
    measured separately (:mod:`repro.harness.fusion_bench`).

    Spilling is pinned off for the same reason: the paper's OOM
    outcomes (Fig. 11's 64-GPU quantum point, Fig. 12's CuPy ML-50M/
    100M failures) are first-class results, and graceful degradation
    (``RuntimeConfig.spill``) would erase them.  The resilience win is
    measured separately (:mod:`repro.harness.chaos_bench`).
    """
    from repro.legion.runtime import RuntimeConfig

    kwargs.setdefault("fusion", False)
    kwargs.setdefault("spill", False)
    return RuntimeConfig.legate(**kwargs)


def reduced_size(full_size: int, procs: int, per_proc_floor: int = 512, cap: int = 400_000) -> int:
    """Pick a host-RAM-friendly build size for a full-scale problem.

    The runtime's ``data_scale`` makes up the difference; the build size
    keeps at least ``per_proc_floor`` elements per processor so the
    distribution (and its halos) stays representative.
    """
    return int(min(full_size, max(procs * per_proc_floor, min(cap, full_size))))
