"""The benchmark harness: regenerates every table and figure in §6.

Each experiment module (``repro.harness.experiments.fig*``) builds the
paper's workload, runs it on each compared system over the weak-scaling
processor counts, and returns a :class:`~repro.harness.figures.FigureResult`
whose rows print as the series of the corresponding figure.  Absolute
numbers come from the machine model, not from Summit, so the harness also
carries the paper's *shape* expectations (who wins, by what factor, where
crossovers fall) as checkable assertions.
"""

from repro.harness.figures import FigureResult, Series
from repro.harness.config import (
    GPU_COLUMNS,
    SOCKET_COLUMNS,
    WEAK_SCALING_COLUMNS,
    column_label,
)

__all__ = [
    "FigureResult",
    "GPU_COLUMNS",
    "SOCKET_COLUMNS",
    "Series",
    "WEAK_SCALING_COLUMNS",
    "column_label",
]
