"""Synthetic MovieLens-like rating data + randomized fractal expansion.

The paper trains on MovieLens 10M/25M and derives 50M/100M with the
randomized fractal (Kronecker-style) expansion of Belletti et al. — the
same expansion implemented here.  The synthetic generator reproduces the
statistics that drive throughput: a power-law item popularity, lognormal
user activity, and 0.5..5 ratings with user/item biases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

Triples = Tuple[np.ndarray, np.ndarray, np.ndarray]  # (users, items, ratings)


@dataclass(frozen=True)
class DatasetSpec:
    """Shape metadata of a (synthetic) MovieLens dataset."""
    name: str
    n_users: int
    n_items: int
    n_ratings: int


# Real MovieLens shapes; 50M/100M are fractal expansions of the 25M data
# (the paper expands from 20M; the shapes below match its table's scale).
ML_SPECS = {
    "ml-10m": DatasetSpec("ml-10m", 69_878, 10_677, 10_000_054),
    "ml-25m": DatasetSpec("ml-25m", 162_541, 59_047, 25_000_095),
    "ml-50m": DatasetSpec("ml-50m", 325_082, 118_094, 50_000_190),
    "ml-100m": DatasetSpec("ml-100m", 650_164, 236_188, 100_000_380),
}


def synthetic_movielens(
    n_users: int, n_items: int, n_ratings: int, seed: int = 0
) -> Triples:
    """Ratings with power-law item popularity and biased users/items.

    Each (user, item) pair appears at most once, like real MovieLens —
    duplicate pairs would be summed by sparse-matrix assembly.
    """
    rng = np.random.default_rng(seed)
    n_ratings = min(n_ratings, (n_users * n_items) // 2)
    # Item popularity ~ Zipf; user activity ~ lognormal.
    item_w = 1.0 / np.arange(1, n_items + 1) ** 1.1
    item_w /= item_w.sum()
    user_w = rng.lognormal(0.0, 1.0, size=n_users)
    user_w /= user_w.sum()
    keys = np.empty(0, dtype=np.int64)
    while len(keys) < n_ratings:
        need = int((n_ratings - len(keys)) * 1.5) + 16
        users = rng.choice(n_users, size=need, p=user_w).astype(np.int64)
        items = rng.choice(n_items, size=need, p=item_w).astype(np.int64)
        keys = np.unique(np.concatenate([keys, users * n_items + items]))
    keys = rng.permutation(keys)[:n_ratings]
    users = (keys // n_items).astype(np.int64)
    items = (keys % n_items).astype(np.int64)
    user_bias = rng.normal(0.0, 0.4, size=n_users)
    item_bias = rng.normal(0.0, 0.6, size=n_items)
    raw = 3.5 + user_bias[users] + item_bias[items] + rng.normal(0, 0.7, n_ratings)
    ratings = np.clip(np.round(raw * 2) / 2, 0.5, 5.0)
    return users, items, ratings


def fractal_expand(
    triples: Triples,
    shape: Tuple[int, int],
    factor: int = 2,
    seed: int = 0,
) -> Tuple[Triples, Tuple[int, int]]:
    """Randomized fractal expansion (Belletti et al.).

    Each rating (u, i, r) is replicated into ``factor`` of the
    ``factor x factor`` user/item blocks of the expanded matrix, with the
    rating perturbed — growing users, items and ratings by ``factor``
    while preserving the correlation structure.
    """
    users, items, ratings = triples
    n_users, n_items = shape
    rng = np.random.default_rng(seed)
    out_u, out_i, out_r = [], [], []
    for _ in range(factor):
        block_u = rng.integers(0, factor, size=len(users))
        block_i = rng.integers(0, factor, size=len(items))
        noise = rng.normal(0, 0.25, size=len(ratings))
        out_u.append(users + block_u * n_users)
        out_i.append(items + block_i * n_items)
        out_r.append(np.clip(ratings + noise, 0.5, 5.0))
    all_u = np.concatenate(out_u)
    all_i = np.concatenate(out_i)
    all_r = np.concatenate(out_r)
    # Collisions between replicas are dropped (pairs stay unique).
    keys = all_u * np.int64(n_items * factor) + all_i
    _, first = np.unique(keys, return_index=True)
    expanded = (all_u[first], all_i[first], all_r[first])
    return expanded, (n_users * factor, n_items * factor)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Tuple[Triples, DatasetSpec]:
    """A (possibly size-reduced) synthetic instance of a named dataset.

    ``scale`` < 1 shrinks the generated data for host-RAM-bound runs; the
    harness compensates with the runtime's ``data_scale`` so simulated
    time and memory reflect the full dataset.
    """
    spec = ML_SPECS[name]
    # Dimensions scale by sqrt(scale) so the rating density of the
    # reduced instance matches the full dataset's.
    dim = np.sqrt(scale)
    n_users = max(64, int(spec.n_users * dim))
    n_items = max(64, int(spec.n_items * dim))
    n_ratings = max(512, int(spec.n_ratings * scale))
    if name in ("ml-10m", "ml-25m"):
        return synthetic_movielens(n_users, n_items, n_ratings, seed), spec
    base_scaled = ML_SPECS["ml-25m"]
    base_users = max(64, int(base_scaled.n_users * dim))
    base_items = max(64, int(base_scaled.n_items * dim))
    base_ratings = max(512, int(base_scaled.n_ratings * scale))
    base = synthetic_movielens(base_users, base_items, base_ratings, seed)
    factor = 2 if name == "ml-50m" else 4
    if factor == 2:
        expanded, _ = fractal_expand(base, (base_users, base_items), 2, seed)
    else:
        once, shape1 = fractal_expand(base, (base_users, base_items), 2, seed)
        expanded, _ = fractal_expand(once, shape1, 2, seed + 1)
    return expanded, spec
