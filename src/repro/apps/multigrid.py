"""Two-level geometric multigrid (paper §6.1, Fig. 10).

A ~300-line-of-Python workload in the paper: a conjugate gradient solver
preconditioned by a two-level V-cycle with an injection restriction
operator and a weighted-Jacobi smoother, on the 2-D Poisson problem.
The coarse operator is formed with the Galerkin triple product — three
distributed SpGEMMs — and the coarse solve is itself a distributed CG.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.core.linalg import LinearOperator
from repro.numeric.array import ndarray


def _grid_sizes(k: int) -> int:
    if k % 2 == 0:
        raise ValueError("grid size k must be odd (coarse points at 2i+1)")
    return (k - 1) // 2


def injection_restriction(k: int) -> "sp.csr_matrix":
    """R: picks the fine values at coarse points (2i+1, 2j+1)."""
    kc = _grid_sizes(k)
    rows = np.arange(kc * kc, dtype=np.int64)
    ci, cj = np.divmod(rows, kc)
    cols = (2 * ci + 1) * k + (2 * cj + 1)
    vals = np.ones(kc * kc)
    return sp.csr_matrix((vals, (rows, cols)), shape=(kc * kc, k * k))


def bilinear_prolongation(k: int) -> "sp.csr_matrix":
    """P: bilinear interpolation from the coarse grid to the fine grid."""
    kc = _grid_sizes(k)
    rows, cols, vals = [], [], []
    coarse_index = lambda ci, cj: ci * kc + cj  # noqa: E731
    for ci in range(kc):
        fi = 2 * ci + 1
        for cj in range(kc):
            fj = 2 * cj + 1
            c = coarse_index(ci, cj)
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    i, j = fi + di, fj + dj
                    if not (0 <= i < k and 0 <= j < k):
                        continue
                    w = (1.0 if di == 0 else 0.5) * (1.0 if dj == 0 else 0.5)
                    rows.append(i * k + j)
                    cols.append(c)
                    vals.append(w)
    return sp.csr_matrix(
        (np.array(vals), (np.array(rows), np.array(cols))),
        shape=(k * k, kc * kc),
    )


class TwoLevelGMG:
    """The V-cycle preconditioner M ≈ A^{-1}."""

    def __init__(
        self,
        A: "sp.csr_matrix",
        k: int,
        omega: float = 2.0 / 3.0,
        pre_smooth: int = 2,
        post_smooth: int = 2,
        coarse_rtol: float = 1e-2,
        coarse_maxiter: int = 50,
        restriction: str = "injection",
    ):
        self.A = A
        self.k = k
        self.omega = omega
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.coarse_rtol = coarse_rtol
        self.coarse_maxiter = coarse_maxiter
        self.P = bilinear_prolongation(k)
        if restriction == "injection":
            self.R = injection_restriction(k)
        elif restriction == "fullweight":
            self.R = 0.25 * self.P.T.tocsr()
        else:
            raise ValueError(f"unknown restriction {restriction!r}")
        # Galerkin coarse operator: three distributed SpGEMMs.
        self.Ac = (self.R @ A @ self.P).tocsr()
        self.dinv = 1.0 / A.diagonal()

    def smooth(self, r: ndarray, e: Optional[ndarray], steps: int) -> ndarray:
        """Weighted-Jacobi: e <- e + omega * D^{-1} (r - A e)."""
        for _ in range(steps):
            if e is None:
                e = (r * self.dinv) * self.omega
            else:
                resid = r - self.A @ e
                e = e + (resid * self.dinv) * self.omega
        return e

    def vcycle(self, r: ndarray) -> ndarray:
        """One V-cycle: returns e with A e ≈ r."""
        e = self.smooth(r, None, self.pre_smooth)
        rc = self.R @ (r - self.A @ e)
        ec, _ = sp.linalg.cg(
            self.Ac, rc, rtol=self.coarse_rtol, maxiter=self.coarse_maxiter
        )
        e = e + self.P @ ec
        e = self.smooth(r, e, self.post_smooth)
        return e

    def as_preconditioner(self) -> LinearOperator:
        """The V-cycle wrapped as a LinearOperator."""
        n = self.A.shape[0]
        return LinearOperator((n, n), matvec=self.vcycle)


class MultiLevelGMG:
    """A full V-cycle hierarchy (generalizes the paper's two levels).

    Levels are built by Galerkin triple products until the grid drops
    below ``coarsest``; the bottom solve is a short CG.
    """

    def __init__(
        self,
        A: "sp.csr_matrix",
        k: int,
        omega: float = 2.0 / 3.0,
        pre_smooth: int = 2,
        post_smooth: int = 2,
        coarsest: int = 7,
        coarse_rtol: float = 1e-2,
        coarse_maxiter: int = 50,
        restriction: str = "injection",
    ):
        self.omega = omega
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.coarse_rtol = coarse_rtol
        self.coarse_maxiter = coarse_maxiter
        self.levels = []  # (A, dinv, R, P); the last level has R = P = None
        while True:
            dinv = 1.0 / A.diagonal()
            kc = (k - 1) // 2 if k % 2 == 1 else 0
            if kc < coarsest or k % 2 == 0:
                self.levels.append((A, dinv, None, None))
                break
            P = bilinear_prolongation(k)
            if restriction == "injection":
                R = injection_restriction(k)
            elif restriction == "fullweight":
                R = 0.25 * P.T.tocsr()
            else:
                raise ValueError(f"unknown restriction {restriction!r}")
            self.levels.append((A, dinv, R, P))
            A = (R @ A @ P).tocsr()
            k = kc

    @property
    def depth(self) -> int:
        """Number of levels in the hierarchy."""
        return len(self.levels)

    def _smooth(self, A, dinv, r, e, steps):
        for _ in range(steps):
            if e is None:
                e = (r * dinv) * self.omega
            else:
                e = e + ((r - A @ e) * dinv) * self.omega
        return e

    def _vcycle(self, level: int, r: ndarray) -> ndarray:
        A, dinv, R, P = self.levels[level]
        if R is None:
            e, _ = sp.linalg.cg(
                A, r, rtol=self.coarse_rtol, maxiter=self.coarse_maxiter
            )
            return e
        e = self._smooth(A, dinv, r, None, self.pre_smooth)
        rc = R @ (r - A @ e)
        e = e + P @ self._vcycle(level + 1, rc)
        return self._smooth(A, dinv, r, e, self.post_smooth)

    def vcycle(self, r: ndarray) -> ndarray:
        """One full V-cycle from the finest level."""
        return self._vcycle(0, r)

    def as_preconditioner(self) -> LinearOperator:
        """The V-cycle wrapped as a LinearOperator."""
        n = self.levels[0][0].shape[0]
        return LinearOperator((n, n), matvec=self.vcycle)


def gmg_preconditioned_cg(
    A: "sp.csr_matrix",
    b: ndarray,
    k: int,
    rtol: float = 1e-8,
    maxiter: int = 200,
    callback=None,
    **gmg_kwargs,
) -> Tuple[ndarray, int, int]:
    """CG preconditioned by the two-level V-cycle.

    Returns ``(x, info, iterations)``.
    """
    gmg = TwoLevelGMG(A, k, **gmg_kwargs)
    iters = [0]

    def count(xk):
        iters[0] += 1
        if callback is not None:
            callback(xk)

    x, info = sp.linalg.cg(
        A, b, rtol=rtol, maxiter=maxiter, M=gmg.as_preconditioner(), callback=count
    )
    return x, info, iters[0]
