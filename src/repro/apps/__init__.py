"""The paper's evaluation workloads, written as SciPy programs.

Every application here is idiomatic SciPy/NumPy code against the drop-in
APIs (:mod:`repro.sparse`, :mod:`repro.numeric`) — the productivity claim
of the paper is that these programs run distributed unmodified.
"""

from repro.apps.poisson import poisson2d, poisson2d_scipy
from repro.apps.multigrid import MultiLevelGMG, TwoLevelGMG, gmg_preconditioned_cg
from repro.apps.rydberg import (
    blockade_state_count,
    blockade_states,
    rydberg_hamiltonian,
    rydberg_hamiltonian_scipy,
    simulate,
)
from repro.apps.matfact import MatrixFactorizationModel, sgd_epoch
from repro.apps.movielens import fractal_expand, synthetic_movielens

__all__ = [
    "MatrixFactorizationModel",
    "MultiLevelGMG",
    "TwoLevelGMG",
    "blockade_state_count",
    "blockade_states",
    "fractal_expand",
    "gmg_preconditioned_cg",
    "poisson2d",
    "poisson2d_scipy",
    "rydberg_hamiltonian",
    "rydberg_hamiltonian_scipy",
    "sgd_epoch",
    "simulate",
    "synthetic_movielens",
]
