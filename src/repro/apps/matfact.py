"""Sparse matrix factorization with bias, trained by mini-batch SGD
(paper §6.2, Fig. 12).

The model is the classic biased factorization (Koren et al.):

    r̂(u, i) = μ + b_u + b_i + U[u] · V[i]

The training loop follows the paper: batches of samples are assembled
into sparse matrices, predictions on the batch pattern are computed with
**SDDMM** (avoiding the dense U Vᵀ product), and the gradients are two
sparse-times-dense products (``err @ V`` and ``errᵀ @ U``) plus row and
column sums for the biases — all distributed operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.core.convert import expand_row_indices
from repro.numeric.array import ndarray


@dataclass
class TrainStats:
    """Samples and batches processed so far."""
    samples: int = 0
    batches: int = 0


@dataclass(frozen=True)
class FactorSnapshot:
    """One published epoch of model parameters.

    Immutable by contract: training never mutates a published
    snapshot's arrays in place — it computes the next epoch's arrays
    and publishes a *new* snapshot with one reference assignment.  A
    reader that captured a snapshot therefore sees one consistent
    epoch forever, no matter how many train steps run concurrently.
    """

    version: int
    mu: float
    U: ndarray
    V: ndarray
    bu: ndarray
    bi: ndarray


class MatrixFactorizationModel:
    """Biased matrix factorization (Koren et al.), trained with distributed SDDMM/SpMM batches.

    Parameters live in an immutable :class:`FactorSnapshot` published
    with a single attribute swap per train step, so prediction is safe
    under concurrent readers: a reader either sees the epoch before a
    ``train_batch`` or the epoch after, never a half-updated mix of
    fresh ``U`` with stale ``bu``.  ``U``/``V``/``bu``/``bi`` are
    read-only views of the current snapshot; :meth:`snapshot` pins an
    epoch across multiple calls.
    """
    def __init__(
        self,
        n_users: int,
        n_items: int,
        k: int = 32,
        lr: float = 0.01,
        reg: float = 0.02,
        mu: float = 3.5,
        seed: int = 0,
    ):
        self.n_users, self.n_items, self.k = n_users, n_items, k
        self.lr, self.reg, self.mu = lr, reg, mu
        rnp.random.seed(seed)
        self._snapshot = FactorSnapshot(
            version=0,
            mu=mu,
            U=rnp.random.standard_normal((n_users, k)) * (1.0 / np.sqrt(k)),
            V=rnp.random.standard_normal((n_items, k)) * (1.0 / np.sqrt(k)),
            bu=rnp.zeros(n_users),
            bi=rnp.zeros(n_items),
        )
        self.stats = TrainStats()

    # -- published parameters (read-only views of the current epoch) ----
    def snapshot(self) -> FactorSnapshot:
        """Pin the current epoch for a consistent multi-read sequence."""
        return self._snapshot

    @property
    def version(self) -> int:
        """Epoch counter: bumps once per published train step."""
        return self._snapshot.version

    @property
    def U(self) -> ndarray:
        return self._snapshot.U

    @property
    def V(self) -> ndarray:
        return self._snapshot.V

    @property
    def bu(self) -> ndarray:
        return self._snapshot.bu

    @property
    def bi(self) -> ndarray:
        return self._snapshot.bi

    # ------------------------------------------------------------------
    def _batch_matrices(self, users, items, ratings):
        """Assemble the batch sparse matrix and its index/rating arrays.

        The returned arrays follow the matrix's canonical (row, col)
        order, so value-space arithmetic lines up entry for entry.
        """
        R = sp.csr_matrix(
            (ratings, (users, items)), shape=(self.n_users, self.n_items)
        )
        rows = expand_row_indices(R)
        cols = ndarray(R.crd)
        return R, rows, cols

    def _predict_on_pattern(
        self, R, rows, cols, snap: Optional[FactorSnapshot] = None
    ) -> ndarray:
        snap = snap or self._snapshot
        ones = R._with_values(rnp.ones(R.nnz))
        dots = ones.sddmm(snap.U, snap.V).data
        return dots + snap.bu[rows] + snap.bi[cols] + snap.mu

    # ------------------------------------------------------------------
    def train_batch(self, users, items, ratings) -> float:
        """One SGD step on a batch; returns the batch RMSE (pre-update).

        Every gradient reads the *pinned* pre-step snapshot, the next
        epoch's arrays are fully computed first, and only then is the
        new snapshot published (one reference assignment).  Numerics
        match the classic sequential in-place update exactly — each
        update's right-hand side only ever used pre-step values — but a
        concurrent predict can no longer observe fresh factors mixed
        with stale biases.
        """
        snap = self._snapshot
        R, rows, cols = self._batch_matrices(users, items, ratings)
        nnz = R.nnz
        preds = self._predict_on_pattern(R, rows, cols, snap)
        err_vals = preds - R.data
        err = R._with_values(err_vals)
        scale = 1.0 / nnz
        # Factor gradients: two sparse-dense products.
        dU = err @ snap.V  # (n_users, k)
        dV = err._matmat_transpose(snap.U)  # (n_items, k)
        new_U = snap.U - (dU * scale + snap.U * self.reg) * self.lr
        new_V = snap.V - (dV * scale + snap.V * self.reg) * self.lr
        # Bias gradients: row/column sums of the error matrix.
        new_bu = snap.bu - (err.sum(axis=1) * scale + snap.bu * self.reg) * self.lr
        new_bi = snap.bi - (err.sum(axis=0) * scale + snap.bi * self.reg) * self.lr
        self._snapshot = FactorSnapshot(
            snap.version + 1, snap.mu, new_U, new_V, new_bu, new_bi
        )
        self.stats.samples += nnz
        self.stats.batches += 1
        return float(rnp.linalg.norm(err_vals)) / np.sqrt(nnz)

    def predict(self, users, items, snapshot: Optional[FactorSnapshot] = None):
        """Predicted ratings for (user, item) pairs.

        Reads one consistent epoch: the given pinned ``snapshot``, or
        the currently-published one captured once at entry.
        """
        snap = snapshot or self._snapshot
        users = np.asarray(users)
        items = np.asarray(items)
        ones = np.ones(len(users))
        R, rows, cols = self._batch_matrices(users, items, ones)
        preds = self._predict_on_pattern(R, rows, cols, snap)
        # _batch_matrices canonicalizes to (row, col) order; map the
        # predictions back to the caller's pair order.
        order = np.lexsort((items, users))
        out = np.empty(len(users))
        out[order] = preds.to_numpy()
        return out

    def rmse(self, users, items, ratings) -> float:
        """Root-mean-square error on given triples."""
        snap = self._snapshot
        R, rows, cols = self._batch_matrices(users, items, ratings)
        preds = self._predict_on_pattern(R, rows, cols, snap)
        err = preds - R.data
        return float(rnp.linalg.norm(err)) / np.sqrt(R.nnz)

    def memory_footprint_bytes(self, n_ratings: int) -> int:
        """Approximate resident bytes at full dataset scale (Fig. 12's
        minimum-resources column derives from this + batch temporaries)."""
        factors = (self.n_users + self.n_items) * self.k * 8
        biases = (self.n_users + self.n_items) * 8
        ratings = n_ratings * (8 + 8 + 8)  # coo triples in device memory
        return factors + biases + ratings


def sgd_epoch(
    model: MatrixFactorizationModel,
    users: np.ndarray,
    items: np.ndarray,
    ratings: np.ndarray,
    batch_size: int = 4096,
    rng: Optional[np.random.Generator] = None,
    max_batches: Optional[int] = None,
) -> Tuple[int, float]:
    """Shuffle and train one epoch; returns (samples, mean batch RMSE)."""
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(users))
    total, losses = 0, []
    n_batches = (len(users) + batch_size - 1) // batch_size
    if max_batches is not None:
        n_batches = min(n_batches, max_batches)
    for b in range(n_batches):
        sel = order[b * batch_size : (b + 1) * batch_size]
        if not len(sel):
            break
        losses.append(model.train_batch(users[sel], items[sel], ratings[sel]))
        total += len(sel)
    return total, float(np.mean(losses)) if losses else 0.0
