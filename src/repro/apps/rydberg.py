"""Quantum simulation of Rydberg atom arrays (paper §6.1, Fig. 11).

The paper's workload simulates chains of Rydberg atoms used for Maximum
Independent Set optimization (Ebadi et al.), keeping only states allowed
by the blockade mechanism — no two adjacent atoms excited — so the state
space grows like a Fibonacci number instead of 2^n.  The Hamiltonian

    H = (Ω/2) Σ_i (|0⟩⟨1| + |1⟩⟨0|)_i  −  Δ Σ_i n_i  +  Σ_{|i−j|=2} V₂ n_i n_j

is sparse but *wide-band*: a single-atom flip connects states whose
indices are far apart, producing the near-all-to-all communication the
paper measures.  The dynamics  i dψ/dt = H ψ  are integrated with the
8th-order method.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.integrate import solve_ivp
from repro.numeric.array import ndarray


@lru_cache(maxsize=None)
def blockade_states(n_atoms: int) -> Tuple[int, ...]:
    """All bitstrings of n atoms with no two adjacent excitations."""
    states: List[int] = []

    def extend(prefix: int, pos: int, last_excited: bool) -> None:
        if pos == n_atoms:
            states.append(prefix)
            return
        extend(prefix, pos + 1, False)
        if not last_excited:
            extend(prefix | (1 << pos), pos + 1, True)

    extend(0, 0, False)
    return tuple(sorted(states))


def blockade_state_count(n_atoms: int) -> int:
    """Fibonacci growth: F(n+2) states for an n-atom chain."""
    a, b = 1, 2
    for _ in range(n_atoms - 1):
        a, b = b, a + b
    return b


def rydberg_hamiltonian_scipy(
    n_atoms: int,
    omega: float = 1.0,
    delta: float = 0.5,
    v2: float = 0.15,
) -> sps.csr_matrix:
    """Host-assembled Hamiltonian over the blockade-restricted basis."""
    states = blockade_states(n_atoms)
    index = {s: i for i, s in enumerate(states)}
    dim = len(states)
    rows, cols, vals = [], [], []
    for i, s in enumerate(states):
        # Diagonal: detuning + next-nearest-neighbour interaction.
        n_exc = bin(s).count("1")
        diag = -delta * n_exc
        for a in range(n_atoms - 2):
            if (s >> a) & 1 and (s >> (a + 2)) & 1:
                diag += v2
        rows.append(i)
        cols.append(i)
        vals.append(diag)
        # Off-diagonal: Rabi flips allowed by the blockade.
        for a in range(n_atoms):
            left = (s >> (a - 1)) & 1 if a > 0 else 0
            right = (s >> (a + 1)) & 1 if a < n_atoms - 1 else 0
            if left or right:
                continue  # flipping would not stay in the blockade basis
            t = s ^ (1 << a)
            rows.append(i)
            cols.append(index[t])
            vals.append(omega / 2.0)
    H = sps.csr_matrix(
        (np.array(vals), (np.array(rows), np.array(cols))), shape=(dim, dim)
    )
    H.sum_duplicates()
    return H


def rydberg_hamiltonian(
    n_atoms: int,
    omega: float = 1.0,
    delta: float = 0.5,
    v2: float = 0.15,
) -> "sp.csr_matrix":
    """The Hamiltonian as a distributed CSR matrix."""
    return sp.csr_matrix(rydberg_hamiltonian_scipy(n_atoms, omega, delta, v2))


def initial_state(dim: int) -> ndarray:
    """Start in the all-ground state |00...0> (index 0 in sorted basis)."""
    psi = np.zeros(dim, dtype=np.complex128)
    psi[0] = 1.0
    return rnp.array(psi)


def simulate(
    H: "sp.csr_matrix",
    t_final: float,
    step: float,
    psi0: Optional[ndarray] = None,
    method: str = "GBS8",
):
    """Integrate i dψ/dt = H ψ; returns the IntegrationResult."""
    if psi0 is None:
        psi0 = initial_state(H.shape[0])
    return solve_ivp(
        lambda t, psi: (H @ psi) * (-1j),
        (0.0, t_final),
        psi0,
        method=method,
        step=step,
    )
