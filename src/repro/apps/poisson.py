"""2-D Poisson problem: the PDE behind the CG and GMG benchmarks."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sps

import repro.sparse as sp


def _poisson1d_scipy(k: int) -> sps.csr_matrix:
    return sps.diags(
        [2.0 * np.ones(k), -np.ones(k - 1), -np.ones(k - 1)], [0, 1, -1]
    ).tocsr()


def poisson2d_scipy(k: int) -> sps.csr_matrix:
    """The standard 5-point Laplacian on a k x k grid (n = k^2 rows)."""
    T = _poisson1d_scipy(k)
    eye = sps.eye(k)
    return (sps.kron(eye, T) + sps.kron(T, eye)).tocsr()


def poisson2d(k: int) -> "sp.csr_matrix":
    """Distributed 5-point Laplacian, built with the sparse API itself."""
    T = sp.diags(
        [2.0 * np.ones(k), -np.ones(k - 1), -np.ones(k - 1)], [0, 1, -1]
    )
    eye = sp.eye(k)
    return (sp.kron(eye, T) + sp.kron(T, eye)).tocsr()
