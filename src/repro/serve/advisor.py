"""Serving lints: unbatchable request mixes, cache-defeating churn.

The static advisor lints *programs*; these lint *traffic*.  They read
the service's aggregated :class:`~repro.serve.service.ServeStats` and
reuse the advisor's :class:`~repro.analysis.lint.LintIssue` shape so
tooling that consumes advisor findings renders them unchanged.

* ``serve-unbatchable`` — a meaningful share of launches stayed
  singletons because co-pending requests refused to stack (mixed
  dtypes, matrix-version churn, shape mismatches).  Batching is the
  serving layer's launch-overhead lever; a refusal-dominated workload
  is paying per-request overhead it thinks it amortized.
* ``serve-cache-churn`` — a warm cache with a cold hit rate: requests
  are near-duplicates that hash differently (unquantized floats,
  per-request noise) or the capacity is undersized for the working
  set.  Either way the (version, input-hash) cache is being defeated.
* ``serve-queue-pressure`` — admission control is shedding load;
  capacity, weights or queue bounds need attention.
"""

from __future__ import annotations

from typing import List

from repro.analysis.lint import LintIssue

# Refusal reasons that indicate *incompatible* co-pending traffic (a
# lone request with nothing to stack against is not a batching failure).
_MISMATCH_REASONS = ("dtype-mix", "version-churn", "shape-mismatch")

UNBATCHABLE_SHARE = 0.25  # mismatch refusals / launches before warning
CACHE_MIN_LOOKUPS = 20
CACHE_COLD_RATE = 0.10


def lint_serve(stats) -> List[LintIssue]:
    """Lint one service's aggregated traffic statistics."""
    issues: List[LintIssue] = []
    mismatches = {
        reason: count
        for reason, count in stats.refusals.items()
        if reason in _MISMATCH_REASONS and count
    }
    total_mismatch = sum(mismatches.values())
    if stats.launches and total_mismatch / stats.launches > UNBATCHABLE_SHARE:
        dominant = max(mismatches, key=mismatches.get)
        issues.append(
            LintIssue(
                "serve-unbatchable",
                f"{total_mismatch} of {stats.launches} launches could not "
                f"batch with co-pending requests (dominant reason: "
                f"{dominant} x{mismatches[dominant]}); align request "
                f"dtypes and throttle model-version churn to amortize "
                f"launch overhead",
            )
        )
    cache = stats.cache
    if cache.lookups >= CACHE_MIN_LOOKUPS and cache.hit_rate < CACHE_COLD_RATE:
        issues.append(
            LintIssue(
                "serve-cache-churn",
                f"result cache hit rate {cache.hit_rate:.1%} over "
                f"{cache.lookups} lookups: request inputs defeat the "
                f"(version, input-hash) key — canonicalize/quantize "
                f"request vectors or raise capacity "
                f"(currently {stats.cache_capacity})",
            )
        )
    if stats.requests_rejected:
        issues.append(
            LintIssue(
                "serve-queue-pressure",
                f"admission control rejected {stats.requests_rejected} "
                f"requests at bounded tenant queues; raise max_queue, "
                f"add capacity, or shed load upstream",
            )
        )
    return issues
