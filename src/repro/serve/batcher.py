"""Cross-request SpMV batching: stack compatible RHS into one launch.

A window of pending requests usually contains many SpMVs against the
*same* matrix.  Launch overhead is per-launch, not per-byte (the
paper's small-task lesson), so the batcher stacks ``k`` compatible
right-hand sides into one ``(n, k)`` operand and issues a single
multi-vector launch — ``Y(i,k) = A(i,j) * X(j,k)`` — then splits the
result columns back per request.  One launch overhead instead of ``k``.

**Bitwise identity.**  The CSR SpMM kernel accumulates each output
column with exactly the sequential per-row segmented sum the SpMV
kernel uses (``np.cumsum`` along the nonzero axis, independent per
column), over the same row-split shard boundaries (both align the
output with ``pos``).  Column ``k`` of the batched result is therefore
bit-for-bit the vector the per-request launch would have produced —
enforced by property tests over random request mixes
(``tests/serve/test_batcher.py``) and by the serve bench's sha256
comparison.

**Legality.**  Requests batch only when every column means the same
thing to the kernel:

* same matrix **version** — a model update between two requests splits
  the batch (each request computes against the version it was admitted
  under);
* same RHS **dtype** — the kernel promotes the matrix once per operand
  dtype, so mixing float32/float64 columns would change accumulation
  types;
* same RHS **length** (trivially: they target the same matrix).

Refusals are counted by reason; :mod:`repro.serve.advisor` turns a
refusal-dominated workload into a lint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.serve.scheduler import Request


@dataclass(frozen=True)
class BatchKey:
    """The batching-legality key: columns sharing it may stack."""

    matrix_version: int
    n: int
    dtype: str

    @classmethod
    def for_request(cls, req: Request) -> "BatchKey":
        return cls(req.version, int(req.x.shape[0]), str(req.x.dtype))


@dataclass
class Batch:
    """One planned launch: requests whose RHS stack into one operand."""

    key: BatchKey
    requests: List[Request]

    @property
    def width(self) -> int:
        return len(self.requests)


@dataclass
class SpMVBatcher:
    """Plans windows into batches; executes them against a matrix.

    ``max_batch`` bounds the stacked width (an over-wide operand loses
    the cache-friendly column count real multi-vector kernels want);
    ``max_batch=1`` degrades to per-request execution — the unbatched
    comparison mode the bench uses.
    """

    max_batch: int = 8
    # Why singleton launches stayed singletons: reason -> count.
    # "lone-request" is benign (nothing co-pending to stack with);
    # the mismatch reasons feed the serve lints.
    refusals: Dict[str, int] = field(default_factory=dict)
    batches_executed: int = 0
    requests_batched: int = 0

    def _refuse(self, reason: str, count: int = 1) -> None:
        self.refusals[reason] = self.refusals.get(reason, 0) + count

    # -- planning -------------------------------------------------------
    def plan(self, window: Sequence[Request]) -> List[Batch]:
        """Partition a window into batches, preserving window order.

        Requests with the same :class:`BatchKey` stack (chunked to
        ``max_batch``); a request left alone records why.
        """
        groups: Dict[BatchKey, List[Request]] = {}
        for req in window:
            groups.setdefault(BatchKey.for_request(req), []).append(req)
        batches: List[Batch] = []
        for key, reqs in groups.items():
            if len(reqs) == 1 and len(window) > 1:
                self._refuse(self._mismatch_reason(key, groups))
            for i in range(0, len(reqs), max(self.max_batch, 1)):
                chunk = reqs[i : i + max(self.max_batch, 1)]
                batches.append(Batch(key, chunk))
        if len(window) == 1:
            self._refuse("lone-request")
        return batches

    def _mismatch_reason(
        self, key: BatchKey, groups: Dict[BatchKey, List[Request]]
    ) -> str:
        """Why this singleton could not join any other group."""
        for other in groups:
            if other is key:
                continue
            if other.dtype != key.dtype and other.n == key.n:
                return "dtype-mix"
            if other.matrix_version != key.matrix_version:
                return "version-churn"
        if any(o.n != key.n for o in groups if o is not key):
            return "shape-mismatch"
        return "lone-request"

    # -- execution ------------------------------------------------------
    def execute(
        self, batch: Batch, matrix, runtime
    ) -> List[Tuple[Request, np.ndarray]]:
        """Run one batch; returns per-request result vectors.

        A width-1 batch issues the ordinary SpMV; width >= 2 stacks the
        RHS column-wise, issues one multi-vector launch and splits the
        result columns.  Results are host copies (they leave the
        runtime at the service boundary).
        """
        import repro.numeric as rnp

        reqs = batch.requests
        if len(reqs) == 1:
            y = matrix @ rnp.asarray(reqs[0].x)
            return [(reqs[0], y.to_numpy().copy())]
        X = np.stack([r.x for r in reqs], axis=1)
        Y = (matrix @ rnp.asarray(X)).to_numpy()
        self.batches_executed += 1
        self.requests_batched += len(reqs)
        runtime.profiler.record_spmv_batch(len(reqs))
        return [(req, Y[:, k].copy()) for k, req in enumerate(reqs)]
