"""Result cache keyed on (matrix version, input hash).

A served SpMV is a pure function of the matrix *version* and the
request's right-hand side, so identical requests against an unchanged
model can be answered without any launch.  Keys embed the version, so a
model update never serves stale results — old-version entries become
unreachable and age out of the LRU (or are dropped eagerly by
:meth:`ResultCache.invalidate_before`).

The input hash is sha256 over the raw RHS bytes plus dtype and shape:
two float arrays that compare equal but differ in dtype (or in a single
bit) hash differently — cache correctness never depends on tolerance.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

CacheKey = Tuple[int, str]  # (matrix version, input digest)


def input_digest(x: np.ndarray) -> str:
    """sha256 over the RHS bytes, dtype and shape."""
    h = hashlib.sha256()
    h.update(str(x.dtype).encode())
    h.update(str(x.shape).encode())
    h.update(np.ascontiguousarray(x).tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Lookup/insert counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Bounded LRU of served results keyed on (version, input hash)."""

    capacity: int = 256
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, version: int, x: np.ndarray) -> CacheKey:
        return (version, input_digest(x))

    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        """The cached result, or None; counts the lookup either way."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, result: np.ndarray) -> None:
        """Insert a served result (the cache owns a private copy)."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = np.ascontiguousarray(result).copy()
        self.stats.inserts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_before(self, version: int) -> int:
        """Eagerly drop entries older than ``version``; returns count.

        Optional — version-embedded keys already make stale entries
        unreachable — but a model trained continuously would otherwise
        carry dead entries until LRU pressure clears them.
        """
        dead = [k for k in self._entries if k[0] < version]
        for k in dead:
            del self._entries[k]
        self.stats.invalidated += len(dead)
        return len(dead)
