"""Admission control and per-tenant fair-share scheduling.

Each tenant owns a *bounded* FIFO queue (admission control: a full
queue rejects instead of growing without bound — load shedding at the
edge, not OOM in the middle) and a **stride-scheduling** pass value.
When the service forms a launch window it repeatedly takes the head
request of the tenant with the smallest pass value among tenants whose
head has already *arrived* on the virtual clock; serving one request
advances that tenant's pass by ``1 / weight``.  Over any interval in
which two tenants are both backlogged, tenant throughput is therefore
proportional to weight — a heavy tenant cannot starve a light one, and
weights buy differentiated service.

The scheduler is deliberately ignorant of batching: it decides *which*
requests enter the window (fairness), the batcher decides *how* the
window executes (legality).  That separation keeps fairness auditable —
the window order is a pure function of arrivals, weights and queue
history.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's service contract.

    ``chaos`` (a :class:`repro.legion.chaos.ChaosConfig`) marks the
    tenant *isolated*: its requests execute on a dedicated runtime with
    its own fault injector and checkpoint epochs, so injected faults
    (and the recovery machinery) never touch other tenants.
    """

    name: str
    weight: float = 1.0
    max_queue: int = 32
    chaos: object = None  # Optional[ChaosConfig]; object avoids the import

    @property
    def isolated(self) -> bool:
        return self.chaos is not None


@dataclass
class Request:
    """One client request: an SpMV right-hand side against the model."""

    rid: int
    tenant: str
    x: np.ndarray
    arrival: float
    # Matrix version pinned at admission: a model update between
    # admission and execution must not silently change what this
    # request computes (and version mismatch splits batches).
    version: int = 0


@dataclass
class _TenantState:
    config: TenantConfig
    queue: deque = field(default_factory=deque)
    pass_value: float = 0.0
    admitted: int = 0
    rejected: int = 0
    served: int = 0

    @property
    def stride(self) -> float:
        return 1.0 / max(self.config.weight, 1e-9)


class FairShareScheduler:
    """Bounded per-tenant queues + stride-scheduled window formation."""

    def __init__(self) -> None:
        self._tenants: Dict[str, _TenantState] = {}
        self._rid = itertools.count()

    # -- tenants --------------------------------------------------------
    def register(self, config: TenantConfig) -> None:
        if config.name in self._tenants:
            raise ValueError(f"tenant {config.name!r} already registered")
        self._tenants[config.name] = _TenantState(config)

    def tenant(self, name: str) -> _TenantState:
        return self._tenants[name]

    @property
    def tenants(self) -> List[str]:
        return list(self._tenants)

    # -- admission ------------------------------------------------------
    def admit(
        self, tenant: str, x: np.ndarray, arrival: float, version: int
    ) -> Optional[Request]:
        """Enqueue a request, or None when the tenant queue is full."""
        state = self._tenants[tenant]
        if len(state.queue) >= state.config.max_queue:
            state.rejected += 1
            return None
        req = Request(next(self._rid), tenant, x, arrival, version)
        state.queue.append(req)
        state.admitted += 1
        return req

    # -- window formation -----------------------------------------------
    @property
    def pending(self) -> int:
        return sum(len(s.queue) for s in self._tenants.values())

    def earliest_arrival(self) -> Optional[float]:
        """The earliest queued head arrival, or None when idle."""
        heads = [
            s.queue[0].arrival for s in self._tenants.values() if s.queue
        ]
        return min(heads) if heads else None

    def take_window(self, now: float, limit: int) -> List[Request]:
        """Up to ``limit`` arrived requests in fair-share order.

        Repeatedly pops the head of the minimum-pass tenant among those
        whose head arrived by ``now``; ties break by tenant
        registration order (deterministic).  Serving a request advances
        the tenant's pass by its stride.
        """
        window: List[Request] = []
        while len(window) < limit:
            ready = [
                s
                for s in self._tenants.values()
                if s.queue and s.queue[0].arrival <= now
            ]
            if not ready:
                break
            state = min(ready, key=lambda s: s.pass_value)
            window.append(state.queue.popleft())
            state.pass_value += state.stride
            state.served += 1
        return window
