"""repro.serve — a long-lived multi-tenant serving layer.

The paper makes distributed sparse computing consumable from plain
Python; this package makes it *servable*: a long-lived service that
accepts many concurrent client requests against a shared sparse model
(e.g. MovieLens users querying a factored recommendation model), with

* admission control over bounded per-tenant queues,
* per-tenant fair-share scheduling of launch windows
  (:mod:`repro.serve.scheduler`),
* cross-request SpMV batching — compatible right-hand sides against the
  same matrix version stack into one multi-vector launch, bitwise
  identical to per-request execution (:mod:`repro.serve.batcher`),
* result caching keyed on (matrix version, input hash)
  (:mod:`repro.serve.cache`),
* per-tenant chaos/checkpoint isolation reusing the resilience
  machinery (isolated tenants run on dedicated runtimes with their own
  fault injectors and checkpoint epochs), and
* serving lints — unbatchable request mixes and cache-defeating input
  churn (:mod:`repro.serve.advisor`).

Execution is driven through the pluggable
:class:`repro.legion.backend.ExecutionBackend` (simulated /
synchronous-host / asyncio); modeled time and numerics are
backend-independent.
"""

from repro.legion.backend import (
    AsyncioBackend,
    ExecutionBackend,
    SimulatedClockBackend,
    SyncHostBackend,
    create_backend,
)
from repro.serve.advisor import lint_serve
from repro.serve.batcher import BatchKey, SpMVBatcher
from repro.serve.cache import ResultCache
from repro.serve.scheduler import FairShareScheduler, Request, TenantConfig
from repro.serve.service import (
    Response,
    ServiceConfig,
    SparseService,
    ServeStats,
)

__all__ = [
    "AsyncioBackend",
    "BatchKey",
    "ExecutionBackend",
    "FairShareScheduler",
    "Request",
    "ResultCache",
    "Response",
    "ServeStats",
    "ServiceConfig",
    "SimulatedClockBackend",
    "SparseService",
    "SpMVBatcher",
    "SyncHostBackend",
    "TenantConfig",
    "create_backend",
    "lint_serve",
]
