"""The long-lived multi-tenant service.

One :class:`SparseService` owns a shared model (a sparse matrix,
optionally re-trained over time — every update bumps the *matrix
version*) and serves SpMV requests from many tenants:

1. **admission** — :meth:`submit` pins the current matrix version and
   enqueues onto the tenant's bounded queue (or rejects: load
   shedding);
2. **scheduling** — each round, the fair-share scheduler forms a launch
   window from arrived requests (:mod:`repro.serve.scheduler`);
3. **caching** — requests whose (version, input hash) was served
   before answer immediately, no launch
   (:mod:`repro.serve.cache`);
4. **batching** — remaining requests stack into multi-RHS launches
   where legal (:mod:`repro.serve.batcher`), bitwise identical to
   per-request execution;
5. **isolation** — tenants with a chaos config run on *dedicated*
   runtimes with their own fault injectors and checkpoint epochs
   (:meth:`Runtime.reset_for_program` at request-program boundaries),
   so injected faults and recovery stalls never touch other tenants.

Time is modeled: request arrivals, queue waits, launch overheads and
kernel times all live on the runtime's virtual clocks, so reported
latency percentiles are *modeled* latencies — measured claims, same as
the paper figures.  How client programs are *driven* (sequentially or
interleaved on an asyncio loop) is the execution backend's choice and
never changes results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.legion.backend import AsyncioBackend
from repro.legion.exceptions import FaultError
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, summit
from repro.serve.advisor import lint_serve
from repro.serve.batcher import SpMVBatcher
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.scheduler import FairShareScheduler, Request, TenantConfig


@dataclass
class ServiceConfig:
    """Service-wide knobs (tenant contracts live in TenantConfig)."""

    procs: int = 2
    nodes: int = 1
    window: int = 8  # requests per scheduling round
    max_batch: int = 8  # stacked RHS per launch; 1 disables batching
    cache_capacity: int = 256
    backend: str = "simulated"  # simulated | sync | asyncio
    validate: bool = False
    profile: bool = False


@dataclass
class Response:
    """One served request, with its modeled timing."""

    rid: int
    tenant: str
    ok: bool
    y: Optional[np.ndarray]
    arrival: float
    start: float
    finish: float
    batch_width: int = 1
    cache_hit: bool = False
    error: str = ""

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServeStats:
    """Aggregated traffic statistics (the advisor lints read these)."""

    requests_admitted: int = 0
    requests_rejected: int = 0
    requests_served: int = 0
    requests_failed: int = 0
    launches: int = 0
    batches: int = 0
    batched_requests: int = 0
    refusals: Dict[str, int] = field(default_factory=dict)
    cache: CacheStats = field(default_factory=CacheStats)
    cache_capacity: int = 0
    per_tenant: Dict[str, Dict[str, int]] = field(default_factory=dict)


class _Domain:
    """One execution context: a runtime plus per-version matrices.

    The shared domain serves every non-isolated tenant; each isolated
    tenant gets its own domain (own runtime → own chaos injector,
    checkpoint epochs, clocks and instances).
    """

    def __init__(self, name: str, runtime: Runtime, max_batch: int):
        self.name = name
        self.runtime = runtime
        self.batcher = SpMVBatcher(max_batch=max_batch)
        self.matrices: Dict[int, Any] = {}  # version -> csr_matrix

    def matrix_for(self, service: "SparseService", version: int):
        """The domain's csr build of one model version (lazy)."""
        matrix = self.matrices.get(version)
        if matrix is None:
            import repro.sparse as sp

            with runtime_scope(self.runtime):
                matrix = sp.csr_matrix(service._host_versions[version])
            self.matrices[version] = matrix
        return matrix


class SparseService:
    """A long-lived server for SpMV requests against a shared model."""

    def __init__(
        self,
        host_matrix: Any,
        tenants: Sequence[TenantConfig],
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.scheduler = FairShareScheduler()
        self.cache = ResultCache(capacity=self.config.cache_capacity)
        self.responses: Dict[int, Response] = {}
        self.version = 0
        self._host_versions: Dict[int, Any] = {0: host_matrix}
        self._machine = summit(nodes=self.config.nodes)
        self._domains: Dict[str, _Domain] = {}
        shared_rt = self._make_runtime(chaos=None)
        self._shared = _Domain("shared", shared_rt, self.config.max_batch)
        self._domains["shared"] = self._shared
        for tenant in tenants:
            self.scheduler.register(tenant)
            if tenant.isolated:
                rt = self._make_runtime(chaos=tenant.chaos)
                self._domains[tenant.name] = _Domain(
                    tenant.name, rt, self.config.max_batch
                )
        self._tenant_configs = {t.name: t for t in tenants}
        self._open_streams = 0

    def _make_runtime(self, chaos) -> Runtime:
        return Runtime(
            self._machine.scope(ProcessorKind.GPU, self.config.procs),
            RuntimeConfig.legate(
                chaos=chaos,
                validate=self.config.validate,
                profile=self.config.profile,
                backend=self.config.backend,
            ),
        )

    @property
    def runtime(self) -> Runtime:
        """The shared domain's runtime (the service clock)."""
        return self._shared.runtime

    def _domain_for(self, tenant: str) -> _Domain:
        return self._domains.get(tenant, self._shared)

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    def update_model(self, host_matrix: Any) -> int:
        """Publish a new model version; returns the version number.

        Already-admitted requests keep their pinned version (the
        per-version matrix builds stay addressable), new admissions see
        the new version, and cache entries for older versions are
        eagerly invalidated.
        """
        self.version += 1
        self._host_versions[self.version] = host_matrix
        self.cache.invalidate_before(self.version)
        return self.version

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self, tenant: str, x: np.ndarray, arrival: float
    ) -> Optional[int]:
        """Admit a request; returns its rid, or None when shed."""
        req = self.scheduler.admit(
            tenant, np.asarray(x), arrival, self.version
        )
        if req is None:
            self.runtime.profiler.record_serve_rejection()
            return None
        return req.rid

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def run(self) -> Dict[int, Response]:
        """Drain every queue through the execution backend; responses."""
        self.runtime.backend.run_programs([self._drain])
        return self.responses

    def _drain(self) -> None:
        while self.scheduler.pending:
            if not self._run_window():
                break

    def serve_streams(
        self, streams: Dict[str, List[Tuple[float, np.ndarray]]]
    ) -> Dict[int, Response]:
        """Serve per-tenant request streams.

        Under the asyncio backend each tenant is a client coroutine
        submitting its stream concurrently while a consumer coroutine
        drains windows — the multi-client serving shape.  Under the
        sequential backends all requests are admitted in arrival order
        and drained.  Results are bitwise-identical either way (window
        composition may differ; batching never changes bits).
        """
        backend = self.runtime.backend
        if isinstance(backend, AsyncioBackend):
            self._open_streams = len(streams)

            def producer(tenant, items):
                async def _produce():
                    for arrival, x in items:
                        self.submit(tenant, x, arrival)
                        await backend.checkpoint_yield()
                    self._open_streams -= 1

                return _produce

            async def _consume():
                while self._open_streams or self.scheduler.pending:
                    self._run_window()
                    await backend.checkpoint_yield()

            backend.run_programs(
                [_consume] + [producer(t, i) for t, i in streams.items()]
            )
            return self.responses
        ordered = sorted(
            (
                (arrival, tenant, x)
                for tenant, items in streams.items()
                for arrival, x in items
            ),
            key=lambda item: item[0],
        )
        for arrival, tenant, x in ordered:
            self.submit(tenant, x, arrival)
        return self.run()

    def _run_window(self) -> bool:
        """One scheduling round; False when nothing could progress."""
        rt = self.runtime
        head = self.scheduler.earliest_arrival()
        if head is None:
            return False
        if head > rt.issue_time:
            # Idle: the service sleeps until the next arrival.
            rt.issue_time = head
        now = rt.issue_time
        window = self.scheduler.take_window(now, self.config.window)
        if not window:
            return False
        by_domain: Dict[str, List[Request]] = {}
        for req in window:
            key = self.cache.key(req.version, req.x)
            cached = self.cache.get(key)
            rt.profiler.record_serve_cache(cached is not None)
            if cached is not None:
                # Served straight from cache: no launch, the request
                # completes at the moment the window formed.
                self.responses[req.rid] = Response(
                    req.rid, req.tenant, True, cached.copy(),
                    req.arrival, now, max(now, req.arrival),
                    cache_hit=True,
                )
                continue
            domain = self._domain_for(req.tenant)
            by_domain.setdefault(domain.name, []).append(req)
        for name, reqs in by_domain.items():
            self._execute(self._domains[name], reqs)
        return True

    def _execute(self, domain: _Domain, requests: List[Request]) -> None:
        """Plan and run one domain's share of the window."""
        drt = domain.runtime
        for batch in domain.batcher.plan(requests):
            # An isolated domain's clock may trail the service clock
            # (it only advances while its tenant is served); a batch
            # starts no earlier than the service round that formed it
            # and no earlier than its members arrived.
            drt.issue_time = max(
                drt.issue_time,
                self.runtime.issue_time,
                max(r.arrival for r in batch.requests),
            )
            start = drt.issue_time
            matrix = domain.matrix_for(self, batch.key.matrix_version)
            try:
                with runtime_scope(drt):
                    results = domain.batcher.execute(batch, matrix, drt)
                    finish = drt.elapsed()
            except FaultError as exc:
                finish = drt.backend.horizon(drt.machine)
                for req in batch.requests:
                    self.responses[req.rid] = Response(
                        req.rid, req.tenant, False, None,
                        req.arrival, start, finish,
                        batch_width=batch.width, error=str(exc),
                    )
                continue
            finally:
                if domain is not self._shared:
                    # Per-tenant checkpoint isolation: each request
                    # program ends at an epoch boundary, so a later
                    # loss in this tenant's domain never replays into
                    # another program's state.
                    drt.reset_for_program()
            for req, y in results:
                self.cache.put(self.cache.key(req.version, req.x), y)
                self.responses[req.rid] = Response(
                    req.rid, req.tenant, True, y,
                    req.arrival, start, finish,
                    batch_width=batch.width,
                )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> ServeStats:
        """Aggregate scheduler/batcher/cache counters for reporting."""
        stats = ServeStats(
            cache=self.cache.stats, cache_capacity=self.cache.capacity
        )
        for name in self.scheduler.tenants:
            state = self.scheduler.tenant(name)
            stats.requests_admitted += state.admitted
            stats.requests_rejected += state.rejected
            stats.per_tenant[name] = {
                "admitted": state.admitted,
                "rejected": state.rejected,
                "served": state.served,
            }
        for resp in self.responses.values():
            if resp.ok:
                stats.requests_served += 1
            else:
                stats.requests_failed += 1
        for domain in self._domains.values():
            batcher = domain.batcher
            stats.batches += batcher.batches_executed
            stats.batched_requests += batcher.requests_batched
            for reason, count in batcher.refusals.items():
                stats.refusals[reason] = (
                    stats.refusals.get(reason, 0) + count
                )
        # Launches = batched launches + singleton launches (served
        # requests that were neither cached nor batched).
        singletons = (
            stats.requests_served
            + stats.requests_failed
            - stats.batched_requests
            - self.cache.stats.hits
        )
        stats.launches = stats.batches + max(singletons, 0)
        return stats

    def advise(self):
        """Serving lints over the aggregated stats (see serve.advisor)."""
        return lint_serve(self.stats())
