"""Distributed prefix sums: the classic two-phase parallel scan.

cuNumeric implements NumPy's ``cumsum`` with a multi-pass scan; this
module does the same on our runtime.  Phase 1 computes each shard's
local inclusive scan and its total; the totals are themselves scanned
(they are tiny — one value per processor, combined on the host exactly
as cuNumeric folds its per-shard futures); phase 2 adds each shard's
base offset.  The sparse library uses :func:`exclusive_scan` to build
``pos`` arrays from per-row counts without a host round-trip.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.constraints import AutoTask
from repro.legion.future import Future
from repro.numeric.array import Scalar, ndarray
from repro.numeric.creation import _make


def _scan_cost(ctx):
    vol = ctx.rect("out").volume()
    return float(vol), 2.0 * vol * ctx.arrays["out"].dtype.itemsize


def cumsum(a: ndarray, dtype=None) -> ndarray:
    """Inclusive prefix sum of a 1-D array (``numpy.cumsum``)."""
    if a.ndim != 1:
        raise ValueError("cumsum supports 1-D arrays")
    rt = a.store.runtime
    out_dtype = np.dtype(
        dtype if dtype is not None
        else (np.int64 if a.dtype.kind in "iu" else a.dtype)
    )
    out = _make(a.shape, out_dtype, runtime=rt)

    # Phase 1: local inclusive scans; each shard returns its total.
    # The runtime's scalar reduction gathers the totals; we need the
    # per-shard partials, so collect them via a 'sum' of a list trick:
    # instead, stash them in a side list (deterministic shard order).
    totals: list = []

    def local_kernel(ctx):
        view_in = ctx.view("a")
        view_out = ctx.view("out")
        if view_in.size:
            np.cumsum(view_in, out=view_out)
            totals.append((ctx.color, view_out[-1]))
        else:
            totals.append((ctx.color, out_dtype.type(0)))
        return 0.0

    task = AutoTask(rt, "scan_local", local_kernel, _scan_cost)
    task.add_output("out", out.store)
    task.add_input("a", a.store)
    task.add_alignment_constraint(out.store, a.store)
    task.set_scalar_reduction("sum")
    sync = task.execute()

    # Phase 2: scan the shard totals (host-side fold of per-shard
    # futures, like cuNumeric) and add each shard's base offset.
    totals.sort(key=lambda t: t[0])
    bases = np.zeros(len(totals) + 1, dtype=out_dtype)
    np.cumsum([t[1] for t in totals], out=bases[1:])

    def offset_kernel(ctx):
        base = bases[ctx.color]
        if base != 0:
            ctx.view("out")[...] += base

    task = AutoTask(rt, "scan_offset", offset_kernel, _scan_cost)
    task.add_inout("out", out.store)
    task.add_scalar_arg("sync", sync)
    task.execute()
    return out


def exclusive_scan(a: ndarray, dtype=None) -> Tuple[ndarray, Scalar]:
    """Exclusive prefix sum plus the grand total.

    ``out[i] = sum(a[:i])``; the total is what the sparse library sizes
    output ``crd``/``vals`` regions with during two-pass assembly.
    """
    inclusive = cumsum(a, dtype=dtype)
    rt = a.store.runtime
    out = _make(a.shape, inclusive.dtype, runtime=rt)

    def shift_kernel(ctx):
        r = ctx.rect("out")
        lo, hi = r.lo[0], r.hi[0]
        if hi <= lo:
            return 0
        inc = ctx.arrays["inc"]
        view = ctx.view("out")
        view[0] = inc[lo - 1] if lo > 0 else 0
        view[1:] = inc[lo : hi - 1]
        return 0

    # The shard needs its left neighbour's last element: an explicit
    # one-element-shifted partition (a halo in the other direction).
    from repro.geometry import Rect
    from repro.legion.partition import ExplicitPartition, Tiling

    tiling = Tiling.create(out.store.region, rt.num_procs)
    rects = []
    for c in range(tiling.color_count):
        r = tiling.rect(c)
        if r.is_empty():
            rects.append(r)
            continue
        rects.append(Rect((max(0, r.lo[0] - 1),), (max(r.hi[0] - 1, r.lo[0]),)))
    task = AutoTask(rt, "scan_shift", shift_kernel, _scan_cost)
    task.add_output("out", out.store)
    task.add_input("inc", inclusive.store)
    task.add_explicit_partition(out.store, tiling)
    task.add_explicit_partition(inclusive.store, ExplicitPartition(inclusive.store.region, rects))
    task.execute()

    n = a.shape[0]
    if n == 0:
        total = Scalar(Future.ready(inclusive.dtype.type(0)), rt)
    else:
        rt.barrier()
        total = Scalar(Future(inclusive.store.data[-1], rt.issue_time), rt)
    return out, total
