"""The distributed ``ndarray`` and deferred ``Scalar`` types."""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple, Union

import numpy as np

from repro.constraints import Store
from repro.legion.future import Future
from repro.legion.runtime import Runtime, get_runtime

newaxis = None


class Scalar:
    """A deferred scalar: the result of a distributed reduction.

    Arithmetic between scalars (and Python numbers) is free and lazy —
    ready times propagate through :class:`Future` combinators.  Consuming
    the value (``float()``, comparisons, ``bool()``) synchronizes the
    issuing program with the reduction, putting allreduce latency on the
    critical path exactly when SciPy-style control flow demands it.
    """

    __slots__ = ("future", "runtime")

    def __init__(self, future: Future, runtime: Optional[Runtime] = None):
        self.future = future
        self.runtime = runtime or get_runtime()

    # -- synchronizing accessors ---------------------------------------
    @property
    def value(self):
        """Synchronize and return the underlying value."""
        return self.runtime.wait(self.future)

    def item(self):
        """Synchronize and return the Python value."""
        return self.value

    def __float__(self) -> float:
        return float(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __complex__(self) -> complex:
        return complex(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    # -- lazy arithmetic ------------------------------------------------
    @staticmethod
    def _lift(other) -> Optional[Future]:
        if isinstance(other, Scalar):
            return other.future
        if isinstance(other, (int, float, complex, np.integer, np.floating, np.complexfloating)):
            return Future.ready(other)
        return None

    def _combine(self, other, fn) -> "Scalar":
        rhs = self._lift(other)
        if rhs is None:
            return NotImplemented
        return Scalar(Future.combine(fn, self.future, rhs), self.runtime)

    def __add__(self, other):
        return self._combine(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other):
        return self._combine(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._combine(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self._combine(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._combine(other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return self._combine(other, lambda a, b: b / a)

    def __pow__(self, other):
        return self._combine(other, lambda a, b: a**b)

    def __neg__(self):
        return Scalar(self.future.map(lambda v: -v), self.runtime)

    def __abs__(self):
        return Scalar(self.future.map(abs), self.runtime)

    def sqrt(self) -> "Scalar":
        """Deferred square root."""
        return Scalar(self.future.map(lambda v: v**0.5), self.runtime)

    def conjugate(self) -> "Scalar":
        """Deferred complex conjugate."""
        return Scalar(self.future.map(np.conjugate), self.runtime)

    # -- synchronizing comparisons --------------------------------------
    def __lt__(self, other):
        return self.value < _scalar_value(other)

    def __le__(self, other):
        return self.value <= _scalar_value(other)

    def __gt__(self, other):
        return self.value > _scalar_value(other)

    def __ge__(self, other):
        return self.value >= _scalar_value(other)

    def __eq__(self, other):
        return self.value == _scalar_value(other)

    def __ne__(self, other):
        return self.value != _scalar_value(other)

    def __hash__(self):  # pragma: no cover - rarely used
        return hash(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scalar({self.future!r})"


def _scalar_value(x):
    return x.value if isinstance(x, Scalar) else x


ScalarLike = Union[int, float, complex, Scalar, np.number]


def is_scalar_like(x) -> bool:
    """True for Python/NumPy scalars and deferred Scalars."""
    return isinstance(
        x, (int, float, complex, Scalar, np.integer, np.floating, np.complexfloating, np.bool_)
    )


class ndarray:
    """A distributed dense array backed by a store."""

    __slots__ = ("store",)

    def __init__(self, store: Store):
        self.store = store

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape."""
        return self.store.shape

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self.store.dtype

    @property
    def ndim(self) -> int:
        """Number of dimensions (1 or 2)."""
        return self.store.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.store.size

    @property
    def nbytes(self) -> int:
        """Logical size in bytes."""
        return self.store.nbytes

    @property
    def runtime(self) -> Runtime:
        """The runtime this array belongs to."""
        return self.store.runtime

    def __len__(self) -> int:
        return self.shape[0]

    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Synchronize and return a host copy of the exact contents."""
        self.runtime.barrier()
        return self.store.data.copy()

    __array__ = to_numpy

    def item(self):
        """Synchronize and return the single element."""
        if self.size != 1:
            raise ValueError("item() requires a single-element array")
        self.runtime.barrier()
        return self.store.data.reshape(-1)[0].item()

    def fill(self, value) -> None:
        """Distributed fill with a constant."""
        from repro.numeric.creation import fill_inplace

        fill_inplace(self, value)

    def copy(self) -> "ndarray":
        """A distributed copy."""
        from repro.numeric.ufunc import positive_copy

        return positive_copy(self)

    def astype(self, dtype) -> "ndarray":
        """A cast copy."""
        from repro.numeric.ufunc import astype

        return astype(self, dtype)

    def conj(self) -> "ndarray":
        """Element-wise complex conjugate."""
        from repro.numeric.ufunc import conj

        return conj(self)

    @property
    def real(self) -> "ndarray":
        """Real part."""
        from repro.numeric.ufunc import real

        return real(self)

    @property
    def imag(self) -> "ndarray":
        """Imaginary part."""
        from repro.numeric.ufunc import imag

        return imag(self)

    @property
    def T(self) -> "ndarray":
        """2-D transpose (a copy task; all-to-all-shaped movement)."""
        from repro.numeric.indexing import transpose

        return transpose(self)

    def sum(self):
        """Sum of all elements (a deferred Scalar)."""
        from repro.numeric.reductions import sum as _sum

        return _sum(self)

    def max(self):
        """Maximum element (a deferred Scalar)."""
        from repro.numeric.reductions import amax

        return amax(self)

    def min(self):
        """Minimum element (a deferred Scalar)."""
        from repro.numeric.reductions import amin

        return amin(self)

    def mean(self):
        """Mean of all elements (a deferred Scalar)."""
        from repro.numeric.reductions import mean

        return mean(self)

    def dot(self, other) -> Scalar:
        """Inner product with another 1-D array."""
        from repro.numeric.reductions import dot

        return dot(self, other)

    def cumsum(self, dtype=None) -> "ndarray":
        """Distributed inclusive prefix sum."""
        from repro.numeric.scan import cumsum

        return cumsum(self, dtype=dtype)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _binary(self, other, name, reflect=False):
        from repro.numeric import ufunc

        op = getattr(ufunc, name)
        if isinstance(other, ndarray) or is_scalar_like(other):
            if reflect:
                return op(other, self)
            return op(self, other)
        return NotImplemented

    def __add__(self, other):
        return self._binary(other, "add")

    def __radd__(self, other):
        return self._binary(other, "add", reflect=True)

    def __sub__(self, other):
        return self._binary(other, "subtract")

    def __rsub__(self, other):
        return self._binary(other, "subtract", reflect=True)

    def __mul__(self, other):
        return self._binary(other, "multiply")

    def __rmul__(self, other):
        return self._binary(other, "multiply", reflect=True)

    def __truediv__(self, other):
        return self._binary(other, "divide")

    def __rtruediv__(self, other):
        return self._binary(other, "divide", reflect=True)

    def __pow__(self, other):
        return self._binary(other, "power")

    def __neg__(self):
        from repro.numeric.ufunc import negative

        return negative(self)

    def __abs__(self):
        from repro.numeric.ufunc import absolute

        return absolute(self)

    # In-place operators reuse the binary kernels with ``out=self``.
    def _inplace(self, other, name):
        from repro.numeric import ufunc

        op = getattr(ufunc, name)
        result = op(self, other, out=self)
        if result is NotImplemented:  # pragma: no cover - defensive
            raise TypeError(f"unsupported operand for in-place {name}")
        return self

    def __iadd__(self, other):
        return self._inplace(other, "add")

    def __isub__(self, other):
        return self._inplace(other, "subtract")

    def __imul__(self, other):
        return self._inplace(other, "multiply")

    def __itruediv__(self, other):
        return self._inplace(other, "divide")

    def __matmul__(self, other):
        from repro.numeric.indexing import matmul

        if isinstance(other, ndarray):
            return matmul(self, other)
        return NotImplemented

    # Comparisons return distributed boolean arrays (NumPy semantics).
    def __lt__(self, other):
        return self._binary(other, "less")

    def __le__(self, other):
        return self._binary(other, "less_equal")

    def __gt__(self, other):
        return self._binary(other, "greater")

    def __ge__(self, other):
        return self._binary(other, "greater_equal")

    def __eq__(self, other):
        if isinstance(other, ndarray) or is_scalar_like(other):
            return self._binary(other, "equal")
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, ndarray) or is_scalar_like(other):
            return self._binary(other, "not_equal")
        return NotImplemented

    __hash__ = None  # mutable container with == returning arrays

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        from repro.numeric.indexing import getitem

        return getitem(self, key)

    def __setitem__(self, key, value):
        from repro.numeric.indexing import setitem

        setitem(self, key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ndarray(shape={self.shape}, dtype={self.dtype})"


def from_store(store: Store) -> ndarray:
    """Wrap an existing store as an ndarray."""
    return ndarray(store)
