"""Task fusion via expression templates (Sundram et al., cited in §6.1).

The paper attributes part of Legate's small-task overhead to launching
one task per element-wise operation and cites *task fusion* as the fix.
This module implements user-directed fusion: wrap operands in
:func:`lazy`, compose an arbitrary element-wise expression, and
:func:`evaluate` launches **one** task that computes the whole tree per
shard::

    from repro.numeric.lazy import lazy, evaluate
    y = evaluate(lazy(x) * 2.0 + lazy(b) / lazy(d))   # one launch

All leaf arrays are aligned by the constraint solver exactly as the
unfused chain would have been; numerics are bitwise identical for the
same evaluation order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.constraints import AutoTask
from repro.numeric import optable
from repro.numeric.array import Scalar, is_scalar_like, ndarray
from repro.numeric.creation import _make


class LazyExpr:
    """A node of the deferred element-wise expression tree."""

    def __init__(self, op: str, args: Tuple[Any, ...]):
        self.op = op
        self.args = args

    # -- composition ----------------------------------------------------
    def _bin(self, other, op, reflect=False):
        other = _lift(other)
        if other is None:
            return NotImplemented
        return LazyExpr(op, (other, self) if reflect else (self, other))

    def __add__(self, other):
        return self._bin(other, "add")

    def __radd__(self, other):
        return self._bin(other, "add", reflect=True)

    def __sub__(self, other):
        return self._bin(other, "sub")

    def __rsub__(self, other):
        return self._bin(other, "sub", reflect=True)

    def __mul__(self, other):
        return self._bin(other, "mul")

    def __rmul__(self, other):
        return self._bin(other, "mul", reflect=True)

    def __truediv__(self, other):
        return self._bin(other, "div")

    def __rtruediv__(self, other):
        return self._bin(other, "div", reflect=True)

    def __pow__(self, other):
        return self._bin(other, "pow")

    def __neg__(self):
        return LazyExpr("neg", (self,))

    def __abs__(self):
        return LazyExpr("abs", (self,))

    def sqrt(self):
        """Deferred element-wise square root."""
        return LazyExpr("sqrt", (self,))

    def exp(self):
        """Deferred element-wise exponential."""
        return LazyExpr("exp", (self,))

    # -- introspection ----------------------------------------------------
    def leaves(self) -> List[ndarray]:
        """The distinct array leaves of the tree."""
        out: List[ndarray] = []
        seen = set()

        def walk(node):
            if isinstance(node, LazyExpr):
                if node.op == "leaf":
                    arr = node.args[0]
                    if id(arr) not in seen:
                        seen.add(id(arr))
                        out.append(arr)
                else:
                    for arg in node.args:
                        walk(arg)

        walk(self)
        return out

    def op_count(self) -> int:
        """Number of fused operations."""
        if self.op in ("leaf", "scalar"):
            return 0
        return 1 + sum(
            a.op_count() for a in self.args if isinstance(a, LazyExpr)
        )

    def evaluate(self) -> ndarray:
        """Launch the single fused task."""
        return evaluate(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "leaf":
            return f"leaf{self.args[0].shape}"
        if self.op == "scalar":
            return repr(self.args[0])
        return f"{self.op}({', '.join(map(repr, self.args))})"


def lazy(arr: ndarray) -> LazyExpr:
    """Wrap a distributed array as an expression leaf."""
    if isinstance(arr, LazyExpr):
        return arr
    if not isinstance(arr, ndarray):
        raise TypeError("lazy() wraps distributed arrays")
    return LazyExpr("leaf", (arr,))


def _lift(value) -> Optional[LazyExpr]:
    if isinstance(value, LazyExpr):
        return value
    if isinstance(value, ndarray):
        return lazy(value)
    if isinstance(value, Scalar):
        return LazyExpr("scalar", (value,))
    if is_scalar_like(value):
        return LazyExpr("scalar", (value,))
    return None


def evaluate(expr: LazyExpr, out: Optional[ndarray] = None) -> ndarray:
    """Launch one fused task computing the expression tree."""
    if not isinstance(expr, LazyExpr):
        raise TypeError("evaluate() expects a lazy expression")
    leaves = expr.leaves()
    if not leaves:
        raise ValueError("expression has no array leaves")
    shape = leaves[0].shape
    for idx, leaf in enumerate(leaves):
        if leaf.shape != shape:
            ref = leaves[0].store.region.name or "in0"
            name = leaf.store.region.name or f"in{idx}"
            op = _op_of(expr, leaf)
            where = f" (operand of {op!r})" if op else ""
            raise ValueError(
                f"shape mismatch in fused expression: leaf {idx} "
                f"{name!r} has shape {leaf.shape}{where}, but leaf 0 "
                f"{ref!r} has shape {shape}"
            )
    rt = leaves[0].store.runtime
    dtype = np.result_type(*[leaf.dtype for leaf in leaves], np.float64)
    if out is None:
        out = _make(shape, dtype, runtime=rt)

    names = {id(leaf): f"in{idx}" for idx, leaf in enumerate(leaves)}
    scalars: Dict[str, Any] = {}

    # Flatten the tree into a postfix program the kernel interprets —
    # keeps the kernel picklable and avoids exec'ing user data.  Ops
    # resolve through the shared table (repro.numeric.optable), the
    # same callables the eager ufunc layer uses.
    program: List[Tuple[str, Any]] = []
    op_names: List[str] = []

    def emit(node: LazyExpr) -> None:
        if node.op == "leaf":
            program.append(("load", names[id(node.args[0])]))
        elif node.op == "scalar":
            val = node.args[0]
            key = f"s{len(scalars)}"
            scalars[key] = val.future if isinstance(val, Scalar) else val
            program.append(("scalar", key))
        elif optable.is_unop(node.op):
            emit(node.args[0])
            program.append(("un", node.op))
            op_names.append(optable.canonical(node.op))
        elif optable.is_binop(node.op):
            emit(node.args[0])
            emit(node.args[1])
            program.append(("bin", node.op))
            op_names.append(optable.canonical(node.op))
        else:  # pragma: no cover - composition guards this
            raise ValueError(f"unknown op {node.op!r}")

    emit(expr)

    def kernel(ctx):
        stack: List[Any] = []
        for kind, arg in program:
            if kind == "load":
                stack.append(ctx.view(arg))
            elif kind == "scalar":
                stack.append(ctx.scalar(arg))
            elif kind == "un":
                stack.append(optable.unop(arg)(stack.pop()))
            else:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(optable.binop(arg)(lhs, rhs))
        ctx.view("out")[...] = stack.pop()

    n_ops = expr.op_count()

    def cost(ctx):
        vol = ctx.rect("out").volume()
        nbytes = sum(
            ctx.rects[name].volume() * ctx.arrays[name].dtype.itemsize
            for name in ctx.rects
        )
        return float(vol * max(n_ops, 1)), nbytes

    task = AutoTask(rt, f"fused[{n_ops}ops]", kernel, cost)
    task.add_output("out", out.store)
    for leaf in leaves:
        task.add_input(names[id(leaf)], leaf.store)
        task.add_alignment_constraint(out.store, leaf.store)
    for key, val in scalars.items():
        task.add_scalar_arg(key, val)
    # The postfix program *is* the kernel body — expose it as the
    # launch's body IR so the dependence analyzer can body-merge a
    # lazy chain with its neighbours in the deferred window.
    task.set_pointwise(*op_names, expr=tuple(program), out="out")
    task.execute()
    return out


def _op_of(expr: LazyExpr, arr: ndarray) -> Optional[str]:
    """The op whose subtree first references ``arr`` (error context)."""
    found: List[str] = []

    def walk(node, parent: Optional[str]) -> None:
        if not isinstance(node, LazyExpr) or found:
            return
        if node.op == "leaf":
            if node.args[0] is arr and parent is not None:
                found.append(parent)
            return
        here = parent if node.op == "scalar" else node.op
        for arg in node.args:
            walk(arg, here)

    walk(expr, None)
    return found[0] if found else None
