"""``repro.numeric``: a distributed, deferred-execution NumPy subset.

This is the reproduction's cuNumeric (paper §2.3): dense arrays are
backed by regions, partitioned through the same constraint system as the
sparse library, and every operation is a task launch.  The two libraries
never call into each other's internals — they compose only through
stores, key partitions and the shared mapping layer, which is the
paper's central composability claim.

The implemented subset is what the paper's workloads use: element-wise
arithmetic (real and complex), reductions (sum/min/max/dot/norm),
creation routines, random number generation, gather/scatter by index
arrays, and basic slicing.  Deviations from NumPy semantics (slices are
copies, not views) are listed in DESIGN.md.
"""

from repro.numeric import linalg, random
from repro.numeric.array import Scalar, ndarray, newaxis
from repro.numeric.creation import (
    arange,
    array,
    asarray,
    empty,
    empty_like,
    full,
    full_like,
    linspace,
    ones,
    ones_like,
    zeros,
    zeros_like,
)
from repro.numeric.indexing import concatenate, gather_rows, scatter_add
from repro.numeric.reductions import (
    allclose,
    amax,
    amin,
    argmax,
    argmin,
    array_equal,
    count_nonzero,
    dot,
    mean,
    prod,
    sum,
    vdot,
)
from repro.numeric.autograd import grad
from repro.numeric.lazy import LazyExpr, evaluate, lazy
from repro.numeric.scan import cumsum, exclusive_scan
from repro.numeric.ufunc import (
    absolute,
    add,
    ceil,
    clip,
    conj,
    conjugate,
    cos,
    divide,
    equal,
    exp,
    floor,
    greater,
    greater_equal,
    imag,
    isfinite,
    isnan,
    less,
    less_equal,
    log,
    maximum,
    minimum,
    multiply,
    negative,
    not_equal,
    power,
    real,
    rint,
    sign,
    sin,
    sqrt,
    square,
    subtract,
    tanh,
    true_divide,
    where,
)

abs = absolute  # noqa: A001 - mirrors the NumPy namespace

__all__ = [
    "Scalar",
    "absolute",
    "abs",
    "add",
    "amax",
    "amin",
    "arange",
    "array",
    "asarray",
    "conj",
    "conjugate",
    "cos",
    "cumsum",
    "divide",
    "dot",
    "empty",
    "empty_like",
    "exclusive_scan",
    "exp",
    "full",
    "full_like",
    "gather_rows",
    "imag",
    "linalg",
    "linspace",
    "log",
    "maximum",
    "mean",
    "minimum",
    "multiply",
    "ndarray",
    "negative",
    "newaxis",
    "ones",
    "ones_like",
    "power",
    "prod",
    "random",
    "real",
    "scatter_add",
    "sign",
    "sin",
    "sqrt",
    "square",
    "subtract",
    "sum",
    "tanh",
    "true_divide",
    "vdot",
    "zeros",
    "zeros_like",
] + [
    'LazyExpr', 'evaluate', 'grad', 'lazy',
    'allclose', 'argmax', 'argmin', 'array_equal', 'ceil', 'clip', 'concatenate', 'count_nonzero', 'equal', 'floor', 'greater', 'greater_equal', 'isfinite', 'isnan', 'less', 'less_equal', 'not_equal', 'rint', 'where',
]
