"""Distributed random number generation.

Each shard draws from its own generator seeded by ``(seed, draw counter,
shard color)``, so results are deterministic for a given runtime seed and
processor count (they are *not* bit-identical to NumPy's, which a
distributed generator cannot be).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.constraints import AutoTask
from repro.legion.runtime import get_runtime
from repro.numeric.array import ndarray
from repro.numeric.creation import _make, _normalize_shape

_seed = 0x1234
_counter = itertools.count()


def seed(value: int) -> None:
    """Reset the distributed RNG streams."""
    global _seed, _counter
    _seed = int(value)
    _counter = itertools.count()


def _rng_fill(shape, draw: str, dtype=np.float64, **params) -> ndarray:
    rt = get_runtime()
    out = _make(_normalize_shape(shape), dtype, runtime=rt)
    draw_id = next(_counter)

    def kernel(ctx):
        rng = np.random.default_rng((_seed, draw_id, ctx.color))
        view = ctx.view("out")
        sample = getattr(rng, draw)(size=view.shape, **params)
        view[...] = sample.astype(dtype, copy=False)

    def cost(ctx):
        vol = ctx.rect("out").volume()
        return 10.0 * vol, vol * out.dtype.itemsize

    task = AutoTask(rt, f"rng_{draw}", kernel, cost)
    task.add_output("out", out.store)
    task.execute()
    return out


def rand(*shape) -> ndarray:
    """Uniform [0, 1) samples (``numpy.random.rand`` signature)."""
    if not shape:
        shape = (1,)
    return _rng_fill(shape, "random")


def random(shape) -> ndarray:
    """Uniform [0, 1) samples of a given shape."""
    return _rng_fill(shape, "random")


def uniform(low=0.0, high=1.0, size=None) -> ndarray:
    """Uniform [low, high) samples."""
    return _rng_fill(size, "uniform", low=low, high=high)


def standard_normal(size) -> ndarray:
    """Standard normal samples."""
    return _rng_fill(size, "standard_normal")


def normal(loc=0.0, scale=1.0, size=None) -> ndarray:
    """Normal(loc, scale) samples."""
    return _rng_fill(size, "normal", loc=loc, scale=scale)


def integers(low: int, high: int, size=None) -> ndarray:
    """Uniform integers in [low, high) as an int64 array."""
    return _rng_fill(size, "integers", dtype=np.int64, low=low, high=high)
