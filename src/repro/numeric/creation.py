"""Array creation routines (distributed fills and host attaches)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.constraints import AutoTask, Store
from repro.legion.runtime import Runtime, get_runtime
from repro.numeric.array import Scalar, ndarray


def _normalize_shape(shape) -> Tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    return tuple(int(s) for s in shape)


def _make(shape, dtype, runtime: Optional[Runtime] = None, name: str = "") -> ndarray:
    rt = runtime or get_runtime()
    store = Store.create(_normalize_shape(shape), np.dtype(dtype), runtime=rt, name=name)
    return ndarray(store)


def fill_inplace(arr: ndarray, value) -> None:
    """Distributed fill; establishes the array's key partition."""
    rt = arr.store.runtime
    if isinstance(value, Scalar):
        value = value.future

    def kernel(ctx):
        ctx.view("out")[...] = ctx.scalar("value")

    def cost(ctx):
        vol = ctx.rect("out").volume()
        return 0.0, vol * arr.dtype.itemsize

    task = AutoTask(rt, "fill", kernel, cost)
    task.add_output("out", arr.store)
    task.add_scalar_arg("value", value)
    task.set_pointwise("fill", expr=(("scalar", "value"),), out="out")
    task.execute()


def empty(shape, dtype=np.float64) -> ndarray:
    """An uninitialized distributed array."""
    return _make(shape, dtype)


def empty_like(arr: ndarray, dtype=None) -> ndarray:
    """An uninitialized array with another array's shape."""
    return _make(arr.shape, dtype or arr.dtype)


def zeros(shape, dtype=np.float64) -> ndarray:
    """A zero-filled distributed array."""
    out = _make(shape, dtype)
    fill_inplace(out, out.dtype.type(0))
    return out


def zeros_like(arr: ndarray, dtype=None) -> ndarray:
    """Zeros with another array's shape/dtype."""
    return zeros(arr.shape, dtype or arr.dtype)


def ones(shape, dtype=np.float64) -> ndarray:
    """A one-filled distributed array."""
    out = _make(shape, dtype)
    fill_inplace(out, out.dtype.type(1))
    return out


def ones_like(arr: ndarray, dtype=None) -> ndarray:
    """Ones with another array's shape/dtype."""
    return ones(arr.shape, dtype or arr.dtype)


def full(shape, value, dtype=None) -> ndarray:
    """A constant-filled distributed array."""
    if dtype is None:
        dtype = np.array(value).dtype if not isinstance(value, Scalar) else np.float64
    out = _make(shape, dtype)
    fill_inplace(out, value)
    return out


def full_like(arr: ndarray, value, dtype=None) -> ndarray:
    """A constant fill with another array's shape/dtype."""
    return full(arr.shape, value, dtype or arr.dtype)


def array(obj, dtype=None) -> ndarray:
    """Attach host data as a distributed array (copies the input)."""
    if isinstance(obj, ndarray):
        data = obj.to_numpy()
    else:
        data = np.array(obj, dtype=dtype)
    if dtype is not None:
        data = data.astype(dtype)
    if data.ndim not in (1, 2):
        raise ValueError("repro.numeric supports 1-D and 2-D arrays")
    rt = get_runtime()
    store = Store.create(data.shape, data.dtype, data=data, runtime=rt)
    return ndarray(store)


def asarray(obj, dtype=None) -> ndarray:
    """Pass arrays through; attach anything else."""
    if isinstance(obj, ndarray) and (dtype is None or obj.dtype == np.dtype(dtype)):
        return obj
    return array(obj, dtype=dtype)


def arange(*args, dtype=None) -> ndarray:
    """Attach ``numpy.arange`` output as a distributed array."""
    return array(np.arange(*args), dtype=dtype)


def linspace(start, stop, num=50, dtype=None) -> ndarray:
    """Attach ``numpy.linspace`` output as a distributed array."""
    return array(np.linspace(start, stop, num), dtype=dtype)
