"""Reverse-mode autodiff over the fused expression templates.

The paper's Fig. 12 workload used "a closed-source sparse autograd
procedure to generate Python source code for the gradient" of the
factorization model, which the authors then hand-optimized.  This module
substitutes a small open reverse-mode differentiator: build a scalar
loss ``sum(expr)`` over a :class:`~repro.numeric.lazy.LazyExpr` tree and
:func:`grad` returns the gradient with respect to each requested leaf —
each adjoint itself a fused expression evaluated in one task.

Example (the value-space half of the matrix-factorization gradient)::

    pred, obs = lazy(pred_vals), lazy(obs_vals)
    loss, grads = grad((pred - obs) * (pred - obs), wrt=[pred_vals])
    # grads[0] == 2 * (pred_vals - obs_vals)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.numeric as rnp
from repro.numeric.array import Scalar, ndarray
from repro.numeric.lazy import LazyExpr, evaluate, lazy


class DifferentiationError(ValueError):
    """The expression is not differentiable as written."""
    pass


def _zeros_like_expr(leaf: ndarray) -> LazyExpr:
    return LazyExpr("scalar", (0.0,))


def _vjp(node: LazyExpr, adjoint: LazyExpr) -> List[Tuple[LazyExpr, LazyExpr]]:
    """Children of ``node`` with their adjoint contributions."""
    op, args = node.op, node.args
    if op in ("leaf", "scalar"):
        return []
    if op == "add":
        return [(args[0], adjoint), (args[1], adjoint)]
    if op == "sub":
        return [(args[0], adjoint), (args[1], LazyExpr("neg", (adjoint,)))]
    if op == "mul":
        return [
            (args[0], LazyExpr("mul", (adjoint, args[1]))),
            (args[1], LazyExpr("mul", (adjoint, args[0]))),
        ]
    if op == "div":
        num, den = args
        return [
            (num, LazyExpr("div", (adjoint, den))),
            (
                den,
                LazyExpr(
                    "neg",
                    (
                        LazyExpr(
                            "div",
                            (LazyExpr("mul", (adjoint, num)), LazyExpr("mul", (den, den))),
                        ),
                    ),
                ),
            ),
        ]
    if op == "neg":
        return [(args[0], LazyExpr("neg", (adjoint,)))]
    if op == "square":
        two_x = LazyExpr("mul", (LazyExpr("scalar", (2.0,)), args[0]))
        return [(args[0], LazyExpr("mul", (adjoint, two_x)))]
    if op == "sqrt":
        half_inv = LazyExpr(
            "div", (LazyExpr("scalar", (0.5,)), LazyExpr("sqrt", (args[0],)))
        )
        return [(args[0], LazyExpr("mul", (adjoint, half_inv)))]
    if op == "exp":
        return [(args[0], LazyExpr("mul", (adjoint, LazyExpr("exp", (args[0],)))))]
    if op == "log":
        return [(args[0], LazyExpr("div", (adjoint, args[0])))]
    if op == "pow":
        base, exponent = args
        if exponent.op != "scalar":
            raise DifferentiationError(
                "pow is differentiable only for constant exponents"
            )
        k = exponent.args[0]
        k_val = float(k.value if isinstance(k, Scalar) else k)
        term = LazyExpr(
            "mul",
            (
                LazyExpr("scalar", (k_val,)),
                LazyExpr("pow", (base, LazyExpr("scalar", (k_val - 1.0,)))),
            ),
        )
        return [(base, LazyExpr("mul", (adjoint, term)))]
    raise DifferentiationError(f"no derivative rule for op {op!r}")


def grad(
    expr: LazyExpr,
    wrt: Sequence[ndarray],
    return_loss: bool = True,
):
    """Differentiate ``loss = sum(expr)`` with respect to leaf arrays.

    Returns ``(loss, [gradients])`` (or just the gradient list when
    ``return_loss=False``).  Every gradient is a distributed array of
    the leaf's shape, produced by one fused evaluation.
    """
    if not isinstance(expr, LazyExpr):
        raise TypeError("grad expects a lazy expression")
    leaves = expr.leaves()
    targets = {id(arr) for arr in wrt}
    missing = [arr for arr in wrt if not any(id(l) == id(arr) for l in leaves)]
    if missing:
        raise DifferentiationError(
            "some wrt arrays do not appear in the expression"
        )

    # Reverse accumulation over the (tree-shaped) expression.  Adjoints
    # of repeated leaves sum across occurrences.
    accumulated: Dict[int, LazyExpr] = {}

    def backprop(node: LazyExpr, adjoint: LazyExpr) -> None:
        if node.op == "leaf":
            key = id(node.args[0])
            if key in accumulated:
                accumulated[key] = LazyExpr("add", (accumulated[key], adjoint))
            else:
                accumulated[key] = adjoint
            return
        for child, contribution in _vjp(node, adjoint):
            if isinstance(child, LazyExpr) and child.op != "scalar":
                backprop(child, contribution)

    backprop(expr, LazyExpr("scalar", (1.0,)))

    gradients: List[ndarray] = []
    for arr in wrt:
        adjoint = accumulated.get(id(arr))
        if adjoint is None:
            gradients.append(rnp.zeros(arr.shape, dtype=arr.dtype))
        else:
            gradients.append(evaluate(adjoint))
    if not return_loss:
        return gradients
    loss = rnp.sum(evaluate(expr))
    return loss, gradients
