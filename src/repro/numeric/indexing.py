"""Indexing, gather/scatter, transpose and small dense matmul.

Gathers and scatters by integer index arrays ride on the same *image*
dependent-partitioning operation the sparse formats use: the index array
is tiled, and the data operand's partition is the image (by coordinate)
of the tiles — so the communication derived for ``U[idx]`` is exactly
the referenced rows.  Basic slicing is implemented as a copy task
(deviation from NumPy's view semantics; see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.constraints import AutoTask
from repro.geometry import Rect
from repro.legion.partition import ExplicitPartition, Tiling
from repro.numeric.array import Scalar, is_scalar_like, ndarray
from repro.numeric.creation import _make


# ----------------------------------------------------------------------
# Gather / scatter by index arrays
# ----------------------------------------------------------------------
def gather_rows(a: ndarray, idx: ndarray) -> ndarray:
    """``out[i] = a[idx[i]]`` (rows of a 1-D or 2-D array)."""
    if idx.ndim != 1 or not np.issubdtype(idx.dtype, np.integer):
        raise ValueError("index must be a 1-D integer array")
    rt = a.store.runtime
    out_shape: Tuple[int, ...] = (idx.shape[0],) + a.shape[1:]
    out = _make(out_shape, a.dtype, runtime=rt)

    def kernel(ctx):
        iv = ctx.view("idx")
        if ctx.arrays["a"].ndim == 1:
            ctx.view("out")[...] = ctx.arrays["a"][iv]
        else:
            ctx.view("out")[...] = ctx.arrays["a"][iv, :]

    def cost(ctx):
        vol = ctx.rect("out").volume()
        isz = ctx.arrays["a"].dtype.itemsize
        return float(vol), vol * 2.0 * isz + ctx.rect("idx").volume() * 8.0

    task = AutoTask(rt, "gather_rows", kernel, cost)
    task.add_output("out", out.store)
    task.add_input("idx", idx.store)
    task.add_input("a", a.store)
    task.add_alignment_constraint(out.store, idx.store)
    task.add_image_constraint(idx.store, a.store, kind="coordinate")
    task.execute()
    return out


def scatter_add(a: ndarray, idx: ndarray, values: ndarray) -> None:
    """``a[idx[i]] += values[i]`` (rows; duplicate indices accumulate)."""
    if idx.ndim != 1 or not np.issubdtype(idx.dtype, np.integer):
        raise ValueError("index must be a 1-D integer array")
    if values.shape[0] != idx.shape[0]:
        raise ValueError("values and index lengths differ")
    rt = a.store.runtime

    def kernel(ctx):
        iv = ctx.view("idx")
        np.add.at(ctx.arrays["a"], iv, ctx.view("v"))

    def cost(ctx):
        vol = ctx.rect("v").volume()
        isz = ctx.arrays["a"].dtype.itemsize
        return float(vol), vol * 3.0 * isz + ctx.rect("idx").volume() * 8.0

    task = AutoTask(rt, "scatter_add", kernel, cost)
    task.add_reduction("a", a.store)
    task.add_input("idx", idx.store)
    task.add_input("v", values.store)
    task.add_alignment_constraint(idx.store, values.store)
    task.add_image_constraint(idx.store, a.store, kind="coordinate")
    task.execute()


# ----------------------------------------------------------------------
# Basic slicing (copy semantics)
# ----------------------------------------------------------------------
def _normalize_slice(key: slice, n: int) -> Tuple[int, int, int]:
    start, stop, step = key.indices(n)
    if step <= 0:
        raise NotImplementedError("negative slice steps are not supported")
    length = max(0, (stop - start + step - 1) // step)
    return start, step, length


def slice_copy(a: ndarray, key: slice) -> ndarray:
    """a[start:stop:step] as a distributed gather copy."""
    start, step, length = _normalize_slice(key, a.shape[0])
    rt = a.store.runtime
    out = _make((length,) + a.shape[1:], a.dtype, runtime=rt)
    tiling = Tiling.create(out.store.region, rt.num_procs)
    src_rects = []
    for c in range(tiling.color_count):
        r = tiling.rect(c)
        lo, hi = r.lo[0], r.hi[0]
        if hi <= lo:
            src_rects.append(Rect(a.store.region.rect.lo, a.store.region.rect.lo))
            continue
        slo = start + lo * step
        shi = start + (hi - 1) * step + 1
        if a.ndim == 1:
            src_rects.append(Rect((slo,), (shi,)))
        else:
            src_rects.append(Rect((slo, 0), (shi, a.shape[1])))
    part = ExplicitPartition(a.store.region, src_rects)

    def kernel(ctx):
        r = ctx.rect("out")
        lo, hi = r.lo[0], r.hi[0]
        if hi <= lo:
            return
        slo = start + lo * step
        shi = start + (hi - 1) * step + 1
        ctx.view("out")[...] = ctx.arrays["a"][slo:shi:step]

    def cost(ctx):
        vol = ctx.rect("out").volume()
        return 0.0, vol * 2.0 * a.dtype.itemsize

    task = AutoTask(rt, "slice_copy", kernel, cost)
    task.add_output("out", out.store)
    task.add_input("a", a.store)
    task.add_explicit_partition(out.store, tiling)
    task.add_explicit_partition(a.store, part)
    task.execute()
    return out


def slice_assign(a: ndarray, key: slice, value) -> None:
    """a[start:stop:step] = value as a distributed scatter."""
    start, step, length = _normalize_slice(key, a.shape[0])
    rt = a.store.runtime
    value_is_array = isinstance(value, ndarray)
    if value_is_array and value.shape[0] != length:
        raise ValueError("cannot broadcast value into slice")

    # Tile the slice domain; partition `a` with the mapped sub-rects.
    if value_is_array:
        domain_tiling = Tiling.create(value.store.region, rt.num_procs)
    else:
        # Build a throwaway tiling over the slice length.
        boundaries = Tiling.create_boundaries(length, rt.num_procs)
        domain_tiling = None
    dst_rects = []
    colors = rt.num_procs
    bounds = (
        domain_tiling.boundaries
        if domain_tiling is not None
        else boundaries
    )
    for c in range(colors):
        lo, hi = bounds[c], bounds[c + 1]
        if hi <= lo:
            dst_rects.append(Rect(a.store.region.rect.lo, a.store.region.rect.lo))
            continue
        slo = start + lo * step
        shi = start + (hi - 1) * step + 1
        if a.ndim == 1:
            dst_rects.append(Rect((slo,), (shi,)))
        else:
            dst_rects.append(Rect((slo, 0), (shi, a.shape[1])))
    part = ExplicitPartition(a.store.region, dst_rects)

    def kernel(ctx):
        if "v" in ctx.rects:
            r = ctx.rect("v")
            lo, hi = r.lo[0], r.hi[0]
            if hi <= lo:
                return
            src = ctx.view("v")
        else:
            r = ctx.rect("a")
            if r.is_empty():
                return
            lo = (r.lo[0] - start) // step
            hi = lo + (r.hi[0] - r.lo[0] + step - 1) // step
            src = ctx.scalar("v")
        slo = start + lo * step
        shi = start + (hi - 1) * step + 1
        ctx.arrays["a"][slo:shi:step] = src

    def cost(ctx):
        vol = ctx.rect("a").volume()
        return 0.0, vol * 2.0 * a.dtype.itemsize

    task = AutoTask(rt, "slice_assign", kernel, cost)
    task.add_inout("a", a.store)
    task.add_explicit_partition(a.store, part)
    if value_is_array:
        task.add_input("v", value.store)
        task.add_explicit_partition(value.store, domain_tiling)
    else:
        task.add_scalar_arg("v", value.future if isinstance(value, Scalar) else value)
    task.execute()


# ----------------------------------------------------------------------
# __getitem__ / __setitem__ dispatch
# ----------------------------------------------------------------------
def getitem(a: ndarray, key):
    """``a[key]`` dispatch: ints, slices, integer-array gathers."""
    if isinstance(key, (int, np.integer)):
        a.runtime.barrier()
        if a.ndim == 1:
            return a.store.data[int(key)].item()
        from repro.numeric.creation import array

        return array(a.store.data[int(key)])
    if isinstance(key, slice):
        return slice_copy(a, key)
    if isinstance(key, ndarray):
        return gather_rows(a, key)
    if isinstance(key, np.ndarray) and np.issubdtype(key.dtype, np.integer):
        from repro.numeric.creation import array

        return gather_rows(a, array(key.astype(np.int64)))
    if isinstance(key, tuple) and all(isinstance(k, (int, np.integer)) for k in key):
        a.runtime.barrier()
        return a.store.data[tuple(int(k) for k in key)].item()
    raise NotImplementedError(f"unsupported index {key!r}")


def setitem(a: ndarray, key, value) -> None:
    """``a[key] = value`` dispatch: slice/int assignment."""
    if isinstance(key, slice):
        slice_assign(a, key, value)
        return
    if isinstance(key, (int, np.integer)):
        slice_assign(a, slice(int(key), int(key) + 1), value)
        return
    raise NotImplementedError(f"unsupported assignment index {key!r}")


def concatenate(arrays) -> ndarray:
    """Concatenate 1-D arrays (``numpy.concatenate``)."""
    arrays = list(arrays)
    if not arrays:
        raise ValueError("need at least one array to concatenate")
    if any(a.ndim != 1 for a in arrays):
        raise ValueError("concatenate supports 1-D arrays")
    rt = arrays[0].store.runtime
    total = sum(a.shape[0] for a in arrays)
    dtype = np.result_type(*[a.dtype for a in arrays])
    out = _make((total,), dtype, runtime=rt)
    offset = 0
    for a in arrays:
        if a.shape[0]:
            slice_assign(out, slice(offset, offset + a.shape[0]), a)
        offset += a.shape[0]
    return out


# ----------------------------------------------------------------------
# Transpose and small dense matmul
# ----------------------------------------------------------------------
def transpose(a: ndarray) -> ndarray:
    """2-D transpose as a task: an all-to-all-shaped data movement."""
    if a.ndim != 2:
        if a.ndim == 1:
            return a
        raise ValueError("transpose expects a 2-D array")
    rt = a.store.runtime
    out = _make((a.shape[1], a.shape[0]), a.dtype, runtime=rt)

    def kernel(ctx):
        r = ctx.rect("out")
        ctx.view("out")[...] = ctx.arrays["a"][:, r.lo[0] : r.hi[0]].T

    def cost(ctx):
        vol = ctx.rect("out").volume()
        return 0.0, vol * 2.0 * a.dtype.itemsize

    task = AutoTask(rt, "transpose", kernel, cost)
    task.add_output("out", out.store)
    task.add_input("a", a.store)
    task.add_broadcast(a.store)
    task.execute()
    return out


def matmul(a: ndarray, b: ndarray) -> ndarray:
    """Dense matmul for the shapes the workloads need.

    ``(n,k) @ (k,)`` and ``(n,k) @ (k,m)`` distribute over rows of ``a``
    with ``b`` broadcast (``b`` is small in every paper workload: solver
    basis vectors, factor-model blocks).  ``(n,) @ (n,)`` is ``dot``.
    """
    from repro.numeric.reductions import dot

    if a.ndim == 1 and b.ndim == 1:
        return dot(a, b)
    if a.ndim != 2:
        raise ValueError("matmul expects a matrix left operand")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    rt = a.store.runtime
    out_shape = (a.shape[0],) if b.ndim == 1 else (a.shape[0], b.shape[1])
    dtype = np.result_type(a.dtype, b.dtype)
    out = _make(out_shape, dtype, runtime=rt)

    def kernel(ctx):
        ctx.view("out")[...] = ctx.view("a") @ ctx.arrays["b"]

    def cost(ctx):
        rows = ctx.rect("a").shape[0]
        k = a.shape[1]
        m = 1 if b.ndim == 1 else b.shape[1]
        isz = dtype.itemsize
        return 2.0 * rows * k * m, (rows * k + k * m + rows * m) * isz

    task = AutoTask(rt, "matmul", kernel, cost)
    task.add_output("out", out.store)
    task.add_input("a", a.store)
    task.add_input("b", b.store)
    task.add_alignment_constraint(out.store, a.store)
    task.add_broadcast(b.store)
    task.execute()
    return out
