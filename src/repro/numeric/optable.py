"""The element-wise operator table shared by every fusion consumer.

Three layers interpret element-wise operator names and must agree on
what each name computes:

* the eager ufunc layer (:mod:`repro.numeric.ufunc`) — one launch per op;
* the user-directed expression-template fuser (:mod:`repro.numeric.lazy`);
* the automatic fusion engine (:mod:`repro.legion.fusion`), which tags
  launches with the op names it merged and reports them through the
  profiler and advisor.

This module is the single source of truth: canonical NumPy callables
keyed by the ufunc-style long names, plus the short aliases the lazy
expression tree uses (``mul`` for ``multiply``, ...).  Keeping one table
means a fused kernel can never disagree with the unfused chain about
what an op computes — the bitwise-equivalence guarantee reduces to
"same callables, same order".
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

#: Binary element-wise operators, by canonical (ufunc) name.
BINOPS: Dict[str, Callable] = {
    "add": np.add,
    "subtract": np.subtract,
    "multiply": np.multiply,
    "divide": np.divide,
    "power": np.power,
    "maximum": np.maximum,
    "minimum": np.minimum,
    "greater": np.greater,
    "greater_equal": np.greater_equal,
    "less": np.less,
    "less_equal": np.less_equal,
    "equal": np.equal,
    "not_equal": np.not_equal,
}

#: Unary element-wise operators, by canonical (ufunc) name.
UNOPS: Dict[str, Callable] = {
    "negative": np.negative,
    "absolute": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
    "square": np.square,
    "sign": np.sign,
    "conjugate": np.conjugate,
    "real": np.real,
    "imag": np.imag,
    "floor": np.floor,
    "ceil": np.ceil,
    "rint": np.rint,
    "isnan": np.isnan,
    "isfinite": np.isfinite,
    "copy": np.positive,
}

#: Short spellings used by the lazy expression tree.
ALIASES: Dict[str, str] = {
    "sub": "subtract",
    "mul": "multiply",
    "div": "divide",
    "pow": "power",
    "neg": "negative",
    "abs": "absolute",
    "conj": "conjugate",
}


def canonical(name: str) -> str:
    """The canonical spelling of an op name (aliases resolved)."""
    return ALIASES.get(name, name)


def binop(name: str) -> Callable:
    """The NumPy callable of a binary op name (aliases accepted)."""
    return BINOPS[canonical(name)]


def unop(name: str) -> Callable:
    """The NumPy callable of a unary op name (aliases accepted)."""
    return UNOPS[canonical(name)]


def is_binop(name: str) -> bool:
    """Whether the name (or alias) is a known binary op."""
    return canonical(name) in BINOPS


def is_unop(name: str) -> bool:
    """Whether the name (or alias) is a known unary op."""
    return canonical(name) in UNOPS
