"""``repro.numeric.linalg``: the norms the paper's workloads use."""

from __future__ import annotations

import numpy as np

from repro.numeric.array import Scalar, ndarray
from repro.numeric.reductions import amax, sum_abs_squared


def norm(a: ndarray, ord=None) -> Scalar:
    """Vector 2-norm / matrix Frobenius norm (``ord=None`` or 2), or
    the infinity norm (``ord=inf``) of a 1-D array."""
    if ord in (None, 2, "fro"):
        return sum_abs_squared(a).sqrt()
    if ord == np.inf:
        from repro.numeric.ufunc import absolute

        return amax(absolute(a))
    raise NotImplementedError(f"norm ord={ord!r} is not implemented")
