"""Element-wise operations: every call is one distributed task launch.

Binary operations align all operands (the solver reuses whatever
partition the operands were last written with), scalars — including
deferred :class:`~repro.numeric.array.Scalar` reduction results — travel
as task arguments, and an ``out=`` operand turns the launch into an
in-place update.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constraints import AutoTask
from repro.legion.runtime import get_runtime
from repro.numeric import optable
from repro.numeric.array import Scalar, is_scalar_like, ndarray
from repro.numeric.creation import _make


def _binary_kernel(ctx):
    op = ctx.scalar("op")
    a = ctx.view("a") if "a" in ctx.rects else ctx.scalar("a")
    b = ctx.view("b") if "b" in ctx.rects else ctx.scalar("b")
    out = ctx.view("out")
    out[...] = op(a, b)


def _unary_kernel(ctx):
    op = ctx.scalar("op")
    out = ctx.view("out")
    out[...] = op(ctx.view("a"))


def _elementwise_cost(ctx):
    nbytes = 0.0
    vol = ctx.rect("out").volume()
    for name in ctx.rects:
        nbytes += ctx.rects[name].volume() * ctx.arrays[name].dtype.itemsize
    return float(vol), nbytes


def _scalar_dtype(value, other_dtype: np.dtype) -> np.dtype:
    if isinstance(value, Scalar):
        # Deferred scalars are reduction results: real unless the data
        # they reduce over was complex, which the operand dtype reflects.
        return other_dtype
    return np.result_type(other_dtype, np.min_scalar_type(value) if isinstance(value, (int,)) else type(value))


def _binary(name: str, np_op, a, b, out: Optional[ndarray] = None) -> ndarray:
    # Known names resolve through the shared op table (repro.numeric
    # .optable) so every fusion consumer agrees on the callable;
    # unknown names (clip-style lambdas) pass through.
    np_op = optable.BINOPS.get(optable.canonical(name), np_op)
    a_arr = isinstance(a, ndarray)
    b_arr = isinstance(b, ndarray)
    if not a_arr and not b_arr:
        raise TypeError("at least one operand must be an ndarray")
    if a_arr and b_arr and a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a_arr and b_arr:
        dtype = np.result_type(a.dtype, b.dtype)
        rt = a.store.runtime
        shape = a.shape
    elif a_arr:
        dtype = _scalar_dtype(b, a.dtype)
        rt = a.store.runtime
        shape = a.shape
    else:
        dtype = _scalar_dtype(a, b.dtype)
        rt = b.store.runtime
        shape = b.shape

    if out is None:
        out = _make(shape, dtype, runtime=rt)
    elif out.shape != shape:
        raise ValueError("out= has the wrong shape")

    task = AutoTask(rt, name, _binary_kernel, _elementwise_cost)
    in_place = (a_arr and out.store is a.store) or (b_arr and out.store is b.store)
    task.add_output("out", out.store, discard=not in_place)
    if a_arr:
        # Operands may alias the output (in-place update); the runtime
        # handles the same region under multiple names.
        task.add_input("a", a.store)
        task.add_alignment_constraint(out.store, a.store)
    else:
        task.add_scalar_arg("a", a.future if isinstance(a, Scalar) else a)
    if b_arr:
        task.add_input("b", b.store)
        task.add_alignment_constraint(out.store, b.store)
    else:
        task.add_scalar_arg("b", b.future if isinstance(b, Scalar) else b)
    task.add_scalar_arg("op", np_op)
    canon = optable.canonical(name)
    if optable.BINOPS.get(canon) is np_op:
        # Table-resolved op: expose the body IR so the dependence
        # analyzer can body-merge a fused group into one loop nest.
        # Unknown callables (clip-style lambdas) stay opaque.
        expr = (
            ("load" if a_arr else "scalar", "a"),
            ("load" if b_arr else "scalar", "b"),
            ("bin", canon),
        )
        task.set_pointwise(name, expr=expr, out="out")
    else:
        task.set_pointwise(name)
    task.execute()
    return out


def _unary(name: str, np_op, a: ndarray, out: Optional[ndarray] = None, dtype=None) -> ndarray:
    np_op = optable.UNOPS.get(optable.canonical(name), np_op)
    if not isinstance(a, ndarray):
        if isinstance(a, Scalar):
            return Scalar(a.future.map(np_op), a.runtime)
        return np_op(a)
    rt = a.store.runtime
    dtype = np.dtype(dtype) if dtype is not None else a.dtype
    if out is None:
        out = _make(a.shape, dtype, runtime=rt)
    task = AutoTask(rt, name, _unary_kernel, _elementwise_cost)
    in_place = out.store is a.store
    task.add_output("out", out.store, discard=not in_place)
    task.add_input("a", a.store)
    task.add_alignment_constraint(out.store, a.store)
    task.add_scalar_arg("op", np_op)
    canon = optable.canonical(name)
    if optable.UNOPS.get(canon) is np_op:
        task.set_pointwise(
            name, expr=(("load", "a"), ("un", canon)), out="out"
        )
    else:
        task.set_pointwise(name)
    task.execute()
    return out


# ----------------------------------------------------------------------
# Public ufuncs
# ----------------------------------------------------------------------
def add(a, b, out=None):
    """Element-wise addition (``numpy.add``)."""
    return _binary("add", np.add, a, b, out)


def subtract(a, b, out=None):
    """Element-wise subtraction."""
    return _binary("subtract", np.subtract, a, b, out)


def multiply(a, b, out=None):
    """Element-wise multiplication."""
    return _binary("multiply", np.multiply, a, b, out)


def divide(a, b, out=None):
    """Element-wise division."""
    return _binary("divide", np.divide, a, b, out)


true_divide = divide


def power(a, b, out=None):
    """Element-wise power."""
    return _binary("power", np.power, a, b, out)


def maximum(a, b, out=None):
    """Element-wise maximum."""
    return _binary("maximum", np.maximum, a, b, out)


def minimum(a, b, out=None):
    """Element-wise minimum."""
    return _binary("minimum", np.minimum, a, b, out)


def negative(a, out=None):
    """Element-wise negation."""
    return _unary("negative", np.negative, a, out)


def absolute(a, out=None):
    """Element-wise absolute value (real output for complex input)."""
    if isinstance(a, ndarray) and np.issubdtype(a.dtype, np.complexfloating):
        return _unary("absolute", np.abs, a, out, dtype=np.float64)
    return _unary("absolute", np.abs, a, out)


def sqrt(a, out=None):
    """Element-wise square root."""
    return _unary("sqrt", np.sqrt, a, out)


def exp(a, out=None):
    """Element-wise exponential."""
    return _unary("exp", np.exp, a, out)


def log(a, out=None):
    """Element-wise natural logarithm."""
    return _unary("log", np.log, a, out)


def sin(a, out=None):
    """Element-wise sine."""
    return _unary("sin", np.sin, a, out)


def cos(a, out=None):
    """Element-wise cosine."""
    return _unary("cos", np.cos, a, out)


def tanh(a, out=None):
    """Element-wise hyperbolic tangent."""
    return _unary("tanh", np.tanh, a, out)


def square(a, out=None):
    """Element-wise square."""
    return _unary("square", np.square, a, out)


def sign(a, out=None):
    """Element-wise sign."""
    return _unary("sign", np.sign, a, out)


def conjugate(a, out=None):
    """Element-wise complex conjugate."""
    return _unary("conjugate", np.conjugate, a, out)


conj = conjugate


def real(a):
    """Real part (real dtype for complex input)."""
    if isinstance(a, ndarray) and np.issubdtype(a.dtype, np.complexfloating):
        return _unary("real", np.real, a, dtype=np.float64)
    return _unary("real", np.real, a)


def imag(a):
    """Imaginary part (real dtype for complex input)."""
    if isinstance(a, ndarray) and np.issubdtype(a.dtype, np.complexfloating):
        return _unary("imag", np.imag, a, dtype=np.float64)
    return _unary("imag", np.imag, a)


def floor(a, out=None):
    """Element-wise floor."""
    return _unary("floor", np.floor, a, out)


def ceil(a, out=None):
    """Element-wise ceiling."""
    return _unary("ceil", np.ceil, a, out)


def rint(a, out=None):
    """Element-wise round-to-nearest-even."""
    return _unary("rint", np.rint, a, out)


def isnan(a):
    """Element-wise NaN test (boolean output)."""
    return _unary("isnan", np.isnan, a, dtype=np.bool_)


def isfinite(a):
    """Element-wise finiteness test (boolean output)."""
    return _unary("isfinite", np.isfinite, a, dtype=np.bool_)


def clip(a: ndarray, a_min, a_max, out=None):
    """Element-wise clamp (``numpy.clip``); scalar bounds only."""
    lo = a_min.value if isinstance(a_min, Scalar) else a_min
    hi = a_max.value if isinstance(a_max, Scalar) else a_max
    return _unary("clip", lambda v: np.clip(v, lo, hi), a, out)


def greater(a, b):
    """Element-wise ``>`` (boolean output)."""
    return _binary("greater", np.greater, a, b, _bool_out(a, b))


def greater_equal(a, b):
    """Element-wise ``>=`` (boolean output)."""
    return _binary("greater_equal", np.greater_equal, a, b, _bool_out(a, b))


def less(a, b):
    """Element-wise ``<`` (boolean output)."""
    return _binary("less", np.less, a, b, _bool_out(a, b))


def less_equal(a, b):
    """Element-wise ``<=`` (boolean output)."""
    return _binary("less_equal", np.less_equal, a, b, _bool_out(a, b))


def equal(a, b):
    """Element-wise ``==`` (boolean output)."""
    return _binary("equal", np.equal, a, b, _bool_out(a, b))


def not_equal(a, b):
    """Element-wise ``!=`` (boolean output)."""
    return _binary("not_equal", np.not_equal, a, b, _bool_out(a, b))


def _bool_out(a, b) -> ndarray:
    ref = a if isinstance(a, ndarray) else b
    return _make(ref.shape, np.bool_, runtime=ref.store.runtime)


def where(cond: ndarray, a, b) -> ndarray:
    """Element-wise select (``numpy.where`` with three arguments)."""
    if not isinstance(cond, ndarray):
        raise TypeError("where expects a distributed boolean condition")
    rt = cond.store.runtime
    ref = a if isinstance(a, ndarray) else (b if isinstance(b, ndarray) else None)
    dtype = np.result_type(
        a.dtype if isinstance(a, ndarray) else type(a),
        b.dtype if isinstance(b, ndarray) else type(b),
    )
    out = _make(cond.shape, dtype, runtime=rt)
    from repro.constraints import AutoTask

    def kernel(ctx):
        av = ctx.view("a") if "a" in ctx.rects else ctx.scalar("a")
        bv = ctx.view("b") if "b" in ctx.rects else ctx.scalar("b")
        ctx.view("out")[...] = np.where(ctx.view("cond"), av, bv)

    task = AutoTask(rt, "where", kernel, _elementwise_cost)
    task.add_output("out", out.store)
    task.add_input("cond", cond.store)
    task.add_alignment_constraint(out.store, cond.store)
    for name, operand in (("a", a), ("b", b)):
        if isinstance(operand, ndarray):
            task.add_input(name, operand.store)
            task.add_alignment_constraint(out.store, operand.store)
        else:
            task.add_scalar_arg(name, operand.future if isinstance(operand, Scalar) else operand)
    task.set_pointwise("where")
    task.execute()
    return out


def positive_copy(a: ndarray) -> ndarray:
    """A distributed copy (one pass)."""
    return _unary("copy", np.positive, a)


def astype(a: ndarray, dtype) -> ndarray:
    """A cast copy to another dtype."""
    dtype = np.dtype(dtype)
    if dtype == a.dtype:
        return positive_copy(a)
    return _unary("astype", lambda v: v.astype(dtype), a, dtype=dtype)
