"""Reductions: per-shard partials folded with the allreduce model."""

from __future__ import annotations

import numpy as np

from repro.constraints import AutoTask
from repro.numeric.array import Scalar, ndarray


def _reduction_cost(ctx):
    nbytes = 0.0
    flops = 0.0
    for name, rect in ctx.rects.items():
        vol = rect.volume()
        nbytes += vol * ctx.arrays[name].dtype.itemsize
        flops += vol
    return flops, nbytes


def _launch_reduction(name, a: ndarray, kernel, op: str, b: ndarray = None) -> Scalar:
    rt = a.store.runtime
    task = AutoTask(rt, name, kernel, _reduction_cost)
    task.add_input("a", a.store)
    if b is not None:
        if b.shape != a.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        task.add_input("b", b.store)
        task.add_alignment_constraint(a.store, b.store)
    task.set_scalar_reduction(op)
    future = task.execute()
    return Scalar(future, rt)


def sum(a: ndarray, axis=None):
    """Full or per-axis sum; 2-D axis sums return distributed vectors."""
    if axis is not None:
        return _axis_sum(a, axis)

    def kernel(ctx):
        return ctx.view("a").sum()

    return _launch_reduction("sum", a, kernel, "sum")


def _axis_sum(a: ndarray, axis: int) -> ndarray:
    import repro.numeric as rnp
    from repro.constraints import AutoTask

    if a.ndim != 2:
        raise ValueError("axis sums require a 2-D array")
    if axis in (1, -1):
        # Row sums: output aligns with the rows the shard already owns.
        rt = a.store.runtime
        from repro.numeric.creation import _make

        out = _make((a.shape[0],), a.dtype, runtime=rt)

        def kernel(ctx):
            ctx.view("out")[...] = ctx.view("a").sum(axis=1)

        def cost(ctx):
            vol = ctx.rect("a").volume()
            return float(vol), vol * a.dtype.itemsize

        task = AutoTask(rt, "sum_axis1", kernel, cost)
        task.add_output("out", out.store)
        task.add_input("a", a.store)
        task.add_alignment_constraint(out.store, a.store)
        task.execute()
        return out
    if axis == 0:
        # Column sums: per-shard partials folded into the output tiles.
        rt = a.store.runtime
        from repro.numeric.creation import zeros

        out = zeros(a.shape[1], dtype=a.dtype)

        def kernel(ctx):
            view = ctx.view("a")
            if view.size:
                ctx.arrays["out"][...] += view.sum(axis=0)

        def cost(ctx):
            vol = ctx.rect("a").volume()
            return float(vol), vol * a.dtype.itemsize

        task = AutoTask(rt, "sum_axis0", kernel, cost)
        task.add_reduction("out", out.store)
        task.add_input("a", a.store)
        from repro.constraints import Broadcast

        task.add_broadcast(out.store)
        task.execute()
        return out
    raise ValueError(f"invalid axis {axis}")


def prod(a: ndarray) -> Scalar:
    """Product of all elements."""

    def kernel(ctx):
        v = ctx.view("a")
        return v.prod() if v.size else a.dtype.type(1)

    return _launch_reduction("prod", a, kernel, "prod")


def mean(a: ndarray, axis=None):
    """Mean over all elements or per axis."""
    total = sum(a, axis=axis)
    if axis is None:
        return total / a.size
    return total / a.shape[1 if axis in (1, -1) else 0]


def amax(a: ndarray) -> Scalar:
    """Maximum element (a deferred Scalar)."""

    def kernel(ctx):
        v = ctx.view("a")
        return v.max() if v.size else -np.inf

    return _launch_reduction("amax", a, kernel, "max")


def amin(a: ndarray) -> Scalar:
    """Minimum element (a deferred Scalar)."""

    def kernel(ctx):
        v = ctx.view("a")
        return v.min() if v.size else np.inf

    return _launch_reduction("amin", a, kernel, "min")


def dot(a: ndarray, b: ndarray) -> Scalar:
    """Plain (non-conjugating) inner product of two 1-D arrays."""
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dot expects 1-D operands; use matmul for matrices")

    def kernel(ctx):
        va, vb = ctx.view("a"), ctx.view("b")
        return np.dot(va, vb) if va.size else 0.0

    return _launch_reduction("dot", a, kernel, "sum", b=b)


def vdot(a: ndarray, b: ndarray) -> Scalar:
    """Conjugating inner product (what iterative solvers need)."""
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("vdot expects 1-D operands")

    def kernel(ctx):
        va, vb = ctx.view("a"), ctx.view("b")
        return np.vdot(va, vb) if va.size else 0.0

    return _launch_reduction("vdot", a, kernel, "sum", b=b)


def argmax(a: ndarray) -> Scalar:
    """Index of the maximum (first occurrence per shard)."""

    def kernel(ctx):
        v = ctx.view("a")
        if not v.size:
            return (-np.inf, 0)
        local = int(np.argmax(v))
        return (float(v[local]), -(ctx.rect("a").lo[0] + local))

    partial = _launch_reduction("argmax", a, kernel, "max")
    return Scalar(partial.future.map(lambda t: -t[1]), partial.runtime)


def argmin(a: ndarray) -> Scalar:
    """Index of the minimum (first occurrence per shard)."""

    def kernel(ctx):
        v = ctx.view("a")
        if not v.size:
            return (np.inf, 0)
        local = int(np.argmin(v))
        return (float(v[local]), ctx.rect("a").lo[0] + local)

    partial = _launch_reduction("argmin", a, kernel, "min")
    return Scalar(partial.future.map(lambda t: t[1]), partial.runtime)


def count_nonzero(a: ndarray) -> Scalar:
    """Number of non-zero elements (a deferred Scalar)."""

    def kernel(ctx):
        return int(np.count_nonzero(ctx.view("a")))

    return _launch_reduction("count_nonzero", a, kernel, "sum")


def allclose(a: ndarray, b: ndarray, rtol: float = 1e-5, atol: float = 1e-8) -> bool:
    """Synchronizing element-wise closeness check (``numpy.allclose``)."""

    def kernel(ctx):
        return bool(np.allclose(ctx.view("a"), ctx.view("b"), rtol=rtol, atol=atol))

    result = _launch_reduction("allclose", a, kernel, "min", b=b)
    return bool(result.value)


def array_equal(a: ndarray, b: ndarray) -> bool:
    """Synchronizing exact equality check."""
    if a.shape != b.shape:
        return False

    def kernel(ctx):
        return bool(np.array_equal(ctx.view("a"), ctx.view("b")))

    result = _launch_reduction("array_equal", a, kernel, "min", b=b)
    return bool(result.value)


def sum_abs_squared(a: ndarray) -> Scalar:
    """sum(|a|^2): the partial under a 2-norm; always real."""

    def kernel(ctx):
        v = ctx.view("a")
        if not v.size:
            return 0.0
        return float(np.real(np.vdot(v, v)))

    return _launch_reduction("norm2", a, kernel, "sum")
