"""A minimal LinearOperator, for preconditioners and matrix-free solves."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.numeric.array import ndarray


class LinearOperator:
    """An operator defined by its action on vectors."""

    def __init__(
        self,
        shape: Tuple[int, int],
        matvec: Callable[[ndarray], ndarray],
        rmatvec: Optional[Callable[[ndarray], ndarray]] = None,
        dtype=np.float64,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self._matvec = matvec
        self._rmatvec = rmatvec
        self.dtype = np.dtype(dtype)

    def matvec(self, x: ndarray) -> ndarray:
        """Apply the operator to a vector."""
        return self._matvec(x)

    def rmatvec(self, x: ndarray) -> ndarray:
        """Apply the adjoint/transpose to a vector."""
        if self._rmatvec is None:
            raise NotImplementedError("rmatvec is not defined for this operator")
        return self._rmatvec(x)

    def __matmul__(self, x):
        if isinstance(x, ndarray):
            return self.matvec(x)
        return NotImplemented

    @property
    def T(self) -> "LinearOperator":
        """The transposed operator (needs rmatvec)."""
        if self._rmatvec is None:
            raise NotImplementedError("rmatvec is not defined for this operator")
        return LinearOperator(
            (self.shape[1], self.shape[0]),
            self._rmatvec,
            self._matvec,
            dtype=self.dtype,
        )


def aslinearoperator(A) -> LinearOperator:
    """Wrap a sparse matrix, LinearOperator or callable uniformly."""
    from repro.core.base import issparse

    if isinstance(A, LinearOperator):
        return A
    if issparse(A):
        return LinearOperator(
            A.shape,
            matvec=A._matvec,
            rmatvec=A._rmatvec,
            dtype=A.dtype,
        )
    if callable(A):
        raise TypeError(
            "a bare callable has no shape; construct a LinearOperator instead"
        )
    raise TypeError(f"cannot interpret {type(A).__name__} as a linear operator")
