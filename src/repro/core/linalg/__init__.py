"""``repro.core.linalg``: sparse linear algebra (``scipy.sparse.linalg``).

The iterative solvers are direct ports of their SciPy implementations
onto the distributed arrays — the §5.2 porting story: solver code is
ordinary NumPy-style Python; every dot/axpy/matvec inside becomes a
distributed task, and convergence checks synchronize on allreduce
futures (which is what puts communication latency on the CG critical
path in the paper's Fig. 9).
"""

from repro.core.linalg.interface import LinearOperator, aslinearoperator
from repro.core.linalg.iterative import bicg, bicgstab, cg, cgs, gmres
from repro.core.linalg.eigen import eigsh, lobpcg_max, power_iteration
from repro.core.linalg.lsqr import lsqr
from repro.core.linalg.matfuncs import expm_multiply
from repro.core.linalg.triangular import spsolve_triangular
from repro.core.linalg.norms import norm, onenormest
from repro.core.linalg import preconditioners

__all__ = [
    "LinearOperator",
    "aslinearoperator",
    "bicg",
    "bicgstab",
    "cg",
    "cgs",
    "eigsh",
    "expm_multiply",
    "gmres",
    "lobpcg_max",
    "lsqr",
    "norm",
    "onenormest",
    "power_iteration",
    "preconditioners",
    "spsolve_triangular",
]
