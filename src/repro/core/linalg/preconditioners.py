"""Preconditioners for the iterative solvers.

``jacobi`` is fully distributed (a reciprocal-diagonal scaling, the same
smoothing building block the multigrid workload uses).  ``ssor`` applies
the symmetric SOR sweep with the gathered triangular solves — usable,
but its substitution is sequential (see ``linalg/triangular.py``).
"""

from __future__ import annotations

import numpy as np

import repro.numeric as rnp
from repro.core.linalg.interface import LinearOperator
from repro.numeric.array import ndarray


def jacobi(A) -> LinearOperator:
    """M ≈ A^{-1} as 1/diag(A)."""
    csr = A.tocsr()
    if csr.shape[0] != csr.shape[1]:
        raise ValueError("jacobi preconditioner requires a square matrix")
    dinv = 1.0 / csr.diagonal()
    n = csr.shape[0]
    return LinearOperator((n, n), matvec=lambda r: r * dinv, dtype=csr.dtype)


def ssor(A, omega: float = 1.0) -> LinearOperator:
    """Symmetric SOR: M^{-1} r via forward + backward triangular sweeps.

    M = (D/ω + L) (D/ω)^{-1} (D/ω + U) / (ω (2 - ω)) for A = L + D + U.
    """
    from repro.core.extra import tril, triu
    from repro.core.linalg.triangular import spsolve_triangular

    if not 0 < omega < 2:
        raise ValueError("SSOR requires 0 < omega < 2")
    csr = A.tocsr()
    n = csr.shape[0]
    if csr.shape[0] != csr.shape[1]:
        raise ValueError("ssor preconditioner requires a square matrix")
    diag = csr.diagonal()
    from repro.core.construct import diags as make_diags

    d_over_omega = make_diags([diag.to_numpy() / omega], [0], shape=csr.shape).tocsr()
    lower = tril(csr, k=-1) + d_over_omega
    upper = triu(csr, k=1) + d_over_omega
    scale = omega * (2.0 - omega)
    dinv_omega = (diag / omega) * scale  # fold the scalar into the middle

    def apply(r: ndarray) -> ndarray:
        y = spsolve_triangular(lower, r, lower=True)
        y = y * dinv_omega
        return spsolve_triangular(upper, y, lower=False)

    return LinearOperator((n, n), matvec=apply, dtype=csr.dtype)
