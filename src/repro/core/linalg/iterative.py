"""Iterative Krylov solvers: CG, CGS, BiCG, BiCGSTAB, GMRES.

Ported from the SciPy implementations (paper §5.2): the code below is
the textbook algorithm over distributed arrays.  Signatures follow
``scipy.sparse.linalg``: ``(x, info)`` where ``info == 0`` on
convergence, ``> 0`` is the iteration count at which the solver gave up,
``< 0`` signals a breakdown.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.core.linalg.interface import LinearOperator, aslinearoperator
from repro.numeric.array import ndarray


def _apply(op, x: ndarray) -> ndarray:
    if op is None:
        return x
    if isinstance(op, LinearOperator):
        return op.matvec(x)
    return op @ x


def _setup(A, b: ndarray, x0, rtol: float, atol: float, maxiter):
    n = b.shape[0]
    if A.shape != (n, n):
        raise ValueError(f"A has shape {A.shape}, b has length {n}")
    x = x0.copy() if x0 is not None else rnp.zeros(n, dtype=b.dtype)
    if maxiter is None:
        maxiter = 10 * n
    bnrm = float(rnp.linalg.norm(b))
    tol = max(rtol * bnrm, atol)
    if bnrm == 0.0:
        tol = atol
    return x, maxiter, tol


def cg(
    A,
    b: ndarray,
    x0: Optional[ndarray] = None,
    *,
    rtol: float = 1e-5,
    atol: float = 0.0,
    maxiter: Optional[int] = None,
    M=None,
    callback: Optional[Callable] = None,
) -> Tuple[ndarray, int]:
    """Conjugate Gradient for SPD (or HPD) systems."""
    x, maxiter, tol = _setup(A, b, x0, rtol, atol, maxiter)
    r = b - A @ x
    z = _apply(M, r)
    p = z.copy()
    rz = rnp.vdot(r, z)
    for _it in range(maxiter):
        if float(rnp.linalg.norm(r)) <= tol:
            return x, 0
        q = A @ p
        pq = rnp.vdot(p, q)
        if complex(pq) == 0:
            return x, -1
        alpha = rz / pq
        x += p * alpha
        r -= q * alpha
        z = _apply(M, r)
        rz_next = rnp.vdot(r, z)
        beta = rz_next / rz
        p = z + p * beta
        rz = rz_next
        if callback is not None:
            callback(x)
    if float(rnp.linalg.norm(r)) <= tol:
        return x, 0
    return x, maxiter


def cgs(
    A,
    b: ndarray,
    x0: Optional[ndarray] = None,
    *,
    rtol: float = 1e-5,
    atol: float = 0.0,
    maxiter: Optional[int] = None,
    M=None,
    callback: Optional[Callable] = None,
) -> Tuple[ndarray, int]:
    """Conjugate Gradient Squared (non-symmetric systems)."""
    x, maxiter, tol = _setup(A, b, x0, rtol, atol, maxiter)
    r = b - A @ x
    rtilde = r.copy()
    rho_prev = None
    u = q = p = None
    for _it in range(maxiter):
        if float(rnp.linalg.norm(r)) <= tol:
            return x, 0
        rho = rnp.vdot(rtilde, r)
        if complex(rho) == 0:
            return x, -1
        if rho_prev is None:
            u = r.copy()
            p = r.copy()
        else:
            beta = rho / rho_prev
            u = r + q * beta
            p = u + (q + p * beta) * beta
        phat = _apply(M, p)
        vhat = A @ phat
        sigma = rnp.vdot(rtilde, vhat)
        if complex(sigma) == 0:
            return x, -1
        alpha = rho / sigma
        q = u - vhat * alpha
        uhat = _apply(M, u + q)
        x += uhat * alpha
        r -= (A @ uhat) * alpha
        rho_prev = rho
        if callback is not None:
            callback(x)
    if float(rnp.linalg.norm(r)) <= tol:
        return x, 0
    return x, maxiter


def bicg(
    A,
    b: ndarray,
    x0: Optional[ndarray] = None,
    *,
    rtol: float = 1e-5,
    atol: float = 0.0,
    maxiter: Optional[int] = None,
    M=None,
    callback: Optional[Callable] = None,
) -> Tuple[ndarray, int]:
    """Biconjugate Gradient (uses A and A^T products)."""
    AT = aslinearoperator(A).T if not hasattr(A, "_rmatvec") else None
    x, maxiter, tol = _setup(A, b, x0, rtol, atol, maxiter)
    r = b - A @ x
    rtilde = r.copy()
    p = ptilde = None
    rho_prev = None
    for _it in range(maxiter):
        if float(rnp.linalg.norm(r)) <= tol:
            return x, 0
        z = _apply(M, r)
        ztilde = _apply(M, rtilde)
        rho = rnp.vdot(rtilde, z)
        if complex(rho) == 0:
            return x, -1
        if rho_prev is None:
            p = z.copy()
            ptilde = ztilde.copy()
        else:
            beta = rho / rho_prev
            p = z + p * beta
            ptilde = ztilde + ptilde * beta
        q = A @ p
        if AT is not None:
            qtilde = AT.matvec(ptilde)
        else:
            qtilde = A._rmatvec(ptilde)
        denom = rnp.vdot(ptilde, q)
        if complex(denom) == 0:
            return x, -1
        alpha = rho / denom
        x += p * alpha
        r -= q * alpha
        rtilde -= qtilde * alpha.conjugate() if hasattr(alpha, "conjugate") else qtilde * alpha
        rho_prev = rho
        if callback is not None:
            callback(x)
    if float(rnp.linalg.norm(r)) <= tol:
        return x, 0
    return x, maxiter


def bicgstab(
    A,
    b: ndarray,
    x0: Optional[ndarray] = None,
    *,
    rtol: float = 1e-5,
    atol: float = 0.0,
    maxiter: Optional[int] = None,
    M=None,
    callback: Optional[Callable] = None,
) -> Tuple[ndarray, int]:
    """BiCGSTAB (stabilized BiCG; no transpose products)."""
    x, maxiter, tol = _setup(A, b, x0, rtol, atol, maxiter)
    r = b - A @ x
    rtilde = r.copy()
    rho_prev = alpha = omega = None
    v = p = None
    for _it in range(maxiter):
        if float(rnp.linalg.norm(r)) <= tol:
            return x, 0
        rho = rnp.vdot(rtilde, r)
        if complex(rho) == 0:
            return x, -1
        if rho_prev is None:
            p = r.copy()
        else:
            beta = (rho / rho_prev) * (alpha / omega)
            p = r + (p - v * omega) * beta
        phat = _apply(M, p)
        v = A @ phat
        denom = rnp.vdot(rtilde, v)
        if complex(denom) == 0:
            return x, -1
        alpha = rho / denom
        s = r - v * alpha
        if float(rnp.linalg.norm(s)) <= tol:
            x += phat * alpha
            return x, 0
        shat = _apply(M, s)
        t = A @ shat
        tt = rnp.vdot(t, t)
        if complex(tt) == 0:
            return x, -1
        omega = rnp.vdot(t, s) / tt
        x += phat * alpha + shat * omega
        r = s - t * omega
        rho_prev = rho
        if callback is not None:
            callback(x)
    if float(rnp.linalg.norm(r)) <= tol:
        return x, 0
    return x, maxiter


def gmres(
    A,
    b: ndarray,
    x0: Optional[ndarray] = None,
    *,
    rtol: float = 1e-5,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: Optional[int] = None,
    M=None,
    callback: Optional[Callable] = None,
) -> Tuple[ndarray, int]:
    """Restarted GMRES.

    The Krylov basis is a list of distributed vectors; the small
    Hessenberg system and Givens rotations live on the host, matching
    SciPy's structure.
    """
    x, _, tol = _setup(A, b, x0, rtol, atol, maxiter)
    n = b.shape[0]
    if maxiter is None:
        maxiter = min(10 * n, 1000)
    restart = min(restart, n)
    hdtype = complex if b.dtype.kind == "c" else float
    outer_done = 0
    while outer_done < maxiter:
        r = _apply(M, b - A @ x)
        beta = float(rnp.linalg.norm(r))
        if beta <= tol:
            return x, 0
        V = [r / beta]
        H = np.zeros((restart + 1, restart), dtype=hdtype)
        e1 = np.zeros(restart + 1, dtype=hdtype)
        e1[0] = beta
        k_used = 0
        y = None
        for k in range(restart):
            if outer_done + k >= maxiter:
                break
            w = _apply(M, A @ V[k])
            # Modified Gram-Schmidt orthogonalization.
            for i in range(k + 1):
                hik = complex(rnp.vdot(V[i], w))
                H[i, k] = hik if hdtype is complex else hik.real
                w -= V[i] * H[i, k]
            hkk = float(rnp.linalg.norm(w))
            H[k + 1, k] = hkk
            k_used = k + 1
            # Small host-side least-squares solve (SciPy keeps this on
            # the host too: it is O(restart^2) data).
            Hk = H[: k + 2, : k + 1]
            y, _, _, _ = np.linalg.lstsq(Hk, e1[: k + 2], rcond=None)
            resid = float(np.linalg.norm(Hk @ y - e1[: k + 2]))
            if hkk <= 1e-14 or resid <= tol:
                break
            V.append(w / hkk)
        if k_used > 0 and y is not None:
            for i in range(k_used):
                coeff = complex(y[i]) if hdtype is complex else float(np.real(y[i]))
                x += V[i] * coeff
        outer_done += max(k_used, 1)
        if callback is not None:
            callback(x)
        resid = float(rnp.linalg.norm(b - A @ x))
        if resid <= tol:
            return x, 0
    return x, maxiter
