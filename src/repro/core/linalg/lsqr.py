"""LSQR: least-squares via Golub-Kahan bidiagonalization (Paige-Saunders).

A direct port of the classic algorithm onto distributed arrays: every
iteration is one ``A @ v`` and one ``A.T @ u`` (the transpose product
uses the scatter kernel — no transpose is materialized) plus a handful
of axpys and norms.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.numeric.array import ndarray


def lsqr(
    A,
    b: ndarray,
    atol: float = 1e-8,
    btol: float = 1e-8,
    iter_lim: Optional[int] = None,
    x0: Optional[ndarray] = None,
) -> Tuple[ndarray, int, int, float]:
    """Solve ``min ||A x - b||_2`` (or the consistent system).

    Returns ``(x, istop, itn, residual_norm)`` with SciPy's ``istop``
    conventions: 1 = solution found within ``atol``/``btol``,
    2 = least-squares solution found, 7 = iteration limit.
    """
    m, n = A.shape
    if b.shape[0] != m:
        raise ValueError(f"b has length {b.shape[0]}, expected {m}")
    if iter_lim is None:
        iter_lim = 2 * n

    if x0 is not None:
        x = x0.copy()
        u = b - A @ x
    else:
        x = rnp.zeros(n, dtype=b.dtype)
        u = b.copy()

    beta = float(rnp.linalg.norm(u))
    if beta > 0:
        u = u / beta
    v = u @ A  # A.T @ u via the scatter kernel
    alpha = float(rnp.linalg.norm(v))
    if alpha > 0:
        v = v / alpha
    w = v.copy()

    phibar, rhobar = beta, alpha
    bnorm = beta
    anorm = 0.0
    rnorm = beta
    arnorm = alpha * beta
    if arnorm == 0:
        return x, 1, 0, rnorm

    istop, itn = 0, 0
    while itn < iter_lim:
        itn += 1
        # Bidiagonalization step.
        u = A @ v - u * alpha
        beta = float(rnp.linalg.norm(u))
        if beta > 0:
            u = u / beta
        anorm = math.hypot(anorm, math.hypot(alpha, beta))
        v = (u @ A) - v * beta
        alpha = float(rnp.linalg.norm(v))
        if alpha > 0:
            v = v / alpha

        # Givens rotation eliminating beta.
        rho = math.hypot(rhobar, beta)
        c = rhobar / rho
        s = beta / rho
        theta = s * alpha
        rhobar = -c * alpha
        phi = c * phibar
        phibar = s * phibar

        # Update the solution and the search direction.
        x += w * (phi / rho)
        w = v - w * (theta / rho)

        rnorm = phibar
        arnorm = phibar * alpha * abs(c)
        # Stopping tests (SciPy's 1/2 criteria).
        test1 = rnorm / max(bnorm, 1e-300)
        test2 = arnorm / max(anorm * rnorm, 1e-300)
        if test1 <= btol + atol * anorm * float(rnp.linalg.norm(x)) / max(bnorm, 1e-300):
            istop = 1
            break
        if test2 <= atol:
            istop = 2
            break
    else:
        istop = 7
    return x, istop, itn, rnorm
