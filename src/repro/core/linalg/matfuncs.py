"""Matrix functions: the action of the matrix exponential.

``expm_multiply`` computes ``exp(t A) @ v`` with the scaling-and-Taylor
scheme (a simplified Al-Mohy-Higham): choose ``s`` so that
``||t A||_1 / s`` is modest, then apply ``s`` truncated Taylor sweeps.
Everything inside is SpMV + axpy, so the port is pure distributed
operations (§5.2) — the same way SciPy builds it from matvecs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

import repro.numeric as rnp
from repro.numeric.array import ndarray


def expm_multiply(
    A,
    v: ndarray,
    t: float = 1.0,
    max_terms: int = 30,
    tol: float = 1e-12,
) -> ndarray:
    """``exp(t A) @ v`` without forming the exponential."""
    from repro.core.linalg.norms import norm as sparse_norm

    if A.shape[0] != A.shape[1]:
        raise ValueError("expm_multiply requires a square matrix")
    if v.shape[0] != A.shape[0]:
        raise ValueError("dimension mismatch")
    one_norm = float(sparse_norm(A, ord=1)) * abs(t)
    s = max(1, int(math.ceil(one_norm / 2.0)))
    h = t / s
    y = v.copy()
    for _ in range(s):
        term = y.copy()
        acc = y.copy()
        base = float(rnp.linalg.norm(y))
        for k in range(1, max_terms + 1):
            term = (A @ term) * (h / k)
            acc = acc + term
            if float(rnp.linalg.norm(term)) <= tol * max(base, 1e-300):
                break
        y = acc
    return y
