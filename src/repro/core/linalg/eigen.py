"""Eigensolvers: power iteration and a Lanczos ``eigsh``.

Ported solver structure (§5.2): distributed matvecs and dots; the small
tridiagonal eigenproblem is solved on the host.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.numeric.array import Scalar, ndarray


def power_iteration(
    A, iters: int = 50, x0: Optional[ndarray] = None, seed: int = 0
) -> Tuple[Scalar, ndarray]:
    """Largest-magnitude eigenvalue via the Rayleigh quotient (Fig. 1)."""
    n = A.shape[0]
    if x0 is None:
        rnp.random.seed(seed)
        x = rnp.random.rand(n)
    else:
        x = x0.copy()
    for _ in range(iters):
        x = A @ x
        x /= rnp.linalg.norm(x)
    eig = rnp.vdot(x, A @ x)
    return eig, x


def eigsh(
    A,
    k: int = 1,
    which: str = "LA",
    maxiter: Optional[int] = None,
    v0: Optional[ndarray] = None,
    return_eigenvectors: bool = False,
    seed: int = 0,
):
    """Lanczos for a few extremal eigenvalues of a symmetric matrix.

    Supports ``which`` in {"LA", "SA", "LM"}.  Uses full
    reorthogonalization (the basis is a list of distributed vectors), so
    ``maxiter`` should stay modest — which is also SciPy's regime for
    well-separated extremal spectra.
    """
    n = A.shape[0]
    if k < 1 or k >= n:
        raise ValueError("k must satisfy 1 <= k < n")
    m = maxiter if maxiter is not None else min(n, max(4 * k, 40))
    m = min(m, n)
    if v0 is None:
        rnp.random.seed(seed)
        v = rnp.random.rand(n)
    else:
        v = v0.copy()
    v /= rnp.linalg.norm(v)
    basis = [v]
    alphas, betas = [], []
    for j in range(m):
        w = A @ basis[j]
        alpha = float(rnp.vdot(basis[j], w))
        alphas.append(alpha)
        w -= basis[j] * alpha
        if j > 0:
            w -= basis[j - 1] * betas[-1]
        # Full reorthogonalization for numerical robustness.
        for q in basis:
            w -= q * rnp.vdot(q, w)
        beta = float(rnp.linalg.norm(w))
        if beta < 1e-12:
            break
        betas.append(beta)
        basis.append(w / beta)
    T = np.diag(alphas)
    if betas:
        off = np.array(betas[: len(alphas) - 1])
        T += np.diag(off, 1) + np.diag(off, -1)
    evals, evecs = np.linalg.eigh(T)
    if which == "LA":
        order = np.argsort(evals)[::-1]
    elif which == "SA":
        order = np.argsort(evals)
    elif which == "LM":
        order = np.argsort(np.abs(evals))[::-1]
    else:
        raise ValueError(f"unsupported which={which!r}")
    chosen = order[:k]
    values = evals[chosen]
    if not return_eigenvectors:
        return np.sort(values)
    vectors = []
    for idx in chosen:
        vec = rnp.zeros(n)
        for coeff, q in zip(evecs[:, idx], basis):
            vec += q * float(coeff)
        vectors.append(vec)
    return np.sort(values), vectors


def lobpcg_max(A, iters: int = 30, seed: int = 0) -> float:
    """A cheap largest-eigenvalue estimate (power iteration wrapper)."""
    eig, _ = power_iteration(A, iters=iters, seed=seed)
    return float(rnp.real(eig) if isinstance(eig, ndarray) else eig)
