"""Sparse matrix norms (``scipy.sparse.linalg.norm``)."""

from __future__ import annotations

import numpy as np

import repro.numeric as rnp
from repro.numeric.array import Scalar


def norm(A, ord=None) -> Scalar:
    """Frobenius (default), infinity (max abs row sum), or 1-norm."""
    if ord in (None, "fro"):
        return rnp.linalg.norm(A.tocsr().data)
    if ord == np.inf:
        return rnp.amax(abs(A.tocsr()).sum(axis=1))
    if ord == 1:
        return rnp.amax(abs(A.tocsr()).sum(axis=0))
    raise NotImplementedError(f"norm ord={ord!r} is not implemented")


def onenormest(A) -> Scalar:
    """Exact 1-norm (SciPy estimates it; ours is cheap to compute)."""
    return norm(A, ord=1)
