"""Triangular solve: the §5.4 "external library" category, implemented.

SciPy's ``spsolve_triangular`` calls compiled substitution code; the
sequential dependence chain makes a scalable distributed version a
research problem of its own, so — matching how the paper's prototype
treats solver factorizations — the substitution runs as a single
*gathered* task (all operands replicated to one processor) with the
corresponding cost; the paper's "path forward" for these functions is
recorded in ``repro.core.coverage``.
"""

from __future__ import annotations

import numpy as np

import repro.numeric as rnp
from repro.constraints import AutoTask
from repro.numeric.array import ndarray


def spsolve_triangular(A, b: ndarray, lower: bool = True, unit_diagonal: bool = False) -> ndarray:
    """Solve ``A x = b`` for triangular sparse ``A``."""
    csr = A.tocsr()
    n, m = csr.shape
    if n != m:
        raise ValueError("triangular solve requires a square matrix")
    if b.shape[0] != n:
        raise ValueError(f"b has length {b.shape[0]}, expected {n}")
    rt = csr.runtime
    out_dtype = np.result_type(csr.dtype, b.dtype)
    x = rnp.empty(n, dtype=out_dtype)

    def kernel(ctx):
        pos = ctx.arrays["pos"]
        crd = ctx.arrays["crd"]
        vals = ctx.arrays["vals"]
        rhs = ctx.arrays["b"]
        sol = ctx.arrays["x"]
        order = range(n) if lower else range(n - 1, -1, -1)
        for i in order:
            lo, hi = pos[i]
            cols = crd[lo:hi]
            row_vals = vals[lo:hi]
            acc = rhs[i]
            diag = None
            for col, val in zip(cols, row_vals):
                if col == i:
                    diag = val
                elif (lower and col < i) or (not lower and col > i):
                    acc = acc - val * sol[col]
            if unit_diagonal:
                sol[i] = acc
            else:
                if diag is None or diag == 0:
                    raise np.linalg.LinAlgError(
                        f"singular triangular matrix: zero diagonal at row {i}"
                    )
                sol[i] = acc / diag

    def cost(ctx):
        nnz = ctx.rects["crd"].volume()
        isz = out_dtype.itemsize
        # Sequential substitution: every nnz is touched once, with a
        # dependent-chain latency term proportional to n.
        return 2.0 * nnz + n, nnz * (8.0 + isz) + 3.0 * n * isz

    task = AutoTask(rt, "spsolve_triangular", kernel, cost, colors=1)
    task.add_output("x", x.store)
    task.add_input("pos", csr.pos)
    task.add_input("crd", csr.crd)
    task.add_input("vals", csr.vals)
    task.add_input("b", b.store)
    for store in (x.store, csr.pos, csr.crd, csr.vals, b.store):
        task.add_broadcast(store)
    task.execute()
    return x
