"""Sparse matrix persistence: ``save_npz`` / ``load_npz`` ports.

The on-disk format matches SciPy's ``.npz`` layout for CSR/CSC/COO/DIA,
so files interchange with stock SciPy in both directions.
"""

from __future__ import annotations

import numpy as np


def save_npz(file, matrix, compressed: bool = True) -> None:
    """Save a sparse matrix in SciPy's ``.npz`` layout."""
    fmt = matrix.format
    matrix.runtime.barrier()
    fields = {"format": np.array(fmt.encode("ascii")), "shape": np.array(matrix.shape)}
    if fmt in ("csr", "csc"):
        fields["data"] = matrix.vals.data.copy()
        fields["indices"] = matrix.crd.data.copy()
        fields["indptr"] = matrix.indptr
    elif fmt == "coo":
        fields["data"] = matrix.vals.data.copy()
        fields["row"] = matrix.row_store.data.copy()
        fields["col"] = matrix.col_store.data.copy()
    elif fmt == "dia":
        # SciPy stores (ndiags, m); convert from our transposed layout.
        import scipy.sparse as sps

        coo = matrix.tocoo()
        sp_mat = sps.coo_matrix(
            (coo.data.to_numpy(), (coo.row, coo.col)), shape=matrix.shape
        ).todia()
        fields["data"] = sp_mat.data
        fields["offsets"] = sp_mat.offsets
    else:
        raise NotImplementedError(f"save_npz does not support format {fmt!r}")
    saver = np.savez_compressed if compressed else np.savez
    saver(file, **fields)


def load_npz(file):
    """Load a matrix saved by :func:`save_npz` or SciPy's ``save_npz``."""
    from repro.core.coo import coo_matrix
    from repro.core.csc import csc_matrix
    from repro.core.csr import csr_matrix
    from repro.core.dia import dia_matrix

    with np.load(file, allow_pickle=False) as payload:
        fmt = payload["format"].item()
        if isinstance(fmt, bytes):
            fmt = fmt.decode("ascii")
        shape = tuple(int(s) for s in payload["shape"])
        if fmt == "csr":
            return csr_matrix(
                (payload["data"], payload["indices"], payload["indptr"]),
                shape=shape,
            )
        if fmt == "csc":
            import scipy.sparse as sps

            return csc_matrix(
                sps.csc_matrix(
                    (payload["data"], payload["indices"], payload["indptr"]),
                    shape=shape,
                )
            )
        if fmt == "coo":
            return coo_matrix(
                (payload["data"], (payload["row"], payload["col"])), shape=shape
            )
        if fmt == "dia":
            return dia_matrix((payload["data"], payload["offsets"]), shape=shape)
    raise NotImplementedError(f"load_npz does not support format {fmt!r}")
