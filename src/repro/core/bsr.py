"""BSR matrices: block sparse rows (the paper's §5.4 planned format).

Storage: ``pos`` compresses *block rows* ((nblockrows, 2) ranges), ``crd``
holds block-column indices, and ``vals`` is an ``(nblocks, R*C)`` region
of flattened blocks.  The SpMV is a DISTAL-generated kernel; the block
structure makes its shards dense-compute-friendly, which is why the
paper plans BSR as the next generated format.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import Store
from repro.core import validation
from repro.core.base import spmatrix
from repro.distal.formats import BSR
from repro.distal.registry import get_registry, launch
from repro.geometry import Rect
from repro.legion.partition import ExplicitPartition, Tiling
from repro.numeric.array import ndarray


class bsr_matrix(spmatrix):
    """Block sparse rows (block-compressed pos/crd + block vals)."""
    format = "bsr"

    def __init__(self, arg1, shape=None, blocksize: Optional[Tuple[int, int]] = None, dtype=None):
        import scipy.sparse as sps

        if isinstance(arg1, spmatrix):
            src = arg1.tocsr()
            self._init_from_scipy(
                sps.csr_matrix(
                    (src.vals.data.copy(), src.crd.data.copy(), src.indptr),
                    shape=src.shape,
                ).tobsr(blocksize=blocksize),
                dtype,
            )
            return
        if sps.issparse(arg1):
            self._init_from_scipy(arg1.tobsr(blocksize=blocksize), dtype)
            return
        if isinstance(arg1, np.ndarray) and arg1.ndim == 2:
            self._init_from_scipy(
                sps.csr_matrix(arg1).tobsr(blocksize=blocksize), dtype
            )
            return
        if isinstance(arg1, tuple) and len(arg1) == 3:
            data, indices, indptr = arg1
            data = np.asarray(data)
            if data.ndim != 3:
                raise ValueError("BSR data must be (nblocks, R, C)")
            validation.check_bsr_shape(shape, data.shape[1:])
            indices = validation.as_index_array(indices, "indices")
            indptr = validation.as_index_array(indptr, "indptr")
            if len(indices) != data.shape[0]:
                raise ValueError(
                    f"indices length ({len(indices)}) does not match the "
                    f"block count in data ({data.shape[0]})"
                )
            mat = sps.bsr_matrix((data, indices, indptr), shape=shape)
            self._init_from_scipy(mat, dtype)
            return
        raise TypeError(f"cannot construct bsr_matrix from {type(arg1).__name__}")

    def _init_from_scipy(self, mat, dtype):
        mat = mat.tobsr()
        mat.sort_indices()
        final_dtype = np.dtype(dtype) if dtype is not None else mat.dtype
        if final_dtype.kind not in "fc":
            final_dtype = np.float64
        spmatrix.__init__(self, mat.shape, final_dtype)
        rt = self._runtime
        self.blocksize = tuple(int(b) for b in mat.blocksize)
        R, C = self.blocksize
        nbrows = mat.shape[0] // R
        indptr = mat.indptr.astype(np.int64)
        pos_data = np.ascontiguousarray(np.stack([indptr[:-1], indptr[1:]], axis=1))
        self.pos = Store.create((nbrows, 2), np.int64, data=pos_data, runtime=rt, name="bsr_pos")
        nblocks = mat.indices.shape[0]
        self.crd = Store.create(
            (nblocks,), np.int64, data=mat.indices.astype(np.int64), runtime=rt, name="bsr_crd"
        )
        self.vals = Store.create(
            (nblocks, R * C),
            final_dtype,
            data=np.ascontiguousarray(mat.data.reshape(nblocks, R * C).astype(final_dtype)),
            runtime=rt,
            name="bsr_vals",
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored scalar entries (blocks x block area)."""
        R, C = self.blocksize
        return self.crd.shape[0] * R * C

    @property
    def nblocks(self) -> int:
        """Number of stored blocks."""
        return self.crd.shape[0]

    @property
    def data(self) -> ndarray:
        """The (nblocks, R*C) block values as a dense array."""
        return ndarray(self.vals)

    def _proc_kind(self):
        return self._runtime.scope.kind

    # ------------------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        out_dtype = np.result_type(self.dtype, x.dtype)
        vals = self.vals
        if out_dtype != self.dtype:
            vals = ndarray(self.vals).astype(out_dtype).store
        rt = self._runtime
        R, C = self.blocksize
        n, m = self.shape
        y = rnp.empty(n, dtype=out_dtype)
        # Block-row tiling of pos; scaled tiles for y; block-column
        # bounding image for x (dependent partitioning over crd data).
        tiling = Tiling.create(self.pos.region, rt.num_procs)
        y_rects, x_rects = [], []
        rt.barrier()
        pos_data, crd_data = self.pos.data, self.crd.data
        for c in range(tiling.color_count):
            r = tiling.rect(c)
            brlo, brhi = r.lo[0], r.hi[0]
            y_rects.append(Rect((brlo * R,), (brhi * R,)))
            if brhi <= brlo:
                x_rects.append(Rect((0,), (0,)))
                continue
            jlo, jhi = int(pos_data[brlo, 0]), int(pos_data[brhi - 1, 1])
            if jhi <= jlo:
                x_rects.append(Rect((0,), (0,)))
                continue
            cols = crd_data[jlo:jhi]
            x_rects.append(Rect((int(cols.min()) * C,), ((int(cols.max()) + 1) * C,)))
        spec = get_registry().get("y(i)=A(i,j)*x(j)", BSR, self._proc_kind())
        launch(
            spec,
            rt,
            {"y": y.store, "pos": self.pos, "crd": self.crd, "vals": vals, "x": x.store},
            explicit_partitions={
                "y": ExplicitPartition(y.store.region, y_rects),
                "x": ExplicitPartition(x.store.region, x_rects),
            },
            scalars={"R": R, "C": C},
        )
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        return self.tocsr()._rmatvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        return self.tocsr()._matmat(X)

    # ------------------------------------------------------------------
    def tobsr(self) -> "bsr_matrix":
        """Identity."""
        return self

    def tocsr(self):
        """Host conversion through scipy block expansion."""
        from repro.core.csr import csr_matrix

        self._runtime.barrier()
        import scipy.sparse as sps

        R, C = self.blocksize
        mat = sps.bsr_matrix(
            (
                self.vals.data.reshape(-1, R, C),
                self.crd.data,
                np.concatenate([self.pos.data[:, 0], self.pos.data[-1:, 1]])
                if self.pos.shape[0]
                else np.zeros(1, np.int64),
            ),
            shape=self.shape,
        )
        result = csr_matrix(mat.tocsr())
        self._note_convert("csr", result)
        return result

    def tocoo(self):
        """Convert through CSR."""
        return self.tocsr().tocoo()

    def toarray(self) -> np.ndarray:
        """Synchronize and densify."""
        return self.tocsr().toarray()

    todense = toarray

    def transpose(self):
        """Transpose through CSR."""
        return self.tocsr().transpose()

    def diagonal(self, k: int = 0) -> ndarray:
        """The main diagonal (through CSR)."""
        return self.tocsr().diagonal(k)

    def sum(self, axis: Optional[int] = None):
        """Sum of entries or per-axis sums (through CSR)."""
        return self.tocsr().sum(axis=axis)

    # ------------------------------------------------------------------
    def _with_values(self, vals: ndarray) -> "bsr_matrix":
        obj = bsr_matrix.__new__(bsr_matrix)
        spmatrix.__init__(obj, self.shape, vals.dtype)
        obj.blocksize = self.blocksize
        obj.pos, obj.crd, obj.vals = self.pos, self.crd, vals.store
        return obj

    def _scale(self, alpha) -> "bsr_matrix":
        return self._with_values(self.data * alpha)

    def _unary_values(self, fn) -> "bsr_matrix":
        return self._with_values(fn(self.data))

    def copy(self) -> "bsr_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_values(self.data.copy())

    def astype(self, dtype) -> "bsr_matrix":
        """A cast copy of the block values."""
        return self._with_values(self.data.astype(dtype))

    def conj(self) -> "bsr_matrix":
        """Complex conjugate of the block values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_values(self.data.conj())

    conjugate = conj


bsr_array = bsr_matrix
