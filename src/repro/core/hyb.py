"""HYB matrices: an ELL part for the common rows plus a CSR-style spill.

Storage layout: the first ``min(len, K)`` entries of every row live in
``(n, K)`` padded ``data``/``cols`` lanes (``K`` is a quantile of the
nonzero row-length distribution, :func:`~repro.analysis.formatsel.hyb_ell_width`);
the overflow goes to compressed ``spill_pos``/``spill_crd``/``spill_vals``
regions.  ``rowlen`` holds *full* row lengths.  Both halves keep
ascending-column order, so interleaving them per row rebuilds the exact
CSR contribution stream and the generated SpMV stays bitwise identical
to CSR execution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.numeric as rnp
from repro.core import validation
from repro.core.base import spmatrix
from repro.distal.formats import HYB
from repro.distal.registry import get_registry, launch
from repro.numeric.array import ndarray


class hyb_matrix(spmatrix):
    """HYB-format matrix: padded ELL part plus compressed spill."""

    format = "hyb"

    def __init__(self, arg1, shape=None, dtype=None,
                 quantile: Optional[float] = None):
        from repro.core.csr import csr_matrix

        if isinstance(arg1, hyb_matrix) and quantile is None:
            src = arg1
        elif isinstance(arg1, spmatrix):
            src = arg1.tohyb(quantile=quantile)
        else:
            src = csr_matrix(arg1, shape=shape, dtype=dtype).tohyb(
                quantile=quantile
            )
        spmatrix.__init__(self, src.shape, dtype or src.dtype)
        if src.dtype == self._dtype:
            self.data_store = src.data_store
            self.spill_vals_store = src.spill_vals_store
        else:
            self.data_store = ndarray(src.data_store).astype(self._dtype).store
            self.spill_vals_store = (
                ndarray(src.spill_vals_store).astype(self._dtype).store
            )
        self.cols_store = src.cols_store
        self.rowlen_store = src.rowlen_store
        self.spill_pos_store = src.spill_pos_store
        self.spill_crd_store = src.spill_crd_store
        self._nnz = src._nnz

    @classmethod
    def _from_stores(
        cls, data, cols, rowlen, spill_pos, spill_crd, spill_vals, shape
    ) -> "hyb_matrix":
        obj = cls.__new__(cls)
        spmatrix.__init__(obj, shape, data.dtype)
        obj.data_store = data
        obj.cols_store = cols
        obj.rowlen_store = rowlen
        obj.spill_pos_store = spill_pos
        obj.spill_crd_store = spill_crd
        obj.spill_vals_store = spill_vals
        obj._nnz = None
        obj._validate()
        return obj

    def _validate(self) -> None:
        if not self._runtime.config.validate:
            return
        self._runtime.barrier()
        validation.check_hyb_host(
            self.data_store.data,
            self.cols_store.data,
            self.rowlen_store.data,
            self.spill_pos_store.data,
            self.spill_crd_store.data,
            self.spill_vals_store.data,
            self.shape,
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (ELL part plus spill)."""
        if self._nnz is None:
            self._runtime.barrier()
            self._nnz = int(self.rowlen_store.data.sum())
        return self._nnz

    @property
    def width(self) -> int:
        """The ELL-part lane count K."""
        return self.data_store.shape[1]

    @property
    def spill_nnz(self) -> int:
        """Entries stored in the compressed spill."""
        return self.spill_crd_store.shape[0]

    @property
    def data(self) -> ndarray:
        """The (n, K) ELL-part value store as a dense array (shared)."""
        return ndarray(self.data_store)

    @property
    def spill_data(self) -> ndarray:
        """The spill value store as a dense array (shared)."""
        return ndarray(self.spill_vals_store)

    def _proc_kind(self):
        return self._runtime.scope.kind

    # ------------------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        out_dtype = np.result_type(self.dtype, x.dtype)
        data_store = self.data_store
        spill_vals = self.spill_vals_store
        if out_dtype != self.dtype:
            data_store = ndarray(self.data_store).astype(out_dtype).store
            spill_vals = ndarray(self.spill_vals_store).astype(out_dtype).store
        y = rnp.empty(self.shape[0], dtype=out_dtype)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", HYB, self._proc_kind())
        launch(
            spec,
            self._runtime,
            {
                "y": y.store,
                "data": data_store,
                "cols": self.cols_store,
                "rowlen": self.rowlen_store,
                "spill_pos": self.spill_pos_store,
                "spill_crd": self.spill_crd_store,
                "spill_vals": spill_vals,
                "x": x.store,
            },
        )
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        return self.tocsr()._rmatvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        return self.tocsr()._matmat(X)

    # ------------------------------------------------------------------
    def tocsr(self):
        """Distributed interleave back to CSR."""
        from repro.core.convert import hyb_to_csr

        result = hyb_to_csr(self)
        self._note_convert("csr", result)
        return result

    def tocoo(self):
        """Convert through CSR."""
        return self.tocsr().tocoo()

    def tohyb(self, quantile: Optional[float] = None) -> "hyb_matrix":
        """Identity unless re-split at a different quantile."""
        if quantile is None:
            return self
        return self.tocsr().tohyb(quantile=quantile)

    def transpose(self):
        """Transpose through CSR."""
        return self.tocsr().transpose()

    # ------------------------------------------------------------------
    def _with_values(self, data: ndarray, spill: ndarray) -> "hyb_matrix":
        obj = hyb_matrix.__new__(hyb_matrix)
        spmatrix.__init__(obj, self.shape, data.dtype)
        obj.data_store = data.store
        obj.cols_store = self.cols_store
        obj.rowlen_store = self.rowlen_store
        obj.spill_pos_store = self.spill_pos_store
        obj.spill_crd_store = self.spill_crd_store
        obj.spill_vals_store = spill.store
        obj._nnz = self._nnz
        return obj

    def _scale(self, alpha) -> "hyb_matrix":
        return self._with_values(self.data * alpha, self.spill_data * alpha)

    def _unary_values(self, fn) -> "hyb_matrix":
        return self._with_values(fn(self.data), fn(self.spill_data))

    def copy(self) -> "hyb_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_values(self.data.copy(), self.spill_data.copy())

    def astype(self, dtype) -> "hyb_matrix":
        """A cast copy of both value halves (structure shared)."""
        return self._with_values(
            self.data.astype(dtype), self.spill_data.astype(dtype)
        )

    def conj(self) -> "hyb_matrix":
        """Complex conjugate of the values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_values(self.data.conj(), self.spill_data.conj())

    conjugate = conj


hyb_array = hyb_matrix
