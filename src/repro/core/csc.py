"""CSC matrices: column-compressed, sharing kernels with CSR.

A CSC matrix stores ``pos`` over *columns*.  Its products dispatch into
the same DISTAL-generated kernels as CSR with the operand roles flipped
(a CSC SpMV is the CSR transpose-SpMV scatter kernel), and
``transpose()`` is free in both directions — the paper's CSR/CSC pair.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import Store
from repro.core.base import spmatrix
from repro.distal.formats import CSR
from repro.distal.registry import get_registry, launch
from repro.numeric.array import ndarray


class csc_matrix(spmatrix):
    """Compressed sparse columns (pos over columns)."""
    format = "csc"

    def __init__(self, arg1, shape=None, dtype=None):
        from repro.core.csr import csr_matrix

        if isinstance(arg1, spmatrix):
            src = arg1.tocsc()
            spmatrix.__init__(self, src.shape, dtype or src.dtype)
            self.pos, self.crd = src.pos, src.crd
            self.vals = (
                src.vals
                if src.dtype == self._dtype
                else ndarray(src.vals).astype(self._dtype).store
            )
            return
        # Build through CSR and convert (host assembly either way).
        csr = csr_matrix(arg1, shape=shape, dtype=dtype)
        src = csr.tocsc()
        spmatrix.__init__(self, src.shape, src.dtype)
        self.pos, self.crd, self.vals = src.pos, src.crd, src.vals

    @classmethod
    def _from_stores(cls, pos, crd, vals, shape) -> "csc_matrix":
        obj = cls.__new__(cls)
        spmatrix.__init__(obj, shape, vals.dtype)
        obj.pos, obj.crd, obj.vals = pos, crd, vals
        return obj

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return self.crd.shape[0]

    @property
    def data(self) -> ndarray:
        """The values as a dense repro.numeric array (shared)."""
        return ndarray(self.vals)

    @property
    def indices(self) -> np.ndarray:
        """Host copy of the row-index array (crd)."""
        self._runtime.barrier()
        return self.crd.data.copy()

    @property
    def indptr(self) -> np.ndarray:
        """Host indptr over columns."""
        self._runtime.barrier()
        pos = self.pos.data
        if pos.shape[0] == 0:
            return np.zeros(1, dtype=np.int64)
        return np.concatenate([pos[:, 0], pos[-1:, 1]])

    def _stores(self) -> dict:
        return {"pos": self.pos, "crd": self.crd, "vals": self.vals}

    def _proc_kind(self):
        return self._runtime.scope.kind

    # ------------------------------------------------------------------
    # Products: CSC kernels are the CSR kernels with roles flipped.
    # ------------------------------------------------------------------
    def _promoted(self, other_dtype) -> "csc_matrix":
        out_dtype = np.result_type(self.dtype, other_dtype)
        if out_dtype == self.dtype:
            return self
        return csc_matrix._from_stores(
            self.pos, self.crd, ndarray(self.vals).astype(out_dtype).store, self.shape
        )

    def _matvec(self, x: ndarray) -> ndarray:
        A = self._promoted(x.dtype)
        y = rnp.zeros(self.shape[0], dtype=A.dtype)
        spec = get_registry().get("y(j)=A(i,j)*x(i)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"y": y.store, "x": x.store})
        launch(spec, self._runtime, stores)
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        A = self._promoted(x.dtype)
        y = rnp.empty(self.shape[1], dtype=A.dtype)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"y": y.store, "x": x.store})
        launch(spec, self._runtime, stores)
        return y

    def _matmat(self, X: ndarray) -> ndarray:
        A = self._promoted(X.dtype)
        Y = rnp.zeros((self.shape[0], X.shape[1]), dtype=A.dtype)
        spec = get_registry().get("Y(j,k)=A(i,j)*X(i,k)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"Y": Y.store, "X": X.store})
        launch(spec, self._runtime, stores)
        return Y

    # ------------------------------------------------------------------
    def transpose(self):
        """Free transpose: reinterpret as CSR."""
        from repro.core.csr import csr_matrix

        return csr_matrix._from_stores(
            self.pos, self.crd, self.vals, (self.shape[1], self.shape[0])
        )

    def tocsc(self) -> "csc_matrix":
        """Identity."""
        return self

    def tocsr(self):
        # Free transpose to CSR, real conversion, free transpose back.
        """Real conversion via the transposed sort."""
        result = self.transpose().tocsc().transpose()
        self._note_convert("csr", result)
        return result

    def tocoo(self):
        """Convert through CSR."""
        return self.tocsr().tocoo()

    def diagonal(self, k: int = 0) -> ndarray:
        """The main diagonal (through CSR)."""
        return self.tocsr().diagonal(k)

    def sum(self, axis: Optional[int] = None):
        """Sum of entries or per-axis sums (axis meaning flipped)."""
        if axis is None:
            return rnp.sum(self.data)
        # Column compression flips the axis meaning relative to CSR.
        flipped = {0: 1, 1: 0, -1: 0}[axis]
        return self.transpose().sum(axis=flipped)

    # ------------------------------------------------------------------
    def _with_values(self, vals: ndarray) -> "csc_matrix":
        return csc_matrix._from_stores(self.pos, self.crd, vals.store, self.shape)

    def _scale(self, alpha) -> "csc_matrix":
        return self._with_values(self.data * alpha)

    def _unary_values(self, fn) -> "csc_matrix":
        return self._with_values(fn(self.data))

    def copy(self) -> "csc_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_values(self.data.copy())

    def astype(self, dtype) -> "csc_matrix":
        """A cast copy of the values."""
        return self._with_values(self.data.astype(dtype))

    def conj(self) -> "csc_matrix":
        """Complex conjugate of the values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_values(self.data.conj())

    conjugate = conj

    def toarray(self) -> np.ndarray:
        """Synchronize and densify."""
        return self.transpose().toarray().T

    todense = toarray

    def _col_slice(self, key: slice) -> "csc_matrix":
        """Column slice: a pos-window over the column compression."""
        start, stop, step = key.indices(self.shape[1])
        if step != 1:
            raise NotImplementedError("strided column slicing is not supported")
        pos_nd = ndarray(self.pos)
        sub_pos = pos_nd[start:stop]
        return csc_matrix._from_stores(
            sub_pos.store, self.crd, self.vals, (self.shape[0], stop - start)
        )

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            rows, cols = key
            if rows == slice(None) and isinstance(cols, slice):
                return self._col_slice(cols)
        raise NotImplementedError(f"unsupported index {key!r}")


csc_array = csc_matrix
