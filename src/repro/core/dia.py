"""DIA matrices: diagonal storage for banded operators.

Storage layout: ``data`` is an ``(n, ndiags)`` region where
``data[i, d]`` multiplies ``x[i + offsets[d]]`` — the transpose of
SciPy's ``(ndiags, m)`` convention, chosen so that the row dimension
tiles align with the output vector (DESIGN.md).  The SpMV uses a
DISTAL-generated kernel with an explicit shifted-tile partition of the
input vector (there is no ``crd`` array to take an image through).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import Store
from repro.core import validation
from repro.core.base import spmatrix
from repro.distal.formats import DIA
from repro.distal.registry import get_registry, launch
from repro.geometry import Rect
from repro.legion.partition import ExplicitPartition, Tiling
from repro.numeric.array import ndarray


def _scipy_dia_to_transposed(
    data: np.ndarray, offsets: np.ndarray, shape: Tuple[int, int]
) -> np.ndarray:
    """SciPy layout data[d, j] = A[j-off, j]  →  ours data_t[i, d] = A[i, i+off]."""
    n, m = shape
    ndiags = len(offsets)
    data_t = np.zeros((n, ndiags), dtype=data.dtype)
    for d, off in enumerate(offsets):
        off = int(off)
        ilo = max(0, -off)
        ihi = min(n, m - off)
        if ihi > ilo:
            data_t[ilo:ihi, d] = data[d, ilo + off : ihi + off]
    return data_t


class dia_matrix(spmatrix):
    """Diagonal-format matrix ((n, ndiags) data + offsets)."""
    format = "dia"

    def __init__(self, arg1, shape=None, dtype=None):
        from repro.core.csr import _is_scipy_sparse

        if isinstance(arg1, spmatrix):
            src = arg1.todia()
            spmatrix.__init__(self, src.shape, dtype or src.dtype)
            self.data_store = src.data_store
            self.offsets_store = src.offsets_store
            self._offsets_host = src._offsets_host
            return
        if _is_scipy_sparse(arg1):
            dia = arg1.todia()
            data_t = _scipy_dia_to_transposed(dia.data, dia.offsets, dia.shape)
            self._init_host(data_t, np.asarray(dia.offsets, np.int64), dia.shape, dtype)
            return
        if isinstance(arg1, tuple) and len(arg1) == 2:
            data, offsets = arg1
            data, offsets = validation.check_dia_host(data, offsets, shape)
            data_t = _scipy_dia_to_transposed(data, offsets, shape)
            self._init_host(data_t, offsets, shape, dtype)
            return
        if isinstance(arg1, np.ndarray) and arg1.ndim == 2:
            from repro.core.coo import coo_matrix

            src = coo_matrix(arg1, dtype=dtype).todia()
            spmatrix.__init__(self, src.shape, src.dtype)
            self.data_store = src.data_store
            self.offsets_store = src.offsets_store
            self._offsets_host = src._offsets_host
            return
        raise TypeError(f"cannot construct dia_matrix from {type(arg1).__name__}")

    def _init_host(self, data_t, offsets, shape, dtype):
        final_dtype = np.dtype(dtype) if dtype is not None else data_t.dtype
        if final_dtype.kind not in "fc":
            final_dtype = np.float64
        spmatrix.__init__(self, shape, final_dtype)
        rt = self._runtime
        self.data_store = Store.create(
            data_t.shape, final_dtype, data=data_t.astype(final_dtype), runtime=rt, name="dia_data"
        )
        self.offsets_store = Store.create(
            offsets.shape, np.int64, data=offsets, runtime=rt, name="dia_offsets"
        )
        self._offsets_host = offsets.copy()

    @classmethod
    def _from_host_arrays(cls, data_t, offsets, shape) -> "dia_matrix":
        obj = cls.__new__(cls)
        obj._init_host(data_t, offsets, shape, data_t.dtype)
        return obj

    # ------------------------------------------------------------------
    @property
    def offsets(self) -> np.ndarray:
        """Host copy of the diagonal offsets."""
        return self._offsets_host.copy()

    @property
    def data(self) -> ndarray:
        """The (n, ndiags) diagonal store as a dense array (shared)."""
        return ndarray(self.data_store)

    @property
    def nnz(self) -> int:
        # Stored entries (SciPy counts explicit entries including zeros
        # inside the band; we match the in-band count).
        """In-band stored entries."""
        n, m = self.shape
        total = 0
        for off in self._offsets_host:
            off = int(off)
            total += max(0, min(n, m - off) - max(0, -off))
        return total

    def _proc_kind(self):
        return self._runtime.scope.kind

    # ------------------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        out_dtype = np.result_type(self.dtype, x.dtype)
        data_store = self.data_store
        if out_dtype != self.dtype:
            data_store = ndarray(self.data_store).astype(out_dtype).store
        rt = self._runtime
        n, m = self.shape
        y = rnp.empty(n, dtype=out_dtype)
        offs = self._offsets_host
        lo_off = int(offs.min()) if len(offs) else 0
        hi_off = int(offs.max()) if len(offs) else 0
        tiling = Tiling.create(y.store.region, rt.num_procs)
        rects = []
        for c in range(tiling.color_count):
            r = tiling.rect(c)
            if r.is_empty():
                rects.append(Rect((0,), (0,)))
                continue
            rects.append(
                Rect(
                    (max(0, r.lo[0] + lo_off),),
                    (min(m, r.hi[0] + hi_off + 1),),
                )
            )
        xpart = ExplicitPartition(x.store.region, rects)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", DIA, self._proc_kind())
        launch(
            spec,
            rt,
            {
                "y": y.store,
                "data": data_store,
                "offsets": self.offsets_store,
                "x": x.store,
            },
            explicit_partitions={"x": xpart},
        )
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        return self.transpose()._matvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        return self.tocsr()._matmat(X)

    # ------------------------------------------------------------------
    def transpose(self) -> "dia_matrix":
        """Host-rebuilt transpose (offsets negated)."""
        self._runtime.barrier()
        n, m = self.shape
        data_t = self.data_store.data
        offsets = self._offsets_host
        new_offsets = np.sort(-offsets)
        new_data = np.zeros((m, len(new_offsets)), dtype=self.dtype)
        for d_new, off_new in enumerate(new_offsets):
            off_old = int(-off_new)
            d_old = int(np.where(offsets == off_old)[0][0])
            # A.T[i, i+off_new] = A[i+off_new, i] = data_t[i+off_new, d_old]
            ilo = max(0, -int(off_new))
            ihi = min(m, n - int(off_new))
            if ihi > ilo:
                new_data[ilo:ihi, d_new] = data_t[
                    ilo + int(off_new) : ihi + int(off_new), d_old
                ]
        return dia_matrix._from_host_arrays(new_data, new_offsets.astype(np.int64), (m, n))

    def tocoo(self):
        """Host conversion dropping explicit zeros."""
        from repro.core.coo import coo_matrix

        self._runtime.barrier()
        n, m = self.shape
        rows, cols, vals = [], [], []
        data_t = self.data_store.data
        for d, off in enumerate(self._offsets_host):
            off = int(off)
            ilo = max(0, -off)
            ihi = min(n, m - off)
            if ihi <= ilo:
                continue
            i = np.arange(ilo, ihi, dtype=np.int64)
            v = data_t[ilo:ihi, d]
            keep = v != 0
            rows.append(i[keep])
            cols.append(i[keep] + off)
            vals.append(v[keep])
        if rows:
            row = np.concatenate(rows)
            col = np.concatenate(cols)
            val = np.concatenate(vals)
        else:
            row = col = np.empty(0, np.int64)
            val = np.empty(0, self.dtype)
        result = coo_matrix((val, (row, col)), shape=self.shape, dtype=self.dtype)
        self._note_convert("coo", result)
        return result

    def tocsr(self):
        """Convert through COO."""
        return self.tocoo().tocsr()

    def todia(self) -> "dia_matrix":
        """Identity."""
        return self

    def toarray(self) -> np.ndarray:
        """Synchronize and densify."""
        return self.tocoo().toarray()

    todense = toarray

    def diagonal(self, k: int = 0) -> ndarray:
        """The main diagonal (zeros when not stored)."""
        if k != 0:
            raise NotImplementedError("only the main diagonal is supported")
        self._runtime.barrier()
        hits = np.where(self._offsets_host == 0)[0]
        n = min(self.shape)
        if len(hits) == 0:
            return rnp.zeros(n, dtype=self.dtype)
        return rnp.array(self.data_store.data[:n, int(hits[0])].copy())

    def sum(self, axis: Optional[int] = None):
        """Sum of entries or per-axis sums (through CSR)."""
        return self.tocsr().sum(axis=axis)

    # ------------------------------------------------------------------
    def _with_data(self, data: ndarray) -> "dia_matrix":
        obj = dia_matrix.__new__(dia_matrix)
        spmatrix.__init__(obj, self.shape, data.dtype)
        obj.data_store = data.store
        obj.offsets_store = self.offsets_store
        obj._offsets_host = self._offsets_host
        return obj

    def _scale(self, alpha) -> "dia_matrix":
        return self._with_data(self.data * alpha)

    def _unary_values(self, fn) -> "dia_matrix":
        return self._with_data(fn(self.data))

    def copy(self) -> "dia_matrix":
        """A value-copying duplicate sharing offsets."""
        return self._with_data(self.data.copy())

    def astype(self, dtype) -> "dia_matrix":
        """A cast copy of the diagonal data."""
        return self._with_data(self.data.astype(dtype))

    def conj(self) -> "dia_matrix":
        """Complex conjugate of the diagonal data."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_data(self.data.conj())

    conjugate = conj


dia_array = dia_matrix
