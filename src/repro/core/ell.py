"""ELL matrices: fixed-width padded rows for low-variance structure.

Storage layout: ``data`` and ``cols`` are ``(n, K)`` regions where ``K``
is the global maximum row length (floored at one lane so empty matrices
still have a store), plus a per-row ``rowlen`` vector.  Padding lanes
hold zeros and are masked out by ``rowlen`` in every kernel, so the
generated SpMV rebuilds the exact CSR contribution order and stays
bitwise identical to CSR execution (tests/core/test_formats.py).
"""

from __future__ import annotations

import numpy as np

import repro.numeric as rnp
from repro.core import validation
from repro.core.base import spmatrix
from repro.distal.formats import ELL
from repro.distal.registry import get_registry, launch
from repro.numeric.array import ndarray


class ell_matrix(spmatrix):
    """ELL-format matrix: (n, K) padded data/cols plus row lengths."""

    format = "ell"

    def __init__(self, arg1, shape=None, dtype=None):
        from repro.core.csr import csr_matrix

        if isinstance(arg1, ell_matrix):
            src = arg1
        elif isinstance(arg1, spmatrix):
            src = arg1.toell()
        else:
            src = csr_matrix(arg1, shape=shape, dtype=dtype).toell()
        spmatrix.__init__(self, src.shape, dtype or src.dtype)
        self.data_store = (
            src.data_store
            if src.dtype == self._dtype
            else ndarray(src.data_store).astype(self._dtype).store
        )
        self.cols_store = src.cols_store
        self.rowlen_store = src.rowlen_store
        self._nnz = src._nnz

    @classmethod
    def _from_stores(cls, data, cols, rowlen, shape) -> "ell_matrix":
        obj = cls.__new__(cls)
        spmatrix.__init__(obj, shape, data.dtype)
        obj.data_store = data
        obj.cols_store = cols
        obj.rowlen_store = rowlen
        obj._nnz = None
        obj._validate()
        return obj

    def _validate(self) -> None:
        if not self._runtime.config.validate:
            return
        self._runtime.barrier()
        validation.check_ell_host(
            self.data_store.data,
            self.cols_store.data,
            self.rowlen_store.data,
            self.shape,
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (unpadded) entries."""
        if self._nnz is None:
            self._runtime.barrier()
            self._nnz = int(self.rowlen_store.data.sum())
        return self._nnz

    @property
    def width(self) -> int:
        """The padded lane count K."""
        return self.data_store.shape[1]

    @property
    def data(self) -> ndarray:
        """The (n, K) padded value store as a dense array (shared)."""
        return ndarray(self.data_store)

    def _proc_kind(self):
        return self._runtime.scope.kind

    # ------------------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        out_dtype = np.result_type(self.dtype, x.dtype)
        data_store = self.data_store
        if out_dtype != self.dtype:
            data_store = ndarray(self.data_store).astype(out_dtype).store
        y = rnp.empty(self.shape[0], dtype=out_dtype)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", ELL, self._proc_kind())
        launch(
            spec,
            self._runtime,
            {
                "y": y.store,
                "data": data_store,
                "cols": self.cols_store,
                "rowlen": self.rowlen_store,
                "x": x.store,
            },
        )
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        return self.tocsr()._rmatvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        return self.tocsr()._matmat(X)

    # ------------------------------------------------------------------
    def tocsr(self):
        """Distributed unpadding back to CSR."""
        from repro.core.convert import ell_to_csr

        result = ell_to_csr(self)
        self._note_convert("csr", result)
        return result

    def tocoo(self):
        """Convert through CSR."""
        return self.tocsr().tocoo()

    def toell(self) -> "ell_matrix":
        """Identity."""
        return self

    def transpose(self):
        """Transpose through CSR."""
        return self.tocsr().transpose()

    # ------------------------------------------------------------------
    def _with_data(self, data: ndarray) -> "ell_matrix":
        obj = ell_matrix.__new__(ell_matrix)
        spmatrix.__init__(obj, self.shape, data.dtype)
        obj.data_store = data.store
        obj.cols_store = self.cols_store
        obj.rowlen_store = self.rowlen_store
        obj._nnz = self._nnz
        return obj

    def _scale(self, alpha) -> "ell_matrix":
        return self._with_data(self.data * alpha)

    def _unary_values(self, fn) -> "ell_matrix":
        return self._with_data(fn(self.data))

    def copy(self) -> "ell_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_data(self.data.copy())

    def astype(self, dtype) -> "ell_matrix":
        """A cast copy of the padded values (structure shared)."""
        return self._with_data(self.data.astype(dtype))

    def conj(self) -> "ell_matrix":
        """Complex conjugate of the values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_data(self.data.conj())

    conjugate = conj


ell_array = ell_matrix
