"""``repro.core``: the Legate Sparse reproduction (the paper's system).

A distributed drop-in for ``scipy.sparse``: COO, CSR, CSC and DIA
matrices stored as collections of regions (Fig. 3), partitioned through
the constraint system, computed on by DISTAL-generated kernels, and
composing with :mod:`repro.numeric` arrays.  ``repro.sparse`` re-exports
this package under the familiar name.

Like the paper's prototype, matrix *assembly* happens on the host (SciPy's
sequential LIL/DOK formats are out of scope), while every *operation* on
an assembled matrix is a distributed task launch.
"""

from repro.core.base import spmatrix, issparse
from repro.core.bsr import bsr_array, bsr_matrix
from repro.core.coo import coo_array, coo_matrix
from repro.core.csc import csc_array, csc_matrix
from repro.core.csr import csr_array, csr_matrix
from repro.core.dia import dia_array, dia_matrix
from repro.core.ell import ell_array, ell_matrix
from repro.core.hyb import hyb_array, hyb_matrix
from repro.core.sell import sell_array, sell_matrix
from repro.core.construct import (
    diags,
    eye,
    hstack,
    identity,
    kron,
    rand,
    random,
    vstack,
)
from repro.core.extra import (
    block_diag,
    count_nonzero,
    find,
    setdiag,
    spdiags,
    tril,
    triu,
)
from repro.core.io import load_npz, save_npz
from repro.core import linalg

__all__ = [
    "block_diag",
    "bsr_array",
    "bsr_matrix",
    "coo_array",
    "coo_matrix",
    "csc_array",
    "csc_matrix",
    "csr_array",
    "csr_matrix",
    "dia_array",
    "dia_matrix",
    "diags",
    "count_nonzero",
    "ell_array",
    "ell_matrix",
    "eye",
    "find",
    "hstack",
    "hyb_array",
    "hyb_matrix",
    "identity",
    "issparse",
    "kron",
    "linalg",
    "load_npz",
    "rand",
    "random",
    "save_npz",
    "sell_array",
    "sell_matrix",
    "setdiag",
    "spdiags",
    "spmatrix",
    "tril",
    "triu",
    "vstack",
]
