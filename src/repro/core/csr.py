"""CSR matrices over regions, with Legate's ``{lo, hi}`` pos encoding."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import Store
from repro.core import validation  # noqa: F401  (module import, no cycle)
from repro.core.base import issparse, spmatrix
from repro.distal.formats import CSR
from repro.distal.registry import get_registry, launch
from repro.legion.runtime import get_runtime
from repro.numeric.array import Scalar, ndarray


def _indptr_to_pos(indptr: np.ndarray) -> np.ndarray:
    indptr = np.asarray(indptr, dtype=np.int64)
    return np.ascontiguousarray(np.stack([indptr[:-1], indptr[1:]], axis=1))


def _canonicalize_coo(
    row: np.ndarray, col: np.ndarray, data: np.ndarray, shape: Tuple[int, int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Host-side assembly: sort by (row, col) and sum duplicates."""
    order = np.lexsort((col, row))
    row, col, data = row[order], col[order], data[order]
    if len(row):
        fresh = np.empty(len(row), dtype=bool)
        fresh[0] = True
        fresh[1:] = (row[1:] != row[:-1]) | (col[1:] != col[:-1])
        if not fresh.all():
            starts = np.flatnonzero(fresh)
            data = np.add.reduceat(data, starts)
            row, col = row[starts], col[starts]
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.add.at(indptr, row + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, col.astype(np.int64), data


class csr_matrix(spmatrix):
    """Compressed sparse rows: ``pos`` (n,2), ``crd`` (nnz), ``vals`` (nnz)."""

    format = "csr"

    def __init__(self, arg1, shape=None, dtype=None):
        rt = get_runtime()
        if isinstance(arg1, spmatrix):
            src = arg1.tocsr()
            mat_shape, mat_dtype = src.shape, dtype or src.dtype
            super().__init__(mat_shape, mat_dtype)
            self.pos, self.crd = src.pos, src.crd
            self.vals = (
                src.vals
                if src.dtype == self._dtype
                else ndarray(src.vals).astype(self._dtype).store
            )
            return
        if _is_scipy_sparse(arg1):
            csr = arg1.tocsr()
            csr.sum_duplicates()
            csr.sort_indices()
            self._init_from_host(
                csr.indptr, csr.indices, csr.data, csr.shape, dtype
            )
            return
        if isinstance(arg1, np.ndarray) and arg1.ndim == 2:
            dense = arg1 if dtype is None else arg1.astype(dtype)
            r, c = np.nonzero(dense)
            indptr, crd, vals = _canonicalize_coo(
                r.astype(np.int64), c.astype(np.int64), dense[r, c], dense.shape
            )
            self._init_from_host(indptr, crd, vals, dense.shape, dtype)
            return
        if isinstance(arg1, ndarray) and arg1.ndim == 2:
            self.__init__(arg1.to_numpy(), shape=shape, dtype=dtype)
            return
        if isinstance(arg1, tuple) and len(arg1) == 2 and np.ndim(arg1[0]) == 0:
            # Empty matrix of a given shape.
            n, m = int(arg1[0]), int(arg1[1])
            indptr = np.zeros(n + 1, dtype=np.int64)
            self._init_from_host(
                indptr, np.empty(0, np.int64), np.empty(0, dtype or np.float64), (n, m), dtype
            )
            return
        if isinstance(arg1, tuple) and len(arg1) == 2:
            # (data, (row, col)) COO-style constructor.
            data, (row, col) = arg1
            data, row, col = validation.check_coo_host(data, row, col, shape)
            if shape is None:
                shape = (int(row.max()) + 1 if len(row) else 0,
                         int(col.max()) + 1 if len(col) else 0)
            indptr, crd, vals = _canonicalize_coo(row, col, data, shape)
            self._init_from_host(indptr, crd, vals, shape, dtype)
            return
        if isinstance(arg1, tuple) and len(arg1) == 3:
            data, indices, indptr = arg1
            data, indices, indptr = validation.check_csr_host(
                data, indices, indptr, shape
            )
            if shape is None:
                n = len(indptr) - 1
                m = int(np.max(indices)) + 1 if len(indices) else 0
                shape = (n, m)
            self._init_from_host(indptr, indices, data, shape, dtype)
            return
        raise TypeError(f"cannot construct csr_matrix from {type(arg1).__name__}")

    def _init_from_host(self, indptr, indices, data, shape, dtype):
        data = np.asarray(data)
        if len(data) != len(indices):
            raise ValueError(
                f"data length ({len(data)}) does not match indices length "
                f"({len(indices)})"
            )
        if len(indptr) != shape[0] + 1:
            raise ValueError(
                f"indptr length ({len(indptr)}) must be shape[0]+1 "
                f"({shape[0] + 1}) for shape {tuple(shape)}"
            )
        final_dtype = np.dtype(dtype) if dtype is not None else data.dtype
        if final_dtype.kind not in "fc":
            final_dtype = np.float64
        super().__init__(shape, final_dtype)
        rt = self._runtime
        n = shape[0]
        self.pos = Store.create(
            (n, 2), np.int64, data=_indptr_to_pos(indptr), runtime=rt, name="pos"
        )
        nnz = len(indices)
        self.crd = Store.create(
            (nnz,), np.int64, data=np.asarray(indices, np.int64), runtime=rt, name="crd"
        )
        self.vals = Store.create(
            (nnz,), final_dtype, data=data.astype(final_dtype), runtime=rt, name="vals"
        )

    @classmethod
    def _from_stores(
        cls, pos: Store, crd: Store, vals: Store, shape: Tuple[int, int]
    ) -> "csr_matrix":
        obj = cls.__new__(cls)
        spmatrix.__init__(obj, shape, vals.dtype)
        obj.pos, obj.crd, obj.vals = pos, crd, vals
        return obj

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return self.crd.shape[0]

    @property
    def data(self) -> ndarray:
        """The values as a dense :mod:`repro.numeric` array (shared)."""
        return ndarray(self.vals)

    @property
    def indices(self) -> np.ndarray:
        """Host copy of the column-index array (crd)."""
        self._runtime.barrier()
        return self.crd.data.copy()

    @property
    def indptr(self) -> np.ndarray:
        """Host indptr derived from the {lo, hi} pos pairs."""
        self._runtime.barrier()
        pos = self.pos.data
        if pos.shape[0] == 0:
            return np.zeros(1, dtype=np.int64)
        return np.concatenate([pos[:, 0], pos[-1:, 1]])

    def _stores(self) -> dict:
        return {"pos": self.pos, "crd": self.crd, "vals": self.vals}

    @property
    def has_canonical_format(self) -> bool:
        """Always True (assembly canonicalizes)."""
        return True

    @property
    def has_sorted_indices(self) -> bool:
        """Always True (assembly sorts)."""
        return True

    # ------------------------------------------------------------------
    # Products (DISTAL-generated kernels)
    # ------------------------------------------------------------------
    def _proc_kind(self):
        return self._runtime.scope.kind

    def _promoted(self, other_dtype) -> "csr_matrix":
        out_dtype = np.result_type(self.dtype, other_dtype)
        if out_dtype == self.dtype:
            return self
        return csr_matrix(self, dtype=out_dtype)

    def _matvec(self, x: ndarray) -> ndarray:
        if self._runtime.config.autoformat:
            alt = self._autoformat_alt()
            if alt is not self:
                return alt._matvec(x)
        A = self._promoted(x.dtype)
        out_dtype = A.dtype
        y = rnp.empty(self.shape[0], dtype=out_dtype)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"y": y.store, "x": x.store})
        launch(spec, self._runtime, stores)
        return y

    def _autoformat_alt(self):
        """Auto-format hook: replay the format selector at first SpMV.

        Runs the same :func:`~repro.analysis.formatsel.select_format`
        the static advisor uses, so runtime decisions match advisor
        predictions exactly; converts only to bitwise-safe formats and
        caches the result (self is the stay-CSR sentinel).
        """
        cached = getattr(self, "_autoformat_cache", None)
        if cached is not None:
            return cached
        from repro.analysis.formatsel import profile_matrix, select_format

        rt = self._runtime
        rt.barrier()
        pos = self.pos.data
        rl = (pos[:, 1] - pos[:, 0]).astype(np.int64)
        profile = profile_matrix(
            rl,
            self.shape[1],
            self.dtype.itemsize,
            num_procs=len(rt.scope.processors),
        )
        decision = select_format(profile, rt.scope, rt.config)
        best = decision.best
        if best.fmt == "csr" or not best.bitwise_safe:
            self._autoformat_cache = self
            return self
        alt = self.asformat(best.fmt)
        self._autoformat_cache = alt
        rt.autoformat_log.append(
            {
                "rows": profile.rows,
                "cols": profile.cols,
                "nnz": profile.nnz,
                "dst_fmt": best.fmt,
                "predicted_op_seconds": best.op_seconds,
                "csr_op_seconds": decision.csr_seconds,
                "convert_seconds": best.convert_seconds,
                "break_even_ops": best.break_even_ops,
            }
        )
        self._advisor_note(
            "autoformat",
            src_fmt="csr",
            dst_fmt=best.fmt,
            rows=profile.rows,
            nnz=profile.nnz,
        )
        return alt

    def _rmatvec(self, x: ndarray) -> ndarray:
        A = self._promoted(x.dtype)
        y = rnp.zeros(self.shape[1], dtype=A.dtype)
        spec = get_registry().get("y(j)=A(i,j)*x(i)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"y": y.store, "x": x.store})
        launch(spec, self._runtime, stores)
        return y

    def _matmat(self, X: ndarray) -> ndarray:
        A = self._promoted(X.dtype)
        Y = rnp.empty((self.shape[0], X.shape[1]), dtype=A.dtype)
        spec = get_registry().get("Y(i,k)=A(i,j)*X(j,k)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"Y": Y.store, "X": X.store})
        launch(spec, self._runtime, stores)
        return Y

    def _matmat_transpose(self, X: ndarray) -> ndarray:
        """A.T @ X without materializing the transpose."""
        A = self._promoted(X.dtype)
        Y = rnp.zeros((self.shape[1], X.shape[1]), dtype=A.dtype)
        spec = get_registry().get("Y(j,k)=A(i,j)*X(i,k)", CSR, self._proc_kind())
        stores = A._stores()
        stores.update({"Y": Y.store, "X": X.store})
        launch(spec, self._runtime, stores)
        return Y

    def sddmm(self, C: ndarray, D: ndarray) -> "csr_matrix":
        """R = A ⊙ (C @ D.T) without materializing the dense product.

        ``C`` is (rows, k) and ``D`` is (cols, k).  Generated with DISTAL
        in the paper; the key kernel of the Fig. 12 workload.
        """
        out_dtype = np.result_type(self.dtype, C.dtype, D.dtype)
        A = self._promoted(out_dtype)
        out_vals = rnp.empty(self.nnz, dtype=out_dtype)
        spec = get_registry().get(
            "R(i,j)=B(i,j)*C(i,k)*D(j,k)", CSR, self._proc_kind()
        )
        stores = A._stores()
        stores.update({"out_vals": out_vals.store, "C": C.store, "D": D.store})
        launch(spec, self._runtime, stores)
        return csr_matrix._from_stores(self.pos, self.crd, out_vals.store, self.shape)

    def _matmat_sparse(self, other: spmatrix) -> "csr_matrix":
        from repro.core.convert import csr_spgemm

        return csr_spgemm(self, other.tocsr())

    # ------------------------------------------------------------------
    # Reductions / structure
    # ------------------------------------------------------------------
    def diagonal(self, k: int = 0) -> ndarray:
        """The main diagonal (DISTAL-generated kernel)."""
        if k != 0:
            raise NotImplementedError("only the main diagonal is supported")
        if self.shape[0] != self.shape[1]:
            raise NotImplementedError("diagonal requires a square matrix")
        y = rnp.empty(self.shape[0], dtype=self.dtype)
        spec = get_registry().get("y(i)=A(i,i)", CSR, self._proc_kind())
        stores = self._stores()
        stores["y"] = y.store
        launch(spec, self._runtime, stores)
        return y

    def sum(self, axis: Optional[int] = None):
        """Sum of entries, or per-axis sums (generated kernels)."""
        if axis is None:
            return rnp.sum(self.data)
        if axis in (1, -1):
            y = rnp.empty(self.shape[0], dtype=self.dtype)
            spec = get_registry().get("y(i)=A(i,j)", CSR, self._proc_kind())
            launch(
                spec,
                self._runtime,
                {"y": y.store, "pos": self.pos, "vals": self.vals},
            )
            return y
        if axis == 0:
            y = rnp.zeros(self.shape[1], dtype=self.dtype)
            spec = get_registry().get("y(j)=A(i,j)", CSR, self._proc_kind())
            stores = self._stores()
            stores["y"] = y.store
            launch(spec, self._runtime, stores)
            return y
        raise ValueError(f"invalid axis {axis}")

    # ------------------------------------------------------------------
    # Value-space operations (ported onto the dense library, §5.2)
    # ------------------------------------------------------------------
    def _with_values(self, vals: ndarray) -> "csr_matrix":
        return csr_matrix._from_stores(self.pos, self.crd, vals.store, self.shape)

    def _scale(self, alpha) -> "csr_matrix":
        return self._with_values(self.data * alpha)

    def _unary_values(self, fn) -> "csr_matrix":
        return self._with_values(fn(self.data))

    def copy(self) -> "csr_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_values(self.data.copy())

    def astype(self, dtype) -> "csr_matrix":
        """A cast copy of the values (structure shared)."""
        return self._with_values(self.data.astype(dtype))

    def conj(self) -> "csr_matrix":
        """Complex conjugate of the values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_values(self.data.conj())

    conjugate = conj

    def power(self, n) -> "csr_matrix":
        """Element-wise power of the stored values."""
        return self._with_values(rnp.power(self.data, n))

    def __abs__(self) -> "csr_matrix":
        return self._with_values(abs(self.data))

    def sqrt(self) -> "csr_matrix":
        """Element-wise square root of the stored values."""
        return self._with_values(rnp.sqrt(self.data))

    # ------------------------------------------------------------------
    # Element-wise sparse algebra (hand-written two-pass kernels, §5.3)
    # ------------------------------------------------------------------
    def _add_sparse(self, other: "csr_matrix", beta: float) -> "csr_matrix":
        from repro.core.convert import binary_union

        return binary_union(self, other, op="add", beta=beta)

    def _binary_union(self, other: "csr_matrix", op: str) -> "csr_matrix":
        from repro.core.convert import binary_union

        return binary_union(self, other, op=op)

    def _multiply_sparse(self, other: "csr_matrix") -> "csr_matrix":
        from repro.core.convert import multiply_intersection

        return multiply_intersection(self, other)

    def _multiply_dense(self, other) -> "csr_matrix":
        from repro.core.convert import multiply_dense

        return multiply_dense(self, other)

    def _add_dense(self, other) -> "rnp.ndarray":
        """A + dense -> dense (SciPy semantics), one fused task."""
        from repro.constraints import AutoTask

        if isinstance(other, np.ndarray):
            other = rnp.array(other)
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        self._note_densify("csr.add_dense")
        out_dtype = np.result_type(self.dtype, other.dtype)
        out = rnp.empty(self.shape, dtype=out_dtype)
        rt = self._runtime

        def kernel(ctx):
            pr = ctx.rects["pos"]
            rlo, rhi = pr.lo[0], pr.hi[0]
            if rhi <= rlo:
                return
            ctx.arrays["out"][rlo:rhi] = ctx.arrays["D"][rlo:rhi]
            pos = ctx.arrays["pos"]
            lo, hi = pos[rlo:rhi, 0], pos[rlo:rhi, 1]
            jlo, jhi = int(lo[0]), int(hi[-1])
            if jhi <= jlo:
                return
            rows = np.repeat(np.arange(rlo, rhi), hi - lo)
            cols = ctx.arrays["crd"][jlo:jhi]
            ctx.arrays["out"][rows, cols] += ctx.arrays["vals"][jlo:jhi]

        def cost(ctx):
            vol = ctx.rects["out"].volume()
            nnz = ctx.rects["crd"].volume()
            isz = out_dtype.itemsize
            return float(nnz), 2.0 * vol * isz + nnz * (8.0 + isz)

        task = AutoTask(rt, "add_dense", kernel, cost)
        task.add_output("out", out.store)
        task.add_input("pos", self.pos)
        task.add_input("crd", self.crd)
        task.add_input("vals", self.vals)
        task.add_input("D", other.store)
        task.add_alignment_constraint(out.store, self.pos)
        task.add_alignment_constraint(out.store, other.store)
        task.add_image_constraint(self.pos, [self.crd, self.vals], kind="range")
        task.execute()
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def tocsr(self) -> "csr_matrix":
        """Identity."""
        return self

    def tocoo(self):
        """Distributed row-expansion to COO (shares crd/vals)."""
        from repro.core.convert import csr_to_coo

        result = csr_to_coo(self)
        self._note_convert("coo", result)
        return result

    def tocsc(self):
        """Real conversion: a gathered global sort."""
        from repro.core.convert import csr_to_csc

        result = csr_to_csc(self)
        self._note_convert("csc", result)
        return result

    def todia(self):
        """Convert via COO."""
        return self.tocoo().todia()

    def toell(self):
        """Distributed padding to ELL (lanes masked by rowlen)."""
        from repro.core.convert import csr_to_ell

        result = csr_to_ell(self)
        self._note_convert("ell", result)
        return result

    def tosell(self, c: Optional[int] = None, sigma: Optional[int] = None):
        """Distributed repack to SELL-C-sigma (tiles permute onto themselves)."""
        from repro.core.convert import csr_to_sell

        result = csr_to_sell(self, c=c, sigma=sigma)
        self._note_convert("sell", result)
        return result

    def tohyb(self, quantile: Optional[float] = None):
        """Distributed split to HYB (ELL part at a row-length quantile)."""
        from repro.core.convert import csr_to_hyb

        result = csr_to_hyb(self, quantile=quantile)
        self._note_convert("hyb", result)
        return result

    def toarray(self) -> np.ndarray:
        """Synchronize and densify (vectorized expansion)."""
        from repro.core.convert import _concat_ranges

        self._note_densify("csr.toarray")
        self._runtime.barrier()
        out = np.zeros(self.shape, dtype=self.dtype)
        pos = self.pos.data
        if pos.shape[0] == 0:
            return out
        counts = pos[:, 1] - pos[:, 0]
        rows = np.repeat(np.arange(self.shape[0]), counts)
        idx = _concat_ranges(pos[:, 0], counts)
        out[rows, self.crd.data[idx]] = self.vals.data[idx]
        return out

    todense = toarray

    def transpose(self):
        """Zero-cost: reinterpret the arrays column-compressed (CSC)."""
        from repro.core.csc import csc_matrix

        return csc_matrix._from_stores(
            self.pos, self.crd, self.vals, (self.shape[1], self.shape[0])
        )

    # ------------------------------------------------------------------
    # Row slicing (pos rows share the crd/vals regions)
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, slice):
            return self._row_slice(key)
        if isinstance(key, tuple) and len(key) == 2:
            rows, cols = key
            if isinstance(rows, (int, np.integer)) and isinstance(cols, (int, np.integer)):
                return self._get_element(int(rows), int(cols))
            if isinstance(rows, slice) and cols == slice(None):
                return self._row_slice(rows)
            if rows == slice(None) and isinstance(cols, slice):
                # Column slice: free transpose, row-slice, transpose back
                # (the reshuffle happens in the CSC conversion — the
                # "expensive slicing" the paper's §5.4 talks about).
                return self.tocsc()._col_slice(cols)
        raise NotImplementedError(f"unsupported index {key!r}")

    def _row_slice(self, key: slice) -> "csr_matrix":
        start, stop, step = key.indices(self.shape[0])
        if step != 1:
            raise NotImplementedError("strided row slicing is not supported")
        pos_nd = ndarray(self.pos)
        sub_pos = pos_nd[start:stop]
        return csr_matrix._from_stores(
            sub_pos.store, self.crd, self.vals, (stop - start, self.shape[1])
        )

    def _get_element(self, i: int, j: int):
        if not (0 <= i < self.shape[0] and 0 <= j < self.shape[1]):
            raise IndexError(f"index ({i}, {j}) out of range for {self.shape}")
        self._runtime.barrier()
        lo, hi = self.pos.data[i]
        row_cols = self.crd.data[lo:hi]
        hits = np.flatnonzero(row_cols == j)
        if len(hits) == 0:
            return self.dtype.type(0)
        return self.vals.data[lo + hits[0]].item()

    def getrow(self, i: int) -> "csr_matrix":
        """A single row as a 1-row CSR (shares crd/vals)."""
        return self[i : i + 1]


def _is_scipy_sparse(x) -> bool:
    try:
        import scipy.sparse as sps

        return sps.issparse(x)
    except ImportError:  # pragma: no cover
        return False


# Modern scipy exposes *_array; behaviourally identical here.
csr_array = csr_matrix
