"""Constructor-time validation of host-side sparse inputs.

Every :class:`~repro.core.base.spmatrix` subclass accepts raw host
arrays (``(data, indices, indptr)``, ``(data, (row, col))``,
``(data, offsets)``).  Malformed inputs used to surface much later as
cryptic failures inside kernels or silent corruption (a negative row
index scatters through ``np.add.at`` without complaint).  These helpers
run *before* any canonicalization or int64 casting and raise
``ValueError`` naming the offending field.

The checks are cheap — O(1) shape agreement plus one min/max scan of
each index array — so internal assembly paths call them too.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def as_index_array(arr, field: str) -> np.ndarray:
    """Cast to a 1-D int64 index array, rejecting non-integral input.

    Must see the *original* array: casting first would silently
    truncate float indices like ``[0.5, 1.0]``.
    """
    a = np.asarray(arr)
    if a.ndim != 1:
        raise ValueError(f"{field} must be 1-D, got {a.ndim}-D")
    if a.size == 0:
        # np.asarray([]) defaults to float64; an empty array is fine.
        return a.astype(np.int64)
    if a.dtype.kind in "fc":
        if not np.array_equal(a, np.trunc(a.real)):
            raise ValueError(
                f"{field} must hold integers, got non-integral values "
                f"(dtype {a.dtype})"
            )
        return a.real.astype(np.int64)
    if a.dtype.kind not in "iu":
        raise ValueError(
            f"{field} must be an integer array, got dtype {a.dtype}"
        )
    return a.astype(np.int64)


def check_index_bounds(idx: np.ndarray, bound: int, field: str) -> None:
    """Require every entry of ``idx`` to lie in ``[0, bound)``."""
    if idx.size == 0:
        return
    lo, hi = int(idx.min()), int(idx.max())
    if lo < 0:
        raise ValueError(f"{field} contains a negative index ({lo})")
    if hi >= bound:
        raise ValueError(
            f"{field} contains index {hi}, out of range for extent {bound}"
        )


def check_csr_host(
    data, indices, indptr, shape: Optional[Tuple[int, int]] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a ``(data, indices, indptr)`` triple; returns cast arrays."""
    data = np.asarray(data)
    indices = as_index_array(indices, "indices")
    indptr = as_index_array(indptr, "indptr")
    if len(indptr) < 1:
        raise ValueError("indptr must have at least one entry")
    if indptr[0] != 0:
        raise ValueError(f"indptr[0] must be 0, got {int(indptr[0])}")
    if len(indptr) > 1 and (np.diff(indptr) < 0).any():
        raise ValueError("indptr must be non-decreasing")
    if int(indptr[-1]) != len(indices):
        raise ValueError(
            f"nnz mismatch: indptr[-1] is {int(indptr[-1])} but indices "
            f"has {len(indices)} entries"
        )
    if data.ndim != 1 or len(data) != len(indices):
        raise ValueError(
            f"data length ({data.shape}) does not match indices length "
            f"({len(indices)})"
        )
    if shape is not None:
        n, m = int(shape[0]), int(shape[1])
        if len(indptr) != n + 1:
            raise ValueError(
                f"indptr length ({len(indptr)}) must be shape[0]+1 "
                f"({n + 1}) for shape ({n}, {m})"
            )
        check_index_bounds(indices, m, "indices")
    else:
        check_index_bounds(indices, np.iinfo(np.int64).max, "indices")
    return data, indices, indptr


def check_coo_host(
    data, row, col, shape: Optional[Tuple[int, int]] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a ``(data, (row, col))`` triple; returns cast arrays."""
    data = np.asarray(data)
    row = as_index_array(row, "row")
    col = as_index_array(col, "col")
    if len(row) != len(col):
        raise ValueError(
            f"row length ({len(row)}) does not match col length ({len(col)})"
        )
    if data.ndim != 1 or len(data) != len(row):
        raise ValueError(
            f"data length ({data.shape}) does not match row/col length "
            f"({len(row)})"
        )
    if shape is not None:
        check_index_bounds(row, int(shape[0]), "row")
        check_index_bounds(col, int(shape[1]), "col")
    else:
        bound = np.iinfo(np.int64).max
        check_index_bounds(row, bound, "row")
        check_index_bounds(col, bound, "col")
    return data, row, col


def check_dia_host(
    data, offsets, shape: Optional[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a ``(data, offsets)`` pair; returns cast arrays."""
    if shape is None:
        raise ValueError(
            "dia_matrix((data, offsets)) requires an explicit shape"
        )
    data = np.atleast_2d(np.asarray(data))
    offsets = as_index_array(np.atleast_1d(np.asarray(offsets)), "offsets")
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (ndiags, cols), got {data.ndim}-D")
    if data.shape[0] != len(offsets):
        raise ValueError(
            f"data has {data.shape[0]} diagonal row(s) but offsets has "
            f"{len(offsets)} entries"
        )
    if len(np.unique(offsets)) != len(offsets):
        raise ValueError("offsets contains duplicate diagonal offsets")
    return data, offsets


def check_ell_host(
    data, cols, rowlen, shape: Optional[Tuple[int, int]] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate an ELL ``(data, cols, rowlen)`` triple; returns cast arrays."""
    data = np.asarray(data)
    cols = np.asarray(cols)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (rows, width), got {data.ndim}-D")
    if cols.shape != data.shape:
        raise ValueError(
            f"cols shape {cols.shape} does not match data shape {data.shape}"
        )
    if data.shape[1] < 1:
        raise ValueError("ELL width must be at least one lane")
    rowlen = as_index_array(rowlen, "rowlen")
    if len(rowlen) != data.shape[0]:
        raise ValueError(
            f"rowlen length ({len(rowlen)}) does not match data rows "
            f"({data.shape[0]})"
        )
    if rowlen.size and int(rowlen.min()) < 0:
        raise ValueError("rowlen contains a negative length")
    if rowlen.size and int(rowlen.max()) > data.shape[1]:
        raise ValueError(
            f"rowlen contains length {int(rowlen.max())}, wider than the "
            f"stored width {data.shape[1]}"
        )
    flat_cols = as_index_array(cols.reshape(-1), "cols")
    if shape is not None:
        n, m = int(shape[0]), int(shape[1])
        if data.shape[0] != n:
            raise ValueError(
                f"data has {data.shape[0]} rows for shape ({n}, {m})"
            )
        check_index_bounds(flat_cols, m, "cols")
    else:
        check_index_bounds(flat_cols, np.iinfo(np.int64).max, "cols")
    return data, flat_cols.reshape(cols.shape), rowlen


def check_sell_host(
    data, cols, perm, rowlen, start, stride,
    shape: Optional[Tuple[int, int]] = None,
) -> None:
    """Validate packed SELL-C-sigma slot metadata against its storage."""
    data = np.asarray(data)
    cols = np.asarray(cols)
    if data.ndim != 1 or cols.shape != data.shape:
        raise ValueError(
            f"packed data/cols must be matching 1-D arrays, got "
            f"{data.shape} and {cols.shape}"
        )
    perm = as_index_array(perm, "perm")
    rowlen = as_index_array(rowlen, "rowlen")
    start = as_index_array(start, "start")
    stride = as_index_array(stride, "stride")
    n = len(perm)
    for name, arr in (("rowlen", rowlen), ("start", start), ("stride", stride)):
        if len(arr) != n:
            raise ValueError(
                f"{name} length ({len(arr)}) does not match perm length ({n})"
            )
    if n and not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm is not a permutation of the row indices")
    if rowlen.size and int(rowlen.min()) < 0:
        raise ValueError("rowlen contains a negative length")
    if stride.size and int(stride.min()) < 1:
        raise ValueError("stride must be at least 1 for every slot")
    occupied = rowlen > 0
    if occupied.any():
        last = start[occupied] + (rowlen[occupied] - 1) * stride[occupied]
        if int(start[occupied].min()) < 0 or int(last.max()) >= data.shape[0]:
            raise ValueError(
                "slot lanes (start + k*stride) fall outside the packed "
                f"storage of {data.shape[0]} entries"
            )
    if shape is not None:
        n_rows, m = int(shape[0]), int(shape[1])
        if n != n_rows:
            raise ValueError(
                f"perm has {n} slots for shape ({n_rows}, {m})"
            )
        check_index_bounds(as_index_array(cols, "cols"), m, "cols")


def check_hyb_host(
    data, cols, rowlen, spill_pos, spill_crd, spill_vals,
    shape: Optional[Tuple[int, int]] = None,
) -> None:
    """Validate a HYB split: padded ELL part plus compressed spill."""
    data = np.asarray(data)
    cols = np.asarray(cols)
    rowlen = as_index_array(rowlen, "rowlen")
    if data.ndim != 2 or cols.shape != data.shape:
        raise ValueError(
            f"HYB ELL part must be matching 2-D arrays, got "
            f"{data.shape} and {cols.shape}"
        )
    spill_pos = np.asarray(spill_pos)
    if spill_pos.ndim != 2 or spill_pos.shape[1] != 2:
        raise ValueError(
            f"spill_pos must be (rows, 2) ranges, got {spill_pos.shape}"
        )
    if spill_pos.shape[0] != data.shape[0]:
        raise ValueError(
            f"spill_pos has {spill_pos.shape[0]} rows but the ELL part "
            f"has {data.shape[0]}"
        )
    spill_crd = as_index_array(spill_crd, "spill_crd")
    spill_vals = np.asarray(spill_vals)
    if spill_vals.ndim != 1 or len(spill_vals) != len(spill_crd):
        raise ValueError(
            f"spill_vals length ({spill_vals.shape}) does not match "
            f"spill_crd length ({len(spill_crd)})"
        )
    counts = spill_pos[:, 1] - spill_pos[:, 0]
    if counts.size and int(counts.min()) < 0:
        raise ValueError("spill_pos contains a negative range")
    if int(counts.sum()) != len(spill_crd):
        raise ValueError(
            f"spill nnz mismatch: ranges cover {int(counts.sum())} entries "
            f"but spill_crd has {len(spill_crd)}"
        )
    K = data.shape[1]
    expect = np.maximum(rowlen - K, 0)
    if not np.array_equal(counts, expect):
        raise ValueError(
            "spill_pos ranges disagree with rowlen minus the ELL width"
        )
    if rowlen.size and int(rowlen.min()) < 0:
        raise ValueError("rowlen contains a negative length")
    if shape is not None:
        m = int(shape[1])
        check_index_bounds(as_index_array(cols.reshape(-1), "cols"), m, "cols")
        check_index_bounds(spill_crd, m, "spill_crd")


def check_bsr_shape(
    shape: Optional[Tuple[int, int]], blocksize: Tuple[int, int]
) -> None:
    """Require the matrix shape to divide evenly into blocks."""
    if shape is None:
        return
    n, m = int(shape[0]), int(shape[1])
    R, C = int(blocksize[0]), int(blocksize[1])
    if R <= 0 or C <= 0:
        raise ValueError(f"blocksize must be positive, got ({R}, {C})")
    if n % R or m % C:
        raise ValueError(
            f"shape ({n}, {m}) is not divisible by blocksize ({R}, {C})"
        )
