"""API-coverage inventory, mirroring the paper's §5 taxonomy.

The paper's prototype implements 176 of ~492 SciPy Sparse functions:
14 generated with DISTAL, 156 ported onto existing kernels and
cuNumeric, 6 hand-written.  This module records which part of the SciPy
Sparse surface *this* reproduction implements and by which strategy, so
the claim is checkable (``tests/core/test_api_coverage.py``) and the
README can report honest numbers.
"""

from __future__ import annotations

from typing import Dict, List

# Operations whose kernels come out of the DISTAL registry (one entry
# per statement x format pair that the sparse library dispatches to).
GENERATED: List[str] = [
    "csr_matvec",            # y(i) = A(i,j) x(j), CSR
    "csr_rmatvec",           # y(j) = A(i,j) x(i), CSR (and CSC matvec)
    "csr_matmat",            # Y(i,k) = A(i,j) X(j,k)
    "csr_matmat_transpose",  # Y(j,k) = A(i,j) X(i,k) (and CSC matmat)
    "csr_sddmm",             # R = B ⊙ (C @ D^T)
    "csr_row_sums",          # sum(axis=1)
    "csr_col_sums",          # sum(axis=0)
    "csr_diagonal",
    "dia_matvec",
    "coo_matvec",
    "bsr_matvec",            # block-sparse rows: the paper's planned
                             # next DISTAL format (§5.4), implemented here
    # Row-length-sensitive formats behind the auto-format selector
    # (repro.analysis.formatsel): bitwise-identical SpMV on padded /
    # sliced / hybrid local layouts.
    "ell_matvec",
    "sell_matvec",           # SELL-C-sigma packed slices
    "hyb_matvec",            # ELL part + spill ranges
]

# Ported: SciPy-API functions implemented on top of the generated
# kernels plus the dense library (the §5.2 bootstrap story).
PORTED: List[str] = [
    # format classes and constructors
    "csr_matrix", "csc_matrix", "coo_matrix", "dia_matrix", "bsr_matrix",
    "ell_matrix", "sell_matrix", "hyb_matrix",
    "csr_array", "csc_array", "coo_array", "dia_array", "bsr_array",
    "ell_array", "sell_array", "hyb_array",
    # construction routines
    "eye", "identity", "diags", "random", "rand", "kron",
    "vstack", "hstack",
    # conversions & structure
    "tocsr", "tocsc", "tocoo", "todia", "toell", "tosell", "tohyb",
    "asformat", "toarray", "todense",
    "transpose", "getnnz", "copy", "astype", "conj", "conjugate",
    "diagonal", "sum", "mean", "issparse", "getrow",
    # value-space algebra (via repro.numeric on the vals region)
    "multiply_scalar", "divide_scalar", "negate", "power", "abs", "sqrt",
    # element-wise structural algebra
    "add", "subtract", "multiply", "maximum", "minimum", "multiply_dense",
    # products
    "dot", "matvec", "rmatvec", "matmat", "matmul_sparse",
    # linalg (ported solver implementations)
    "linalg.cg", "linalg.cgs", "linalg.bicg", "linalg.bicgstab",
    "linalg.gmres", "linalg.eigsh", "linalg.power_iteration",
    "linalg.lobpcg_max", "linalg.norm", "linalg.onenormest",
    "linalg.LinearOperator", "linalg.aslinearoperator",
    "linalg.lsqr", "linalg.spsolve_triangular",
    "linalg.preconditioners.jacobi", "linalg.preconditioners.ssor",
    # integration (scipy.integrate ports used by the paper's workloads)
    "integrate.solve_ivp_rk45", "integrate.solve_ivp_rk4",
    "integrate.solve_ivp_gbs8",
    # extended surface (beyond the paper's prototype)
    "find", "count_nonzero", "setdiag", "spdiags", "block_diag",
    "save_npz", "load_npz", "linalg.expm_multiply",
    "column_slicing", "element_access",
]

# Hand-written distributed implementations (the §5.3 group: sorts and
# index-manipulating operations SciPy does with C loops).
HANDWRITTEN: List[str] = [
    "binary_union",          # structural add/max/min (two-pass)
    "multiply_intersection", # structural Hadamard (two-pass)
    "csr_spgemm",            # symbolic + numeric SpGEMM
    "csr_to_csc_sort",       # global sort conversion
    "expand_row_indices",    # CSR -> COO row expansion
    "row_slicing",           # pos-window row slices
    "structural_filter",     # tril/triu two-pass filter
    "distributed_scan",      # pos-from-counts via two-phase prefix sum
]

# Notable SciPy Sparse surface we have NOT implemented, with the path
# forward the paper sketches (§5.4).
UNIMPLEMENTED: Dict[str, str] = {
    "lil_matrix/dok_matrix": "sequential assembly formats; out of scope "
    "for a distributed library (same position as the paper)",
    "sparse slicing/indexing (column slices, fancy)": "needs hand-written "
    "reshuffle kernels",
    "linalg.spsolve/splu": "general LU factorization calls external "
    "libraries (SuperLU) in SciPy; the triangular-substitution half is "
    "implemented as a gathered task (linalg.spsolve_triangular)",
    "linalg.expm/expm_multiply": "portable on top of existing kernels",
    "save_npz/load_npz": "I/O; straightforward port",
}


def implemented_count() -> int:
    """Total implemented operations across all strategies."""
    return len(GENERATED) + len(PORTED) + len(HANDWRITTEN)


def summary() -> str:
    """One-line coverage summary."""
    return (
        f"{implemented_count()} operations: {len(GENERATED)} DISTAL-generated, "
        f"{len(PORTED)} ported, {len(HANDWRITTEN)} hand-written"
    )


def advisor_analyzable(name: str) -> bool:
    """Whether the static advisor has a cost/nnz model for an operation.

    GENERATED kernels are analyzable iff :mod:`repro.analysis.costmodel`
    registers a :class:`~repro.analysis.costmodel.KernelModel` for them
    (the coverage test pins this at *all* of them).  PORTED and
    HANDWRITTEN operations compose generated kernels and AutoTasks that
    carry their own ``cost_fn``, so the advisor analyzes them through
    the plan trace rather than a closed-form model.
    """
    from repro.analysis import costmodel

    return costmodel.analyzable(name)


#: Sparse-format name fragments recognized by :func:`op_formats`.
FORMAT_NAMES = ("csr", "csc", "coo", "dia", "bsr", "ell", "sell", "hyb")


def op_formats(name: str) -> List[str]:
    """The sparse formats an operation is specific to.

    Derived from naming conventions: ``csr_matvec`` -> ``["csr"]``,
    ``csr_to_csc_sort`` -> ``["csr", "csc"]``, ``tosell`` ->
    ``["sell"]``.  Format-generic operations (solvers, constructors,
    element-wise algebra) report ``["any"]``.
    """
    base = name.rsplit(".", 1)[-1]
    if base.startswith("to") and base[2:] in FORMAT_NAMES:
        return [base[2:]]
    found = [
        fmt for fmt in FORMAT_NAMES
        if base == fmt or base.startswith(fmt + "_") or f"_{fmt}_" in base
        or base.endswith(f"_{fmt}")
    ]
    return found or ["any"]


def inventory() -> List[Dict[str, object]]:
    """The full inventory: one row per operation.

    Columns: ``name``, ``strategy`` (generated/ported/handwritten),
    ``advisor`` — whether ``python -m repro.analysis advise`` can cost
    the operation statically (closed-form model for generated kernels;
    trace-replay for the rest) — and ``formats``, the sparse formats
    the operation is specific to (``["any"]`` when format-generic).
    """
    rows: List[Dict[str, object]] = []
    for name in GENERATED:
        rows.append(
            {
                "name": name,
                "strategy": "generated",
                "advisor": advisor_analyzable(name),
                "formats": op_formats(name),
            }
        )
    for name in PORTED:
        rows.append(
            {
                "name": name,
                "strategy": "ported",
                "advisor": True,
                "formats": op_formats(name),
            }
        )
    for name in HANDWRITTEN:
        rows.append(
            {
                "name": name,
                "strategy": "handwritten",
                "advisor": True,
                "formats": op_formats(name),
            }
        )
    return rows
