"""SELL-C-sigma matrices: sliced ELL with sigma-window row sorting.

Storage layout: ``data`` and ``cols`` are packed 1-D regions holding
C-row slices padded to each slice's own maximum length; per-*slot*
metadata (``perm``, ``rowlen``, ``start``, ``stride``) locates every
row's lane stream at ``start + k * stride``.  Sorting windows (sigma)
and slices (C) are clipped to the runtime's row-tile boundaries, so each
tile permutes onto itself and packed slices never cross shards — the
kernel re-sorts its slots back to ascending original row and is bitwise
identical to CSR execution.  The :class:`~repro.analysis.formatsel.SellLayout`
computed at conversion time travels with the matrix so launches can
supply the matching explicit partitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.numeric as rnp
from repro.core import validation
from repro.core.base import spmatrix
from repro.distal.formats import SELL
from repro.distal.registry import get_registry, launch
from repro.geometry import Rect
from repro.legion.partition import ExplicitPartition
from repro.numeric.array import ndarray


class sell_matrix(spmatrix):
    """SELL-C-sigma matrix: packed slices plus slot metadata."""

    format = "sell"

    def __init__(self, arg1, shape=None, dtype=None,
                 c: Optional[int] = None, sigma: Optional[int] = None):
        from repro.core.csr import csr_matrix

        if isinstance(arg1, sell_matrix) and c is None and sigma is None:
            src = arg1
        elif isinstance(arg1, spmatrix):
            src = arg1.tosell(c=c, sigma=sigma)
        else:
            src = csr_matrix(arg1, shape=shape, dtype=dtype).tosell(
                c=c, sigma=sigma
            )
        spmatrix.__init__(self, src.shape, dtype or src.dtype)
        self.data_store = (
            src.data_store
            if src.dtype == self._dtype
            else ndarray(src.data_store).astype(self._dtype).store
        )
        self.cols_store = src.cols_store
        self.perm_store = src.perm_store
        self.rowlen_store = src.rowlen_store
        self.start_store = src.start_store
        self.stride_store = src.stride_store
        self._layout = src._layout
        self._nnz = src._nnz

    @classmethod
    def _from_stores(
        cls, data, cols, perm, rowlen, start, stride, shape,
        *, c: int, sigma: int, layout,
    ) -> "sell_matrix":
        obj = cls.__new__(cls)
        spmatrix.__init__(obj, shape, data.dtype)
        obj.data_store = data
        obj.cols_store = cols
        obj.perm_store = perm
        obj.rowlen_store = rowlen
        obj.start_store = start
        obj.stride_store = stride
        obj._layout = layout
        obj._nnz = None
        obj._validate()
        return obj

    def _validate(self) -> None:
        if not self._runtime.config.validate:
            return
        self._runtime.barrier()
        validation.check_sell_host(
            self.data_store.data,
            self.cols_store.data,
            self.perm_store.data,
            self.rowlen_store.data,
            self.start_store.data,
            self.stride_store.data,
            self.shape,
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (unpadded) entries."""
        if self._nnz is None:
            self._runtime.barrier()
            self._nnz = int(self.rowlen_store.data.sum())
        return self._nnz

    @property
    def c(self) -> int:
        """Slice height C."""
        return self._layout.c

    @property
    def sigma(self) -> int:
        """Sorting-window extent sigma."""
        return self._layout.sigma

    @property
    def layout(self):
        """The conversion-time :class:`SellLayout` (tile/slice geometry)."""
        return self._layout

    @property
    def data(self) -> ndarray:
        """The packed value store as a dense array (shared)."""
        return ndarray(self.data_store)

    def _proc_kind(self):
        return self._runtime.scope.kind

    def _partitions(self, y_store, data_store):
        """Explicit partitions matching the conversion-time layout."""
        layout = self._layout
        row_rects = [
            Rect((layout.boundaries[t],), (layout.boundaries[t + 1],))
            for t in range(len(layout.boundaries) - 1)
        ]
        pack_rects = [Rect((lo,), (hi,)) for lo, hi in layout.tile_ranges]
        return {
            "y": ExplicitPartition(y_store.region, row_rects),
            "perm": ExplicitPartition(self.perm_store.region, row_rects),
            "rowlen": ExplicitPartition(self.rowlen_store.region, row_rects),
            "start": ExplicitPartition(self.start_store.region, row_rects),
            "stride": ExplicitPartition(self.stride_store.region, row_rects),
            "data": ExplicitPartition(data_store.region, pack_rects),
            "cols": ExplicitPartition(self.cols_store.region, pack_rects),
        }

    # ------------------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        out_dtype = np.result_type(self.dtype, x.dtype)
        data_store = self.data_store
        if out_dtype != self.dtype:
            data_store = ndarray(self.data_store).astype(out_dtype).store
        y = rnp.empty(self.shape[0], dtype=out_dtype)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", SELL, self._proc_kind())
        launch(
            spec,
            self._runtime,
            {
                "y": y.store,
                "data": data_store,
                "cols": self.cols_store,
                "perm": self.perm_store,
                "rowlen": self.rowlen_store,
                "start": self.start_store,
                "stride": self.stride_store,
                "x": x.store,
            },
            explicit_partitions=self._partitions(y.store, data_store),
            scalars={"C": self._layout.c},
        )
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        return self.tocsr()._rmatvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        return self.tocsr()._matmat(X)

    # ------------------------------------------------------------------
    def tocsr(self):
        """Distributed unpack back to CSR (slot permutation undone)."""
        from repro.core.convert import sell_to_csr

        result = sell_to_csr(self)
        self._note_convert("csr", result)
        return result

    def tocoo(self):
        """Convert through CSR."""
        return self.tocsr().tocoo()

    def tosell(self, c: Optional[int] = None,
               sigma: Optional[int] = None) -> "sell_matrix":
        """Identity unless re-sliced with different (C, sigma)."""
        if (c is None or c == self.c) and (sigma is None or sigma == self.sigma):
            return self
        return self.tocsr().tosell(c=c, sigma=sigma)

    def transpose(self):
        """Transpose through CSR."""
        return self.tocsr().transpose()

    # ------------------------------------------------------------------
    def _with_data(self, data: ndarray) -> "sell_matrix":
        obj = sell_matrix.__new__(sell_matrix)
        spmatrix.__init__(obj, self.shape, data.dtype)
        obj.data_store = data.store
        obj.cols_store = self.cols_store
        obj.perm_store = self.perm_store
        obj.rowlen_store = self.rowlen_store
        obj.start_store = self.start_store
        obj.stride_store = self.stride_store
        obj._layout = self._layout
        obj._nnz = self._nnz
        return obj

    def _scale(self, alpha) -> "sell_matrix":
        return self._with_data(self.data * alpha)

    def _unary_values(self, fn) -> "sell_matrix":
        return self._with_data(fn(self.data))

    def copy(self) -> "sell_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_data(self.data.copy())

    def astype(self, dtype) -> "sell_matrix":
        """A cast copy of the packed values (structure shared)."""
        return self._with_data(self.data.astype(dtype))

    def conj(self) -> "sell_matrix":
        """Complex conjugate of the values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_data(self.data.conj())

    conjugate = conj


sell_array = sell_matrix
