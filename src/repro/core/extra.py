"""Additional SciPy-Sparse surface: structural filters and utilities.

``tril``/``triu`` are two-pass structural filters (symbolic counts +
numeric fill through a fresh ``pos`` image — the same scheme as the
element-wise kernels); ``find``/``count_nonzero``/``setdiag`` and the
block constructors are ports onto existing distributed operations.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import AutoTask, Store
from repro.core.convert import _expand, _pos_from_counts, _shard_rows
from repro.numeric.array import ndarray


def _filter_structure(A, keep: Callable[[np.ndarray, np.ndarray], np.ndarray], name: str):
    """C = entries of A where ``keep(rows, cols)`` holds (two-pass)."""
    from repro.core.csr import csr_matrix

    rt = A.runtime
    counts = rnp.empty(A.shape[0], dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        rows, cols, jlo, jhi = _expand(ctx.arrays["pos"], ctx.arrays["crd"], rlo, rhi)
        if rhi <= rlo:
            return
        if jhi <= jlo:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        mask = keep(rows, cols)
        ctx.arrays["counts"][rlo:rhi] = np.bincount(
            rows[mask] - rlo, minlength=rhi - rlo
        )

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        return float(nnz), nnz * 16.0

    task = AutoTask(rt, f"{name}_count", count_kernel, cost)
    task.add_output("counts", counts.store)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), A.dtype, runtime=rt, name="vals")

    def fill_kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        rows, cols, jlo, jhi = _expand(ctx.arrays["pos"], ctx.arrays["crd"], rlo, rhi)
        if rhi <= rlo or jhi <= jlo:
            return
        mask = keep(rows, cols)
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cols[mask]
        ctx.arrays["Ovals"][olo:ohi] = ctx.arrays["vals"][jlo:jhi][mask]

    task = AutoTask(rt, f"{name}_fill", fill_kernel, cost)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()
    return csr_matrix._from_stores(out_pos, out_crd, out_vals, A.shape)


def tril(A, k: int = 0, format=None):
    """Lower triangle: entries with ``col - row <= k``."""
    out = _filter_structure(A.tocsr(), lambda r, c: c - r <= k, "tril")
    return out if format in (None, "csr") else out.asformat(format)


def triu(A, k: int = 0, format=None):
    """Upper triangle: entries with ``col - row >= k``."""
    out = _filter_structure(A.tocsr(), lambda r, c: c - r >= k, "triu")
    return out if format in (None, "csr") else out.asformat(format)


def find(A) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(rows, cols, values) of the non-zero entries (``scipy.sparse.find``)."""
    coo = A.tocoo()
    vals = coo.data.to_numpy()
    keep = vals != 0
    return coo.row[keep], coo.col[keep], vals[keep]


def count_nonzero(A) -> int:
    """Stored entries with non-zero value (explicit zeros excluded)."""
    csr = A.tocsr()
    return int(rnp.count_nonzero(csr.data))


def setdiag(A, values, k: int = 0):
    """Return A with its k-th diagonal replaced (functional ``setdiag``).

    Ported entirely onto existing operations (the §5.2 bootstrap style):
    ``A - diag(current) + diag(new)`` as structural unions.
    """
    from repro.core.construct import diags

    if k != 0:
        raise NotImplementedError("only the main diagonal is supported")
    n = min(A.shape)
    csr = A.tocsr()
    if isinstance(values, (int, float, complex)):
        values = np.full(n, values)
    if isinstance(values, ndarray):
        values = values.to_numpy()
    current = csr.diagonal().to_numpy()
    delta = diags([np.asarray(values) - current], [0], shape=A.shape).tocsr()
    return csr + delta


def spdiags(data, diags_offsets, m: int, n: int, format=None):
    """``scipy.sparse.spdiags``: DIA construction, SciPy conventions."""
    from repro.core.dia import dia_matrix

    out = dia_matrix((np.atleast_2d(data), diags_offsets), shape=(m, n))
    return out if format in (None, "dia") else out.asformat(format)


def block_diag(mats, format=None):
    """Block-diagonal stacking of sparse matrices."""
    from repro.core.coo import coo_matrix

    rows, cols, vals = [], [], []
    r_off = c_off = 0
    for mat in mats:
        coo = mat.tocoo()
        rows.append(coo.row + r_off)
        cols.append(coo.col + c_off)
        vals.append(coo.data.to_numpy())
        r_off += mat.shape[0]
        c_off += mat.shape[1]
    out = coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(r_off, c_off),
    )
    return out if format in (None, "coo") else out.asformat(format)
