"""Construction routines: eye, diags, random, kron, stacking.

Assembly happens on the host (like the paper, which leaves SciPy's
sequential assembly formats unsupported); the resulting matrices are
fully distributed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.coo import coo_matrix
from repro.core.dia import dia_matrix


def diags(
    diagonals,
    offsets: Union[int, Sequence[int]] = 0,
    shape: Optional[Tuple[int, int]] = None,
    format: Optional[str] = None,
    dtype=None,
):
    """Build a matrix from diagonals (``scipy.sparse.diags``)."""
    offsets_scalar = np.isscalar(offsets) or (
        isinstance(offsets, np.ndarray) and offsets.ndim == 0
    )
    if offsets_scalar:
        diagonals = [np.atleast_1d(np.asarray(diagonals))]
        offsets = [int(offsets)]
    else:
        diagonals = [np.atleast_1d(np.asarray(d)) for d in diagonals]
        offsets = [int(o) for o in offsets]
    if len(diagonals) != len(offsets):
        raise ValueError("number of diagonals does not match offsets")
    if shape is None:
        n = max(len(d) + abs(o) for d, o in zip(diagonals, offsets))
        shape = (n, n)
    n, m = shape
    out_dtype = np.dtype(dtype) if dtype is not None else np.result_type(
        *[d.dtype for d in diagonals]
    )
    if out_dtype.kind not in "fc":
        out_dtype = np.float64
    uniq = np.array(sorted(set(offsets)), dtype=np.int64)
    data_t = np.zeros((n, len(uniq)), dtype=out_dtype)
    dmap = {int(o): i for i, o in enumerate(uniq)}
    for diag, off in zip(diagonals, offsets):
        length = max(0, min(n, m - off) - max(0, -off))
        if length == 0:
            raise ValueError(f"offset {off} does not fit in shape {shape}")
        vals = np.broadcast_to(diag, (length,)) if diag.size == 1 else diag
        if len(vals) != length:
            raise ValueError(
                f"diagonal length {len(vals)} does not match offset {off} "
                f"in shape {shape}"
            )
        ilo = max(0, -off)
        data_t[ilo : ilo + length, dmap[off]] += vals
    out = dia_matrix._from_host_arrays(data_t, uniq, shape)
    if format is None or format == "dia":
        return out
    return out.asformat(format)


def eye(n: int, m: Optional[int] = None, k: int = 0, dtype=np.float64, format: Optional[str] = None):
    """Identity-like matrix with ones on diagonal ``k``."""
    n = int(n)
    m = n if m is None else int(m)
    length = max(0, min(n, m - k) - max(0, -k))
    out = diags(
        [np.ones(length, dtype=dtype)], [k], shape=(n, m), dtype=dtype
    )
    if format is None or format == "dia":
        return out
    return out.asformat(format)


def identity(n: int, dtype=np.float64, format: Optional[str] = None):
    """The n x n identity."""
    return eye(n, dtype=dtype, format=format)


def random(
    n: int,
    m: int,
    density: float = 0.01,
    format: str = "coo",
    dtype=np.float64,
    random_state=None,
    data_rvs=None,
):
    """Random sparse matrix (``scipy.sparse.random``)."""
    n, m = int(n), int(m)
    if not 0 <= density <= 1:
        raise ValueError("density must be in [0, 1]")
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    nnz = int(round(density * n * m))
    if nnz and n * m <= 2**24:
        flat = rng.choice(n * m, size=nnz, replace=False)
    else:
        flat = np.unique(rng.integers(0, n * m, size=int(nnz * 1.05) + 1))[:nnz]
    row = (flat // m).astype(np.int64)
    col = (flat % m).astype(np.int64)
    data = data_rvs(len(flat)) if data_rvs is not None else rng.random(len(flat))
    out = coo_matrix((data.astype(dtype), (row, col)), shape=(n, m), dtype=dtype)
    return out.asformat(format)


def rand(n, m, density=0.01, format="coo", dtype=np.float64, random_state=None):
    """Alias of random (scipy.sparse.rand)."""
    return random(n, m, density=density, format=format, dtype=dtype, random_state=random_state)


def kron(A, B, format: Optional[str] = None):
    """Kronecker product (host assembly from COO triples)."""
    A, B = A.tocoo(), B.tocoo()
    ar, ac, av = A.row, A.col, A.data.to_numpy()
    br, bc, bv = B.row, B.col, B.data.to_numpy()
    bn, bm = B.shape
    row = (ar[:, None] * bn + br[None, :]).ravel()
    col = (ac[:, None] * bm + bc[None, :]).ravel()
    val = (av[:, None] * bv[None, :]).ravel()
    shape = (A.shape[0] * bn, A.shape[1] * bm)
    out = coo_matrix((val, (row, col)), shape=shape)
    return out if format in (None, "coo") else out.asformat(format)


def vstack(blocks, format: Optional[str] = None):
    """Stack sparse matrices vertically."""
    blocks = [b.tocoo() for b in blocks]
    m = blocks[0].shape[1]
    if any(b.shape[1] != m for b in blocks):
        raise ValueError("all blocks must have the same number of columns")
    rows, cols, vals = [], [], []
    offset = 0
    for b in blocks:
        rows.append(b.row + offset)
        cols.append(b.col)
        vals.append(b.data.to_numpy())
        offset += b.shape[0]
    out = coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(offset, m),
    )
    return out if format in (None, "coo") else out.asformat(format)


def hstack(blocks, format: Optional[str] = None):
    """Stack sparse matrices horizontally."""
    blocks = [b.tocoo() for b in blocks]
    n = blocks[0].shape[0]
    if any(b.shape[0] != n for b in blocks):
        raise ValueError("all blocks must have the same number of rows")
    rows, cols, vals = [], [], []
    offset = 0
    for b in blocks:
        rows.append(b.row)
        cols.append(b.col + offset)
        vals.append(b.data.to_numpy())
        offset += b.shape[1]
    out = coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, offset),
    )
    return out if format in (None, "coo") else out.asformat(format)
