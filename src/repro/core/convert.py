"""Hand-written distributed kernels: element-wise sparse algebra, format
conversions, and SpGEMM (paper §5.3).

These are the operations SciPy implements with C loops over index
arrays.  Structure-producing operations (union/intersection adds,
SpGEMM) use the same two-pass scheme as the real legate.sparse: a
*symbolic* pass computes per-row output counts, the host scans them into
a new ``pos`` array, and a *numeric* pass fills the output ``crd`` and
``vals`` regions through an image of the new ``pos``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import AutoTask, Store
from repro.numeric.array import ndarray


# ----------------------------------------------------------------------
# Shared shard helpers (operate on global arrays + shard bounds)
# ----------------------------------------------------------------------
def _shard_rows(ctx, pos_name: str) -> Tuple[int, int]:
    r = ctx.rect(pos_name)
    return r.lo[0], r.hi[0]


def _expand(pos: np.ndarray, crd: np.ndarray, rlo: int, rhi: int):
    """Expand a pos row range to (rows, cols, jlo, jhi) for a shard."""
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    if rhi <= rlo:
        empty = np.empty(0, np.int64)
        return empty, empty, 0, 0
    jlo, jhi = int(lo[0]), int(hi[-1])
    rows = np.repeat(np.arange(rlo, rhi, dtype=np.int64), hi - lo)
    return rows, crd[jlo:jhi], jlo, jhi


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenation of [starts[i], starts[i]+counts[i])."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64)
    offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )


def _pos_from_counts(counts: "ndarray") -> Tuple[Store, int]:
    """Build a ``pos`` store from per-row counts with a distributed scan.

    The exclusive scan runs as two task phases (repro.numeric.scan); the
    only synchronization is reading the grand total, which sizes the
    output ``crd``/``vals`` regions — the same deferred-output pattern
    the real legate.sparse uses for its two-pass operations.
    """
    rt = counts.store.runtime
    excl, total = rnp.exclusive_scan(counts, dtype=np.int64)
    nnz = int(total)
    pos = Store.create((counts.shape[0], 2), np.int64, runtime=rt, name="pos")

    def kernel(ctx):
        r = ctx.rect("excl")
        lo, hi = r.lo[0], r.hi[0]
        if hi <= lo:
            return
        ctx.arrays["pos"][lo:hi, 0] = ctx.view("excl")
        ctx.arrays["pos"][lo:hi, 1] = ctx.view("excl") + ctx.view("counts")

    def cost(ctx):
        vol = ctx.rect("excl").volume()
        return float(vol), 4.0 * 8.0 * vol

    task = AutoTask(rt, "pos_from_counts", kernel, cost)
    task.add_output("pos", pos)
    task.add_input("excl", excl.store)
    task.add_input("counts", counts.store)
    task.add_alignment_constraint(pos, excl.store)
    task.add_alignment_constraint(excl.store, counts.store)
    task.execute()
    return pos, nnz


def _nlogn(nnz: float) -> float:
    return nnz * max(1.0, np.log2(max(nnz, 2.0)))


# ----------------------------------------------------------------------
# Element-wise union (add/sub/maximum/minimum) and intersection
# ----------------------------------------------------------------------
_UNION_COMBINE = {
    "add": np.add,
    "maximum": np.maximum,
    "minimum": np.minimum,
}


def binary_union(A, B, op: str = "add", beta: float = 1.0):
    """C = A ⊕ B on the structural union of the operands."""
    from repro.core.csr import csr_matrix

    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    if op not in _UNION_COMBINE:
        raise ValueError(f"unsupported union op {op!r}")
    combine = _UNION_COMBINE[op]
    rt = A.runtime
    out_dtype = np.result_type(A.dtype, B.dtype)

    def _sorted_merge(ctx):
        rlo, rhi = _shard_rows(ctx, "Apos")
        rows_a, cols_a, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        rows_b, cols_b, bjlo, bjhi = _expand(ctx.arrays["Bpos"], ctx.arrays["Bcrd"], rlo, rhi)
        rows = np.concatenate([rows_a, rows_b])
        cols = np.concatenate([cols_a, cols_b])
        if not len(rows):
            return rlo, rhi, rows, cols, None, None
        order = np.lexsort((cols, rows))
        fresh = np.empty(len(rows), dtype=bool)
        rs, cs = rows[order], cols[order]
        fresh[0] = True
        fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        return rlo, rhi, rs, cs, order, fresh

    # -- symbolic pass ---------------------------------------------------
    counts = rnp.empty(A.shape[0], dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi, rs, cs, order, fresh = _sorted_merge(ctx)
        if rhi <= rlo:
            return
        if order is None:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        ctx.arrays["counts"][rlo:rhi] = np.bincount(
            rs[fresh] - rlo, minlength=rhi - rlo
        )

    def count_cost(ctx):
        nnz = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        return _nlogn(nnz), nnz * 16.0

    task = AutoTask(rt, f"union_count_{op}", count_kernel, count_cost)
    task.add_output("counts", counts.store)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.add_image_constraint(B.pos, B.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), out_dtype, runtime=rt, name="vals")

    # -- numeric pass ------------------------------------------------------
    def fill_kernel(ctx):
        rlo, rhi, rs, cs, order, fresh = _sorted_merge(ctx)
        if rhi <= rlo or order is None:
            return
        _, _, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        _, _, bjlo, bjhi = _expand(ctx.arrays["Bpos"], ctx.arrays["Bcrd"], rlo, rhi)
        va = ctx.arrays["Avals"][ajlo:ajhi].astype(out_dtype, copy=False)
        vb = ctx.arrays["Bvals"][bjlo:bjhi].astype(out_dtype, copy=False)
        if op == "add" and beta != 1.0:
            vb = vb * beta
        vs = np.concatenate([va, vb])[order]
        starts = np.flatnonzero(fresh)
        merged = combine.reduceat(vs, starts) if len(starts) else vs[:0]
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cs[fresh]
        ctx.arrays["Ovals"][olo:ohi] = merged

    def fill_cost(ctx):
        nnz_in = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        isz = out_dtype.itemsize
        return _nlogn(nnz_in), nnz_in * (16.0 + 2.0 * isz)

    task = AutoTask(rt, f"union_fill_{op}", fill_kernel, fill_cost)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Avals", A.vals)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_input("Bvals", B.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(B.pos, [B.crd, B.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()

    from repro.core.csr import csr_matrix

    return csr_matrix._from_stores(out_pos, out_crd, out_vals, A.shape)


def multiply_intersection(A, B):
    """C = A ⊙ B on the structural intersection (Hadamard product)."""
    from repro.core.csr import csr_matrix

    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    rt = A.runtime
    out_dtype = np.result_type(A.dtype, B.dtype)

    def _sorted_pairs(ctx):
        rlo, rhi = _shard_rows(ctx, "Apos")
        rows_a, cols_a, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        rows_b, cols_b, bjlo, bjhi = _expand(ctx.arrays["Bpos"], ctx.arrays["Bcrd"], rlo, rhi)
        rows = np.concatenate([rows_a, rows_b])
        cols = np.concatenate([cols_a, cols_b])
        if not len(rows):
            return rlo, rhi, None, None, None, (ajlo, ajhi, bjlo, bjhi)
        order = np.lexsort((cols, rows))
        rs, cs = rows[order], cols[order]
        # With canonical operands a (row, col) pair appears at most twice:
        # once from A and once from B.  Hits are adjacent after the sort.
        hit = np.zeros(len(rs), dtype=bool)
        hit[1:] = (rs[1:] == rs[:-1]) & (cs[1:] == cs[:-1])
        return rlo, rhi, order, (rs, cs), hit, (ajlo, ajhi, bjlo, bjhi)

    counts = rnp.empty(A.shape[0], dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi, order, sorted_rc, hit, _ = _sorted_pairs(ctx)
        if rhi <= rlo:
            return
        if order is None:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        rs, _ = sorted_rc
        ctx.arrays["counts"][rlo:rhi] = np.bincount(
            rs[hit] - rlo, minlength=rhi - rlo
        )

    def count_cost(ctx):
        nnz = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        return _nlogn(nnz), nnz * 16.0

    task = AutoTask(rt, "hadamard_count", count_kernel, count_cost)
    task.add_output("counts", counts.store)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.add_image_constraint(B.pos, B.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), out_dtype, runtime=rt, name="vals")

    def fill_kernel(ctx):
        rlo, rhi, order, sorted_rc, hit, spans = _sorted_pairs(ctx)
        if rhi <= rlo or order is None:
            return
        ajlo, ajhi, bjlo, bjhi = spans
        _, cs = sorted_rc
        va = ctx.arrays["Avals"][ajlo:ajhi].astype(out_dtype, copy=False)
        vb = ctx.arrays["Bvals"][bjlo:bjhi].astype(out_dtype, copy=False)
        vs = np.concatenate([va, vb])[order]
        products = vs[np.flatnonzero(hit) - 1] * vs[hit]
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cs[hit]
        ctx.arrays["Ovals"][olo:ohi] = products

    def fill_cost(ctx):
        nnz_in = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        isz = out_dtype.itemsize
        return _nlogn(nnz_in), nnz_in * (16.0 + 2.0 * isz)

    task = AutoTask(rt, "hadamard_fill", fill_kernel, fill_cost)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Avals", A.vals)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_input("Bvals", B.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(B.pos, [B.crd, B.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()

    from repro.core.csr import csr_matrix

    return csr_matrix._from_stores(out_pos, out_crd, out_vals, A.shape)


def multiply_dense(A, other):
    """A ⊙ D for dense D: a full (n, m) matrix, or a 1-D row vector of
    length m that scales columns (NumPy broadcasting of shape ``(m,)``)."""
    from repro.core.csr import csr_matrix

    rt = A.runtime
    if isinstance(other, np.ndarray):
        other = rnp.array(other)
    n, m = A.shape
    if other.ndim == 1 and other.shape[0] == m:
        mode = "cols"
    elif other.ndim == 2 and other.shape == (n, m):
        mode = "full"
    else:
        raise ValueError(f"cannot broadcast dense operand {other.shape} to {A.shape}")
    out_dtype = np.result_type(A.dtype, other.dtype)
    out_vals = rnp.empty(A.nnz, dtype=out_dtype)

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        rows, cols, jlo, jhi = _expand(ctx.arrays["pos"], ctx.arrays["crd"], rlo, rhi)
        if jhi <= jlo:
            return
        vals = ctx.arrays["vals"][jlo:jhi]
        D = ctx.arrays["D"]
        if mode == "cols":
            factor = D[cols]
        else:
            factor = D[rows, cols]
        ctx.arrays["out_vals"][jlo:jhi] = vals * factor

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        isz = out_dtype.itemsize
        return float(nnz), nnz * (8.0 + 3.0 * isz)

    task = AutoTask(rt, f"multiply_dense_{mode}", kernel, cost)
    task.add_output("out_vals", out_vals.store)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_input("D", other.store)
    task.add_image_constraint(A.pos, [A.crd, A.vals, out_vals.store], kind="range")
    if mode == "cols":
        task.add_image_constraint(A.crd, other.store, kind="coordinate")
    else:
        task.add_alignment_constraint(A.pos, other.store)
    task.execute()
    return csr_matrix._from_stores(A.pos, A.crd, out_vals.store, A.shape)


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------
def expand_row_indices(A) -> ndarray:
    """The COO row array of a CSR matrix (distributed expansion)."""
    rt = A.runtime
    rows = rnp.empty(A.nnz, dtype=np.int64)

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        r, _, jlo, jhi = _expand(ctx.arrays["pos"], ctx.arrays["crd"], rlo, rhi)
        if jhi <= jlo:
            return
        ctx.arrays["rows"][jlo:jhi] = r

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        return float(nnz), nnz * 16.0

    task = AutoTask(rt, "expand_rows", kernel, cost)
    task.add_output("rows", rows.store)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_image_constraint(A.pos, [A.crd, rows.store], kind="range")
    task.execute()
    return rows


def csr_to_coo(A):
    """CSR -> COO via distributed row expansion (shares crd/vals)."""
    from repro.core.coo import coo_matrix

    rows = expand_row_indices(A)
    return coo_matrix._from_stores(rows.store, A.crd, A.vals, A.shape)


def csr_to_csc(A):
    """CSR → CSC: a global sort, run as a single gathered task.

    Format conversions that reorganize data globally are the expensive
    operations the paper warns about (§1); the single-shard launch with
    replicated inputs models exactly that gather + sort cost.
    """
    from repro.core.csc import csc_matrix

    rt = A.runtime
    n, m = A.shape
    rows = expand_row_indices(A)
    out_pos = Store.create((m, 2), np.int64, runtime=rt, name="pos")
    out_crd = Store.create((A.nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((A.nnz,), A.dtype, runtime=rt, name="vals")

    def kernel(ctx):
        r = ctx.arrays["rows"]
        c = ctx.arrays["crd"]
        v = ctx.arrays["vals"]
        order = np.lexsort((r, c))
        ctx.arrays["Ocrd"][...] = r[order]
        ctx.arrays["Ovals"][...] = v[order]
        counts = np.bincount(c, minlength=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        ctx.arrays["Opos"][:, 0] = indptr[:-1]
        ctx.arrays["Opos"][:, 1] = indptr[1:]

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        isz = A.dtype.itemsize
        return _nlogn(nnz), nnz * (32.0 + 2.0 * isz) + m * 16.0

    task = AutoTask(rt, "csr_to_csc", kernel, cost, colors=1)
    task.add_input("rows", rows.store)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_output("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    for store in (rows.store, A.crd, A.vals, out_pos, out_crd, out_vals):
        task.add_broadcast(store)
    task.execute()
    return csc_matrix._from_stores(out_pos, out_crd, out_vals, (n, m))


# ----------------------------------------------------------------------
# SpGEMM (two-pass row-split)
# ----------------------------------------------------------------------
def csr_spgemm(A, B):
    """C = A @ B for CSR operands: symbolic counts, scan, numeric fill."""
    from repro.core.csr import csr_matrix

    if A.shape[1] != B.shape[0]:
        raise ValueError(f"dimension mismatch: {A.shape} @ {B.shape}")
    rt = A.runtime
    if B.pos.region.uid == A.pos.region.uid:
        # A @ A: the shared pos store would be both row-aligned (as A's)
        # and an image destination (as B's); clone B's structure.
        rt.barrier()
        B = csr_matrix._from_stores(
            Store.create(B.pos.shape, np.int64, data=B.pos.data.copy(), runtime=rt, name="pos"),
            Store.create(B.crd.shape, np.int64, data=B.crd.data.copy(), runtime=rt, name="crd"),
            B.vals,
            B.shape,
        )
    out_dtype = np.result_type(A.dtype, B.dtype)
    n = A.shape[0]

    def _expand_product(ctx):
        rlo, rhi = _shard_rows(ctx, "Apos")
        rows_a, acols, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        if ajhi <= ajlo:
            return rlo, rhi, None
        bpos = ctx.arrays["Bpos"]
        blo = bpos[acols, 0]
        blen = bpos[acols, 1] - blo
        cat = _concat_ranges(blo, blen)
        rows = np.repeat(rows_a, blen)
        cols = ctx.arrays["Bcrd"][cat]
        return rlo, rhi, (rows, cols, cat, blen, ajlo, ajhi)

    counts = rnp.empty(n, dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi, expansion = _expand_product(ctx)
        if rhi <= rlo:
            return
        if expansion is None:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        rows, cols = expansion[0], expansion[1]
        if not len(rows):
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        order = np.lexsort((cols, rows))
        rs, cs = rows[order], cols[order]
        fresh = np.empty(len(rs), dtype=bool)
        fresh[0] = True
        fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        ctx.arrays["counts"][rlo:rhi] = np.bincount(rs[fresh] - rlo, minlength=rhi - rlo)

    def count_cost(ctx):
        work = ctx.rect("Acrd").volume() * 8.0  # expansion estimate
        return _nlogn(work), work * 16.0

    task = AutoTask(rt, "spgemm_count", count_kernel, count_cost)
    task.add_output("counts", counts.store)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.add_image_constraint(A.crd, B.pos, kind="coordinate")
    task.add_image_constraint(B.pos, B.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), out_dtype, runtime=rt, name="vals")

    def fill_kernel(ctx):
        rlo, rhi, expansion = _expand_product(ctx)
        if rhi <= rlo or expansion is None:
            return
        rows, cols, cat, blen, ajlo, ajhi = expansion
        if not len(rows):
            return
        va = np.repeat(ctx.arrays["Avals"][ajlo:ajhi], blen).astype(out_dtype, copy=False)
        vb = ctx.arrays["Bvals"][cat].astype(out_dtype, copy=False)
        vals = va * vb
        order = np.lexsort((cols, rows))
        rs, cs, vs = rows[order], cols[order], vals[order]
        fresh = np.empty(len(rs), dtype=bool)
        fresh[0] = True
        fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        starts = np.flatnonzero(fresh)
        merged = np.add.reduceat(vs, starts)
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cs[fresh]
        ctx.arrays["Ovals"][olo:ohi] = merged

    def fill_cost(ctx):
        work = ctx.rect("Acrd").volume() * 8.0
        isz = out_dtype.itemsize
        return _nlogn(work) + work, work * (16.0 + 2.0 * isz)

    task = AutoTask(rt, "spgemm_fill", fill_kernel, fill_cost)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Avals", A.vals)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_input("Bvals", B.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(A.crd, B.pos, kind="coordinate")
    task.add_image_constraint(B.pos, [B.crd, B.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()

    from repro.core.csr import csr_matrix

    return csr_matrix._from_stores(out_pos, out_crd, out_vals, (n, B.shape[1]))
