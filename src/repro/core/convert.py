"""Hand-written distributed kernels: element-wise sparse algebra, format
conversions, and SpGEMM (paper §5.3).

These are the operations SciPy implements with C loops over index
arrays.  Structure-producing operations (union/intersection adds,
SpGEMM) use the same two-pass scheme as the real legate.sparse: a
*symbolic* pass computes per-row output counts, the host scans them into
a new ``pos`` array, and a *numeric* pass fills the output ``crd`` and
``vals`` regions through an image of the new ``pos``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import AutoTask, Store
from repro.numeric.array import ndarray


# ----------------------------------------------------------------------
# Shared shard helpers (operate on global arrays + shard bounds)
# ----------------------------------------------------------------------
def _shard_rows(ctx, pos_name: str) -> Tuple[int, int]:
    r = ctx.rect(pos_name)
    return r.lo[0], r.hi[0]


def _expand(pos: np.ndarray, crd: np.ndarray, rlo: int, rhi: int):
    """Expand a pos row range to (rows, cols, jlo, jhi) for a shard."""
    lo = pos[rlo:rhi, 0]
    hi = pos[rlo:rhi, 1]
    if rhi <= rlo:
        empty = np.empty(0, np.int64)
        return empty, empty, 0, 0
    jlo, jhi = int(lo[0]), int(hi[-1])
    rows = np.repeat(np.arange(rlo, rhi, dtype=np.int64), hi - lo)
    return rows, crd[jlo:jhi], jlo, jhi


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenation of [starts[i], starts[i]+counts[i])."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64)
    offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )


def _pos_from_counts(counts: "ndarray") -> Tuple[Store, int]:
    """Build a ``pos`` store from per-row counts with a distributed scan.

    The exclusive scan runs as two task phases (repro.numeric.scan); the
    only synchronization is reading the grand total, which sizes the
    output ``crd``/``vals`` regions — the same deferred-output pattern
    the real legate.sparse uses for its two-pass operations.
    """
    rt = counts.store.runtime
    excl, total = rnp.exclusive_scan(counts, dtype=np.int64)
    nnz = int(total)
    pos = Store.create((counts.shape[0], 2), np.int64, runtime=rt, name="pos")

    def kernel(ctx):
        r = ctx.rect("excl")
        lo, hi = r.lo[0], r.hi[0]
        if hi <= lo:
            return
        ctx.arrays["pos"][lo:hi, 0] = ctx.view("excl")
        ctx.arrays["pos"][lo:hi, 1] = ctx.view("excl") + ctx.view("counts")

    def cost(ctx):
        vol = ctx.rect("excl").volume()
        return float(vol), 4.0 * 8.0 * vol

    task = AutoTask(rt, "pos_from_counts", kernel, cost)
    task.add_output("pos", pos)
    task.add_input("excl", excl.store)
    task.add_input("counts", counts.store)
    task.add_alignment_constraint(pos, excl.store)
    task.add_alignment_constraint(excl.store, counts.store)
    task.execute()
    return pos, nnz


def _nlogn(nnz: float) -> float:
    return nnz * max(1.0, np.log2(max(nnz, 2.0)))


# ----------------------------------------------------------------------
# Element-wise union (add/sub/maximum/minimum) and intersection
# ----------------------------------------------------------------------
_UNION_COMBINE = {
    "add": np.add,
    "maximum": np.maximum,
    "minimum": np.minimum,
}


def binary_union(A, B, op: str = "add", beta: float = 1.0):
    """C = A ⊕ B on the structural union of the operands."""
    from repro.core.csr import csr_matrix

    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    if op not in _UNION_COMBINE:
        raise ValueError(f"unsupported union op {op!r}")
    combine = _UNION_COMBINE[op]
    rt = A.runtime
    out_dtype = np.result_type(A.dtype, B.dtype)

    def _sorted_merge(ctx):
        rlo, rhi = _shard_rows(ctx, "Apos")
        rows_a, cols_a, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        rows_b, cols_b, bjlo, bjhi = _expand(ctx.arrays["Bpos"], ctx.arrays["Bcrd"], rlo, rhi)
        rows = np.concatenate([rows_a, rows_b])
        cols = np.concatenate([cols_a, cols_b])
        if not len(rows):
            return rlo, rhi, rows, cols, None, None
        order = np.lexsort((cols, rows))
        fresh = np.empty(len(rows), dtype=bool)
        rs, cs = rows[order], cols[order]
        fresh[0] = True
        fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        return rlo, rhi, rs, cs, order, fresh

    # -- symbolic pass ---------------------------------------------------
    counts = rnp.empty(A.shape[0], dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi, rs, cs, order, fresh = _sorted_merge(ctx)
        if rhi <= rlo:
            return
        if order is None:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        ctx.arrays["counts"][rlo:rhi] = np.bincount(
            rs[fresh] - rlo, minlength=rhi - rlo
        )

    def count_cost(ctx):
        nnz = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        return _nlogn(nnz), nnz * 16.0

    task = AutoTask(rt, f"union_count_{op}", count_kernel, count_cost)
    task.add_output("counts", counts.store)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.add_image_constraint(B.pos, B.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), out_dtype, runtime=rt, name="vals")

    # -- numeric pass ------------------------------------------------------
    def fill_kernel(ctx):
        rlo, rhi, rs, cs, order, fresh = _sorted_merge(ctx)
        if rhi <= rlo or order is None:
            return
        _, _, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        _, _, bjlo, bjhi = _expand(ctx.arrays["Bpos"], ctx.arrays["Bcrd"], rlo, rhi)
        va = ctx.arrays["Avals"][ajlo:ajhi].astype(out_dtype, copy=False)
        vb = ctx.arrays["Bvals"][bjlo:bjhi].astype(out_dtype, copy=False)
        if op == "add" and beta != 1.0:
            vb = vb * beta
        vs = np.concatenate([va, vb])[order]
        starts = np.flatnonzero(fresh)
        merged = combine.reduceat(vs, starts) if len(starts) else vs[:0]
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cs[fresh]
        ctx.arrays["Ovals"][olo:ohi] = merged

    def fill_cost(ctx):
        nnz_in = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        isz = out_dtype.itemsize
        return _nlogn(nnz_in), nnz_in * (16.0 + 2.0 * isz)

    task = AutoTask(rt, f"union_fill_{op}", fill_kernel, fill_cost)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Avals", A.vals)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_input("Bvals", B.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(B.pos, [B.crd, B.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()

    from repro.core.csr import csr_matrix

    return csr_matrix._from_stores(out_pos, out_crd, out_vals, A.shape)


def multiply_intersection(A, B):
    """C = A ⊙ B on the structural intersection (Hadamard product)."""
    from repro.core.csr import csr_matrix

    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    rt = A.runtime
    out_dtype = np.result_type(A.dtype, B.dtype)

    def _sorted_pairs(ctx):
        rlo, rhi = _shard_rows(ctx, "Apos")
        rows_a, cols_a, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        rows_b, cols_b, bjlo, bjhi = _expand(ctx.arrays["Bpos"], ctx.arrays["Bcrd"], rlo, rhi)
        rows = np.concatenate([rows_a, rows_b])
        cols = np.concatenate([cols_a, cols_b])
        if not len(rows):
            return rlo, rhi, None, None, None, (ajlo, ajhi, bjlo, bjhi)
        order = np.lexsort((cols, rows))
        rs, cs = rows[order], cols[order]
        # With canonical operands a (row, col) pair appears at most twice:
        # once from A and once from B.  Hits are adjacent after the sort.
        hit = np.zeros(len(rs), dtype=bool)
        hit[1:] = (rs[1:] == rs[:-1]) & (cs[1:] == cs[:-1])
        return rlo, rhi, order, (rs, cs), hit, (ajlo, ajhi, bjlo, bjhi)

    counts = rnp.empty(A.shape[0], dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi, order, sorted_rc, hit, _ = _sorted_pairs(ctx)
        if rhi <= rlo:
            return
        if order is None:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        rs, _ = sorted_rc
        ctx.arrays["counts"][rlo:rhi] = np.bincount(
            rs[hit] - rlo, minlength=rhi - rlo
        )

    def count_cost(ctx):
        nnz = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        return _nlogn(nnz), nnz * 16.0

    task = AutoTask(rt, "hadamard_count", count_kernel, count_cost)
    task.add_output("counts", counts.store)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.add_image_constraint(B.pos, B.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), out_dtype, runtime=rt, name="vals")

    def fill_kernel(ctx):
        rlo, rhi, order, sorted_rc, hit, spans = _sorted_pairs(ctx)
        if rhi <= rlo or order is None:
            return
        ajlo, ajhi, bjlo, bjhi = spans
        _, cs = sorted_rc
        va = ctx.arrays["Avals"][ajlo:ajhi].astype(out_dtype, copy=False)
        vb = ctx.arrays["Bvals"][bjlo:bjhi].astype(out_dtype, copy=False)
        vs = np.concatenate([va, vb])[order]
        products = vs[np.flatnonzero(hit) - 1] * vs[hit]
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cs[hit]
        ctx.arrays["Ovals"][olo:ohi] = products

    def fill_cost(ctx):
        nnz_in = ctx.rect("Acrd").volume() + ctx.rect("Bcrd").volume()
        isz = out_dtype.itemsize
        return _nlogn(nnz_in), nnz_in * (16.0 + 2.0 * isz)

    task = AutoTask(rt, "hadamard_fill", fill_kernel, fill_cost)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Avals", A.vals)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_input("Bvals", B.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, B.pos)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(B.pos, [B.crd, B.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()

    from repro.core.csr import csr_matrix

    return csr_matrix._from_stores(out_pos, out_crd, out_vals, A.shape)


def multiply_dense(A, other):
    """A ⊙ D for dense D: a full (n, m) matrix, or a 1-D row vector of
    length m that scales columns (NumPy broadcasting of shape ``(m,)``)."""
    from repro.core.csr import csr_matrix

    rt = A.runtime
    if isinstance(other, np.ndarray):
        other = rnp.array(other)
    n, m = A.shape
    if other.ndim == 1 and other.shape[0] == m:
        mode = "cols"
    elif other.ndim == 2 and other.shape == (n, m):
        mode = "full"
    else:
        raise ValueError(f"cannot broadcast dense operand {other.shape} to {A.shape}")
    out_dtype = np.result_type(A.dtype, other.dtype)
    out_vals = rnp.empty(A.nnz, dtype=out_dtype)

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        rows, cols, jlo, jhi = _expand(ctx.arrays["pos"], ctx.arrays["crd"], rlo, rhi)
        if jhi <= jlo:
            return
        vals = ctx.arrays["vals"][jlo:jhi]
        D = ctx.arrays["D"]
        if mode == "cols":
            factor = D[cols]
        else:
            factor = D[rows, cols]
        ctx.arrays["out_vals"][jlo:jhi] = vals * factor

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        isz = out_dtype.itemsize
        return float(nnz), nnz * (8.0 + 3.0 * isz)

    task = AutoTask(rt, f"multiply_dense_{mode}", kernel, cost)
    task.add_output("out_vals", out_vals.store)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_input("D", other.store)
    task.add_image_constraint(A.pos, [A.crd, A.vals, out_vals.store], kind="range")
    if mode == "cols":
        task.add_image_constraint(A.crd, other.store, kind="coordinate")
    else:
        task.add_alignment_constraint(A.pos, other.store)
    task.execute()
    return csr_matrix._from_stores(A.pos, A.crd, out_vals.store, A.shape)


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------
def expand_row_indices(A) -> ndarray:
    """The COO row array of a CSR matrix (distributed expansion)."""
    rt = A.runtime
    rows = rnp.empty(A.nnz, dtype=np.int64)

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        r, _, jlo, jhi = _expand(ctx.arrays["pos"], ctx.arrays["crd"], rlo, rhi)
        if jhi <= jlo:
            return
        ctx.arrays["rows"][jlo:jhi] = r

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        return float(nnz), nnz * 16.0

    task = AutoTask(rt, "expand_rows", kernel, cost)
    task.add_output("rows", rows.store)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_image_constraint(A.pos, [A.crd, rows.store], kind="range")
    task.execute()
    return rows


def csr_to_coo(A):
    """CSR -> COO via distributed row expansion (shares crd/vals)."""
    from repro.core.coo import coo_matrix

    rows = expand_row_indices(A)
    return coo_matrix._from_stores(rows.store, A.crd, A.vals, A.shape)


def csr_to_csc(A):
    """CSR → CSC: a global sort, run as a single gathered task.

    Format conversions that reorganize data globally are the expensive
    operations the paper warns about (§1); the single-shard launch with
    replicated inputs models exactly that gather + sort cost.
    """
    from repro.core.csc import csc_matrix

    rt = A.runtime
    n, m = A.shape
    rows = expand_row_indices(A)
    out_pos = Store.create((m, 2), np.int64, runtime=rt, name="pos")
    out_crd = Store.create((A.nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((A.nnz,), A.dtype, runtime=rt, name="vals")

    def kernel(ctx):
        r = ctx.arrays["rows"]
        c = ctx.arrays["crd"]
        v = ctx.arrays["vals"]
        order = np.lexsort((r, c))
        ctx.arrays["Ocrd"][...] = r[order]
        ctx.arrays["Ovals"][...] = v[order]
        counts = np.bincount(c, minlength=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        ctx.arrays["Opos"][:, 0] = indptr[:-1]
        ctx.arrays["Opos"][:, 1] = indptr[1:]

    def cost(ctx):
        nnz = ctx.rect("crd").volume()
        isz = A.dtype.itemsize
        return _nlogn(nnz), nnz * (32.0 + 2.0 * isz) + m * 16.0

    task = AutoTask(rt, "csr_to_csc", kernel, cost, colors=1)
    task.add_input("rows", rows.store)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_output("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    for store in (rows.store, A.crd, A.vals, out_pos, out_crd, out_vals):
        task.add_broadcast(store)
    task.execute()
    return csc_matrix._from_stores(out_pos, out_crd, out_vals, (n, m))


# ----------------------------------------------------------------------
# Row-length-sensitive formats (ELL / SELL-C-sigma / HYB)
#
# Layout decisions (widths, sigma-window permutations, spill splits) are
# computed host-side from ``pos`` — reading ``Store.data`` synchronizes
# the deferred window first — then a row-distributed task repacks the
# entries.  Every helper is explicitly robust to empty rows: widths are
# floored at one lane so no (n, 0) store is ever created, the HYB
# quantile guards a zero-nnz matrix, and zero-length packed SELL slices
# are legal, so an all-empty-rows matrix round-trips losslessly
# (tests/core/test_empty_rows.py).
# ----------------------------------------------------------------------


def _row_lengths_host(A) -> np.ndarray:
    """Per-row nonzero counts of a CSR matrix (host-side, synced)."""
    pos_host = A.pos.data
    return (pos_host[:, 1] - pos_host[:, 0]).astype(np.int64)


def _pos_store_from_lengths(rl: np.ndarray, rt) -> Tuple[Store, int]:
    """Host-built CSR ``pos`` store from per-row lengths."""
    n = rl.shape[0]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(rl, out=indptr[1:])
    pos_host = np.column_stack([indptr[:-1], indptr[1:]])
    pos = Store.create((n, 2), np.int64, data=pos_host, runtime=rt, name="pos")
    return pos, int(indptr[-1])


def csr_to_ell(A):
    """CSR -> ELL: pad every row to the global maximum length."""
    from repro.analysis.costmodel import convert_from_csr_cost
    from repro.core.ell import ell_matrix

    rt = A.runtime
    n, _m = A.shape
    rl = _row_lengths_host(A)
    width = max(1, int(rl.max()) if n else 1)
    isz = A.dtype.itemsize
    rowlen = Store.create((n,), np.int64, data=rl, runtime=rt, name="rowlen")
    data = Store.create((n, width), A.dtype, runtime=rt, name="data")
    cols = Store.create((n, width), np.int64, runtime=rt, name="cols")

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        if rhi <= rlo:
            return
        pos = ctx.arrays["pos"]
        counts = pos[rlo:rhi, 1] - pos[rlo:rhi, 0]
        d = ctx.arrays["data"]
        c = ctx.arrays["cols"]
        d[rlo:rhi] = 0
        c[rlo:rhi] = 0
        total = int(counts.sum())
        if total == 0:
            return
        idx = _concat_ranges(pos[rlo:rhi, 0], counts)
        rows = np.repeat(np.arange(rlo, rhi, dtype=np.int64), counts)
        lanes = (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(counts) - counts, counts)
        )
        d[rows, lanes] = ctx.arrays["vals"][idx]
        c[rows, lanes] = ctx.arrays["crd"][idx]

    def cost(ctx):
        rows = ctx.rect("pos").volume() // 2
        nnz = ctx.rect("crd").volume()
        return convert_from_csr_cost(rows, nnz, rows * width, isz)

    task = AutoTask(rt, "csr_to_ell", kernel, cost)
    task.add_output("data", data)
    task.add_output("cols", cols)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_alignment_constraint(data, A.pos)
    task.add_alignment_constraint(cols, A.pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.execute()
    return ell_matrix._from_stores(data, cols, rowlen, A.shape)


def ell_to_csr(B):
    """ELL -> CSR: drop the padding, keeping lane (column) order."""
    from repro.analysis.costmodel import convert_from_csr_cost
    from repro.core.csr import csr_matrix

    rt = B.runtime
    rl = B.rowlen_store.data.astype(np.int64)
    out_pos, nnz = _pos_store_from_lengths(rl, rt)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), B.dtype, runtime=rt, name="vals")
    isz = B.dtype.itemsize

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "Opos")
        if rhi <= rlo:
            return
        counts = ctx.arrays["rowlen"][rlo:rhi]
        total = int(counts.sum())
        if total == 0:
            return
        d = ctx.arrays["data"][rlo:rhi]
        c = ctx.arrays["cols"][rlo:rhi]
        mask = np.arange(d.shape[1])[None, :] < counts[:, None]
        olo = int(ctx.arrays["Opos"][rlo, 0])
        ctx.arrays["Ocrd"][olo:olo + total] = c[mask]
        ctx.arrays["Ovals"][olo:olo + total] = d[mask]

    def cost(ctx):
        rows = ctx.rect("Opos").volume() // 2
        padded = ctx.rect("data").volume()
        nnz_s = ctx.rect("Ocrd").volume()
        return convert_from_csr_cost(rows, nnz_s, padded, isz)

    task = AutoTask(rt, "ell_to_csr", kernel, cost)
    task.add_input("data", B.data_store)
    task.add_input("cols", B.cols_store)
    task.add_input("rowlen", B.rowlen_store)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(B.data_store, out_pos)
    task.add_alignment_constraint(B.cols_store, out_pos)
    task.add_alignment_constraint(B.rowlen_store, out_pos)
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()
    return csr_matrix._from_stores(out_pos, out_crd, out_vals, B.shape)


def _sell_row_partitions(rt, layout, stores):
    """Explicit per-tile partitions for SELL row-slot stores."""
    from repro.geometry import Rect
    from repro.legion.partition import ExplicitPartition

    spans = [
        (layout.boundaries[t], layout.boundaries[t + 1])
        for t in range(len(layout.boundaries) - 1)
    ]
    parts = {}
    for s in stores:
        if len(s.region.shape) == 2:
            width = s.region.shape[1]
            rects = [Rect((lo, 0), (hi, width)) for lo, hi in spans]
        else:
            rects = [Rect((lo,), (hi,)) for lo, hi in spans]
        parts[s.region.uid] = ExplicitPartition(s.region, rects)
    return parts


def _sell_pack_partitions(rt, layout, stores):
    """Explicit per-tile partitions for SELL packed-lane stores."""
    from repro.geometry import Rect
    from repro.legion.partition import ExplicitPartition

    rects = [Rect((lo,), (hi,)) for lo, hi in layout.tile_ranges]
    return {s.region.uid: ExplicitPartition(s.region, list(rects)) for s in stores}


def csr_to_sell(A, c: Optional[int] = None, sigma: Optional[int] = None):
    """CSR -> SELL-C-sigma, with sigma windows clipped to row tiles."""
    from repro.analysis.costmodel import convert_from_csr_cost
    from repro.analysis.formatsel import (
        DEFAULT_SELL_C, DEFAULT_SELL_SIGMA, sell_layout,
    )
    from repro.core.sell import sell_matrix
    from repro.legion.partition import Tiling

    rt = A.runtime
    n, _m = A.shape
    c = int(c) if c else DEFAULT_SELL_C
    sigma = int(sigma) if sigma else DEFAULT_SELL_SIGMA
    rl = _row_lengths_host(A)
    boundaries = Tiling.create_boundaries(n, rt.num_procs)
    layout = sell_layout(rl, boundaries, c, sigma)
    isz = A.dtype.itemsize

    perm = Store.create((n,), np.int64, data=layout.perm, runtime=rt, name="perm")
    rowlen = Store.create(
        (n,), np.int64, data=layout.rowlen, runtime=rt, name="rowlen"
    )
    start = Store.create(
        (n,), np.int64, data=layout.start, runtime=rt, name="start"
    )
    stride = Store.create(
        (n,), np.int64, data=layout.stride, runtime=rt, name="stride"
    )
    data = Store.create((layout.total,), A.dtype, runtime=rt, name="data")
    cols = Store.create((layout.total,), np.int64, runtime=rt, name="cols")

    def kernel(ctx):
        pr = ctx.rect("perm")
        rlo, rhi = pr.lo[0], pr.hi[0]
        dr = ctx.rect("data")
        plo, phi = dr.lo[0], dr.hi[0]
        d = ctx.arrays["data"]
        cc = ctx.arrays["cols"]
        d[plo:phi] = 0
        cc[plo:phi] = 0
        if rhi <= rlo:
            return
        p = ctx.arrays["perm"][rlo:rhi]
        rlen = ctx.arrays["rowlen"][rlo:rhi]
        st = ctx.arrays["start"][rlo:rhi]
        sd = ctx.arrays["stride"][rlo:rhi]
        total = int(rlen.sum())
        if total == 0:
            return
        k_within = (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(rlen) - rlen, rlen)
        )
        dst = np.repeat(st, rlen) + k_within * np.repeat(sd, rlen)
        src = np.repeat(ctx.arrays["pos"][p, 0], rlen) + k_within
        d[dst] = ctx.arrays["vals"][src]
        cc[dst] = ctx.arrays["crd"][src]

    def cost(ctx):
        rows = ctx.rect("perm").volume()
        nnz_s = ctx.rect("crd").volume()
        padded = ctx.rect("data").volume()
        return convert_from_csr_cost(rows, nnz_s, padded, isz)

    task = AutoTask(rt, "csr_to_sell", kernel, cost)
    task.add_output("data", data)
    task.add_output("cols", cols)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_input("perm", perm)
    task.add_input("rowlen", rowlen)
    task.add_input("start", start)
    task.add_input("stride", stride)
    row_parts = _sell_row_partitions(rt, layout, [perm, rowlen, start, stride, A.pos])
    pack_parts = _sell_pack_partitions(rt, layout, [data, cols])
    for store in (perm, rowlen, start, stride, A.pos):
        task.add_explicit_partition(store, row_parts[store.region.uid])
    for store in (data, cols):
        task.add_explicit_partition(store, pack_parts[store.region.uid])
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.execute()
    return sell_matrix._from_stores(
        data, cols, perm, rowlen, start, stride, A.shape,
        c=c, sigma=sigma, layout=layout,
    )


def sell_to_csr(B):
    """SELL-C-sigma -> CSR: undo the slot permutation and padding."""
    from repro.analysis.costmodel import convert_from_csr_cost
    from repro.core.csr import csr_matrix

    rt = B.runtime
    n, _m = B.shape
    layout = B.layout
    rl_slot = B.rowlen_store.data.astype(np.int64)
    perm_host = B.perm_store.data.astype(np.int64)
    rl = np.empty(n, dtype=np.int64)
    rl[perm_host] = rl_slot
    out_pos, nnz = _pos_store_from_lengths(rl, rt)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), B.dtype, runtime=rt, name="vals")
    isz = B.dtype.itemsize

    def kernel(ctx):
        pr = ctx.rect("perm")
        rlo, rhi = pr.lo[0], pr.hi[0]
        if rhi <= rlo:
            return
        order = np.argsort(ctx.arrays["perm"][rlo:rhi], kind="stable")
        rlen = ctx.arrays["rowlen"][rlo:rhi][order]
        st = ctx.arrays["start"][rlo:rhi][order]
        sd = ctx.arrays["stride"][rlo:rhi][order]
        total = int(rlen.sum())
        if total == 0:
            return
        k_within = (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(rlen) - rlen, rlen)
        )
        idx = np.repeat(st, rlen) + k_within * np.repeat(sd, rlen)
        olo = int(ctx.arrays["Opos"][rlo, 0])
        ctx.arrays["Ocrd"][olo:olo + total] = ctx.arrays["cols"][idx]
        ctx.arrays["Ovals"][olo:olo + total] = ctx.arrays["data"][idx]

    def cost(ctx):
        rows = ctx.rect("perm").volume()
        padded = ctx.rect("data").volume()
        nnz_s = ctx.rect("Ocrd").volume()
        return convert_from_csr_cost(rows, nnz_s, padded, isz)

    task = AutoTask(rt, "sell_to_csr", kernel, cost)
    task.add_input("data", B.data_store)
    task.add_input("cols", B.cols_store)
    task.add_input("perm", B.perm_store)
    task.add_input("rowlen", B.rowlen_store)
    task.add_input("start", B.start_store)
    task.add_input("stride", B.stride_store)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    row_parts = _sell_row_partitions(
        rt, layout,
        [B.perm_store, B.rowlen_store, B.start_store, B.stride_store, out_pos],
    )
    pack_parts = _sell_pack_partitions(rt, layout, [B.data_store, B.cols_store])
    for store in (
        B.perm_store, B.rowlen_store, B.start_store, B.stride_store, out_pos
    ):
        task.add_explicit_partition(store, row_parts[store.region.uid])
    for store in (B.data_store, B.cols_store):
        task.add_explicit_partition(store, pack_parts[store.region.uid])
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()
    return csr_matrix._from_stores(out_pos, out_crd, out_vals, B.shape)


def csr_to_hyb(A, quantile: Optional[float] = None):
    """CSR -> HYB: ELL part at a row-length quantile, CSR-style spill."""
    from repro.analysis.costmodel import convert_from_csr_cost
    from repro.analysis.formatsel import DEFAULT_HYB_QUANTILE, hyb_ell_width
    from repro.core.hyb import hyb_matrix

    rt = A.runtime
    n, _m = A.shape
    quantile = quantile if quantile is not None else DEFAULT_HYB_QUANTILE
    rl = _row_lengths_host(A)
    K = hyb_ell_width(rl, quantile)
    spill_counts = np.maximum(rl - K, 0)
    sindptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(spill_counts, out=sindptr[1:])
    snnz = int(sindptr[-1])
    isz = A.dtype.itemsize

    rowlen = Store.create((n,), np.int64, data=rl, runtime=rt, name="rowlen")
    data = Store.create((n, K), A.dtype, runtime=rt, name="data")
    cols = Store.create((n, K), np.int64, runtime=rt, name="cols")
    spill_pos = Store.create(
        (n, 2), np.int64,
        data=np.column_stack([sindptr[:-1], sindptr[1:]]),
        runtime=rt, name="spill_pos",
    )
    spill_crd = Store.create((snnz,), np.int64, runtime=rt, name="spill_crd")
    spill_vals = Store.create((snnz,), A.dtype, runtime=rt, name="spill_vals")

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "pos")
        if rhi <= rlo:
            return
        pos = ctx.arrays["pos"]
        counts = pos[rlo:rhi, 1] - pos[rlo:rhi, 0]
        d = ctx.arrays["data"]
        c = ctx.arrays["cols"]
        d[rlo:rhi] = 0
        c[rlo:rhi] = 0
        width = d.shape[1]
        ell_n = np.minimum(counts, width)
        sp_n = counts - ell_n
        total_e = int(ell_n.sum())
        if total_e:
            rows = np.repeat(np.arange(rlo, rhi, dtype=np.int64), ell_n)
            lanes = (
                np.arange(total_e, dtype=np.int64)
                - np.repeat(np.cumsum(ell_n) - ell_n, ell_n)
            )
            src = np.repeat(pos[rlo:rhi, 0], ell_n) + lanes
            d[rows, lanes] = ctx.arrays["vals"][src]
            c[rows, lanes] = ctx.arrays["crd"][src]
        nsp = int(sp_n.sum())
        if nsp:
            k_within = (
                np.arange(nsp, dtype=np.int64)
                - np.repeat(np.cumsum(sp_n) - sp_n, sp_n)
            )
            src = np.repeat(pos[rlo:rhi, 0] + ell_n, sp_n) + k_within
            dst = np.repeat(ctx.arrays["spill_pos"][rlo:rhi, 0], sp_n) + k_within
            ctx.arrays["spill_crd"][dst] = ctx.arrays["crd"][src]
            ctx.arrays["spill_vals"][dst] = ctx.arrays["vals"][src]

    def cost(ctx):
        rows = ctx.rect("pos").volume() // 2
        nnz_s = ctx.rect("crd").volume()
        out_entries = rows * K + ctx.rect("spill_crd").volume()
        return convert_from_csr_cost(rows, nnz_s, out_entries, isz)

    task = AutoTask(rt, "csr_to_hyb", kernel, cost)
    task.add_output("data", data)
    task.add_output("cols", cols)
    task.add_output("spill_crd", spill_crd)
    task.add_output("spill_vals", spill_vals)
    task.add_input("pos", A.pos)
    task.add_input("crd", A.crd)
    task.add_input("vals", A.vals)
    task.add_input("spill_pos", spill_pos)
    task.add_alignment_constraint(data, A.pos)
    task.add_alignment_constraint(cols, A.pos)
    task.add_alignment_constraint(spill_pos, A.pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(
        spill_pos, [spill_crd, spill_vals], kind="range"
    )
    task.execute()
    return hyb_matrix._from_stores(
        data, cols, rowlen, spill_pos, spill_crd, spill_vals, A.shape
    )


def hyb_to_csr(B):
    """HYB -> CSR: interleave the ELL part and the spill per row."""
    from repro.analysis.costmodel import convert_from_csr_cost
    from repro.core.csr import csr_matrix

    rt = B.runtime
    rl = B.rowlen_store.data.astype(np.int64)
    out_pos, nnz = _pos_store_from_lengths(rl, rt)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), B.dtype, runtime=rt, name="vals")
    isz = B.dtype.itemsize

    def kernel(ctx):
        rlo, rhi = _shard_rows(ctx, "Opos")
        if rhi <= rlo:
            return
        counts = ctx.arrays["rowlen"][rlo:rhi]
        total = int(counts.sum())
        if total == 0:
            return
        d = ctx.arrays["data"][rlo:rhi]
        c = ctx.arrays["cols"][rlo:rhi]
        width = d.shape[1]
        ell_n = np.minimum(counts, width)
        sp_n = counts - ell_n
        base = ctx.arrays["Opos"][rlo:rhi, 0]
        mask = np.arange(width)[None, :] < ell_n[:, None]
        total_e = int(ell_n.sum())
        if total_e:
            lanes = (
                np.arange(total_e, dtype=np.int64)
                - np.repeat(np.cumsum(ell_n) - ell_n, ell_n)
            )
            dst = np.repeat(base, ell_n) + lanes
            ctx.arrays["Ocrd"][dst] = c[mask]
            ctx.arrays["Ovals"][dst] = d[mask]
        nsp = int(sp_n.sum())
        if nsp:
            k_within = (
                np.arange(nsp, dtype=np.int64)
                - np.repeat(np.cumsum(sp_n) - sp_n, sp_n)
            )
            src = np.repeat(ctx.arrays["spill_pos"][rlo:rhi, 0], sp_n) + k_within
            dst = np.repeat(base + ell_n, sp_n) + k_within
            ctx.arrays["Ocrd"][dst] = ctx.arrays["spill_crd"][src]
            ctx.arrays["Ovals"][dst] = ctx.arrays["spill_vals"][src]

    def cost(ctx):
        rows = ctx.rect("Opos").volume() // 2
        padded = ctx.rect("data").volume()
        nnz_s = ctx.rect("Ocrd").volume()
        return convert_from_csr_cost(rows, nnz_s, padded, isz)

    task = AutoTask(rt, "hyb_to_csr", kernel, cost)
    task.add_input("data", B.data_store)
    task.add_input("cols", B.cols_store)
    task.add_input("rowlen", B.rowlen_store)
    task.add_input("spill_pos", B.spill_pos_store)
    task.add_input("spill_crd", B.spill_crd_store)
    task.add_input("spill_vals", B.spill_vals_store)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(B.data_store, out_pos)
    task.add_alignment_constraint(B.cols_store, out_pos)
    task.add_alignment_constraint(B.rowlen_store, out_pos)
    task.add_alignment_constraint(B.spill_pos_store, out_pos)
    task.add_image_constraint(
        B.spill_pos_store, [B.spill_crd_store, B.spill_vals_store],
        kind="range",
    )
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()
    return csr_matrix._from_stores(out_pos, out_crd, out_vals, B.shape)


# ----------------------------------------------------------------------
# SpGEMM (two-pass row-split)
# ----------------------------------------------------------------------
def csr_spgemm(A, B):
    """C = A @ B for CSR operands: symbolic counts, scan, numeric fill."""
    from repro.core.csr import csr_matrix

    if A.shape[1] != B.shape[0]:
        raise ValueError(f"dimension mismatch: {A.shape} @ {B.shape}")
    rt = A.runtime
    if B.pos.region.uid == A.pos.region.uid:
        # A @ A: the shared pos store would be both row-aligned (as A's)
        # and an image destination (as B's); clone B's structure.
        rt.barrier()
        B = csr_matrix._from_stores(
            Store.create(B.pos.shape, np.int64, data=B.pos.data.copy(), runtime=rt, name="pos"),
            Store.create(B.crd.shape, np.int64, data=B.crd.data.copy(), runtime=rt, name="crd"),
            B.vals,
            B.shape,
        )
    out_dtype = np.result_type(A.dtype, B.dtype)
    n = A.shape[0]

    def _expand_product(ctx):
        rlo, rhi = _shard_rows(ctx, "Apos")
        rows_a, acols, ajlo, ajhi = _expand(ctx.arrays["Apos"], ctx.arrays["Acrd"], rlo, rhi)
        if ajhi <= ajlo:
            return rlo, rhi, None
        bpos = ctx.arrays["Bpos"]
        blo = bpos[acols, 0]
        blen = bpos[acols, 1] - blo
        cat = _concat_ranges(blo, blen)
        rows = np.repeat(rows_a, blen)
        cols = ctx.arrays["Bcrd"][cat]
        return rlo, rhi, (rows, cols, cat, blen, ajlo, ajhi)

    counts = rnp.empty(n, dtype=np.int64)

    def count_kernel(ctx):
        rlo, rhi, expansion = _expand_product(ctx)
        if rhi <= rlo:
            return
        if expansion is None:
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        rows, cols = expansion[0], expansion[1]
        if not len(rows):
            ctx.arrays["counts"][rlo:rhi] = 0
            return
        order = np.lexsort((cols, rows))
        rs, cs = rows[order], cols[order]
        fresh = np.empty(len(rs), dtype=bool)
        fresh[0] = True
        fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        ctx.arrays["counts"][rlo:rhi] = np.bincount(rs[fresh] - rlo, minlength=rhi - rlo)

    def count_cost(ctx):
        work = ctx.rect("Acrd").volume() * 8.0  # expansion estimate
        return _nlogn(work), work * 16.0

    task = AutoTask(rt, "spgemm_count", count_kernel, count_cost)
    task.add_output("counts", counts.store)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_alignment_constraint(counts.store, A.pos)
    task.add_image_constraint(A.pos, A.crd, kind="range")
    task.add_image_constraint(A.crd, B.pos, kind="coordinate")
    task.add_image_constraint(B.pos, B.crd, kind="range")
    task.execute()

    out_pos, nnz = _pos_from_counts(counts)
    out_crd = Store.create((nnz,), np.int64, runtime=rt, name="crd")
    out_vals = Store.create((nnz,), out_dtype, runtime=rt, name="vals")

    def fill_kernel(ctx):
        rlo, rhi, expansion = _expand_product(ctx)
        if rhi <= rlo or expansion is None:
            return
        rows, cols, cat, blen, ajlo, ajhi = expansion
        if not len(rows):
            return
        va = np.repeat(ctx.arrays["Avals"][ajlo:ajhi], blen).astype(out_dtype, copy=False)
        vb = ctx.arrays["Bvals"][cat].astype(out_dtype, copy=False)
        vals = va * vb
        order = np.lexsort((cols, rows))
        rs, cs, vs = rows[order], cols[order], vals[order]
        fresh = np.empty(len(rs), dtype=bool)
        fresh[0] = True
        fresh[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        starts = np.flatnonzero(fresh)
        merged = np.add.reduceat(vs, starts)
        opos = ctx.arrays["Opos"]
        olo, ohi = int(opos[rlo, 0]), int(opos[rhi - 1, 1])
        ctx.arrays["Ocrd"][olo:ohi] = cs[fresh]
        ctx.arrays["Ovals"][olo:ohi] = merged

    def fill_cost(ctx):
        work = ctx.rect("Acrd").volume() * 8.0
        isz = out_dtype.itemsize
        return _nlogn(work) + work, work * (16.0 + 2.0 * isz)

    task = AutoTask(rt, "spgemm_fill", fill_kernel, fill_cost)
    task.add_input("Apos", A.pos)
    task.add_input("Acrd", A.crd)
    task.add_input("Avals", A.vals)
    task.add_input("Bpos", B.pos)
    task.add_input("Bcrd", B.crd)
    task.add_input("Bvals", B.vals)
    task.add_input("Opos", out_pos)
    task.add_output("Ocrd", out_crd)
    task.add_output("Ovals", out_vals)
    task.add_alignment_constraint(A.pos, out_pos)
    task.add_image_constraint(A.pos, [A.crd, A.vals], kind="range")
    task.add_image_constraint(A.crd, B.pos, kind="coordinate")
    task.add_image_constraint(B.pos, [B.crd, B.vals], kind="range")
    task.add_image_constraint(out_pos, [out_crd, out_vals], kind="range")
    task.execute()

    from repro.core.csr import csr_matrix

    return csr_matrix._from_stores(out_pos, out_crd, out_vals, (n, B.shape[1]))
