"""COO matrices: coordinate lists, the assembly and interchange format."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.constraints import Store
from repro.core import validation
from repro.core.base import spmatrix
from repro.distal.formats import COO
from repro.distal.registry import get_registry, launch
from repro.legion.runtime import get_runtime
from repro.numeric.array import ndarray


class coo_matrix(spmatrix):
    """Coordinate-format matrix (row/col/vals regions)."""
    format = "coo"

    def __init__(self, arg1, shape=None, dtype=None):
        from repro.core.csr import _canonicalize_coo, _is_scipy_sparse

        if isinstance(arg1, spmatrix):
            src = arg1.tocoo()
            spmatrix.__init__(self, src.shape, dtype or src.dtype)
            self.row_store, self.col_store = src.row_store, src.col_store
            self.vals = (
                src.vals
                if src.dtype == self._dtype
                else ndarray(src.vals).astype(self._dtype).store
            )
            return
        if _is_scipy_sparse(arg1):
            coo = arg1.tocoo()
            self._init_from_host(coo.row, coo.col, coo.data, coo.shape, dtype)
            return
        if isinstance(arg1, np.ndarray) and arg1.ndim == 2:
            r, c = np.nonzero(arg1)
            self._init_from_host(r, c, arg1[r, c], arg1.shape, dtype)
            return
        if isinstance(arg1, tuple) and len(arg1) == 2 and np.ndim(arg1[0]) == 0:
            n, m = int(arg1[0]), int(arg1[1])
            empty = np.empty(0, np.int64)
            self._init_from_host(empty, empty, np.empty(0, dtype or np.float64), (n, m), dtype)
            return
        if isinstance(arg1, tuple) and len(arg1) == 2:
            data, (row, col) = arg1
            data, row, col = validation.check_coo_host(data, row, col, shape)
            if shape is None:
                shape = (
                    int(row.max()) + 1 if len(row) else 0,
                    int(col.max()) + 1 if len(col) else 0,
                )
            self._init_from_host(row, col, data, shape, dtype)
            return
        raise TypeError(f"cannot construct coo_matrix from {type(arg1).__name__}")

    def _init_from_host(self, row, col, data, shape, dtype):
        # Validate before canonicalizing: a negative row index would
        # silently corrupt the np.add.at scatter downstream.
        data, row, col = validation.check_coo_host(data, row, col, shape)
        order = np.lexsort((col, row))
        row, col, data = row[order], col[order], data[order]
        if len(row):
            fresh = np.empty(len(row), dtype=bool)
            fresh[0] = True
            fresh[1:] = (row[1:] != row[:-1]) | (col[1:] != col[:-1])
            if not fresh.all():
                starts = np.flatnonzero(fresh)
                data = np.add.reduceat(data, starts)
                row, col = row[starts], col[starts]
        final_dtype = np.dtype(dtype) if dtype is not None else data.dtype
        if final_dtype.kind not in "fc":
            final_dtype = np.float64
        spmatrix.__init__(self, shape, final_dtype)
        rt = self._runtime
        nnz = len(row)
        self.row_store = Store.create((nnz,), np.int64, data=row, runtime=rt, name="row")
        self.col_store = Store.create((nnz,), np.int64, data=col, runtime=rt, name="col")
        self.vals = Store.create(
            (nnz,), final_dtype, data=data.astype(final_dtype), runtime=rt, name="vals"
        )

    @classmethod
    def _from_stores(cls, row, col, vals, shape) -> "coo_matrix":
        obj = cls.__new__(cls)
        spmatrix.__init__(obj, shape, vals.dtype)
        obj.row_store, obj.col_store, obj.vals = row, col, vals
        return obj

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return self.vals.shape[0]

    @property
    def row(self) -> np.ndarray:
        """Host copy of the row-coordinate array."""
        self._runtime.barrier()
        return self.row_store.data.copy()

    @property
    def col(self) -> np.ndarray:
        """Host copy of the column-coordinate array."""
        self._runtime.barrier()
        return self.col_store.data.copy()

    @property
    def data(self) -> ndarray:
        """The values as a dense repro.numeric array (shared)."""
        return ndarray(self.vals)

    def _proc_kind(self):
        return self._runtime.scope.kind

    # ------------------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        out_dtype = np.result_type(self.dtype, x.dtype)
        vals = self.vals
        if out_dtype != self.dtype:
            vals = ndarray(self.vals).astype(out_dtype).store
        y = rnp.zeros(self.shape[0], dtype=out_dtype)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", COO, self._proc_kind())
        launch(
            spec,
            self._runtime,
            {
                "y": y.store,
                "row": self.row_store,
                "col": self.col_store,
                "vals": vals,
                "x": x.store,
            },
        )
        return y

    def _rmatvec(self, x: ndarray) -> ndarray:
        return self.transpose()._matvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        return self.tocsr()._matmat(X)

    # ------------------------------------------------------------------
    def transpose(self) -> "coo_matrix":
        """Free transpose: swap the coordinate stores."""
        return coo_matrix._from_stores(
            self.col_store, self.row_store, self.vals, (self.shape[1], self.shape[0])
        )

    def tocoo(self) -> "coo_matrix":
        """Identity."""
        return self

    def tocsr(self):
        """To CSR; shares arrays when already row-major sorted."""
        from repro.core.csr import csr_matrix

        self._runtime.barrier()
        row = self.row_store.data
        col = self.col_store.data
        if _is_row_major_sorted(row, col):
            # Already canonical: build pos from counts, share crd/vals.
            indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
            np.add.at(indptr, row + 1, 1)
            np.cumsum(indptr, out=indptr)
            pos = Store.create(
                (self.shape[0], 2),
                np.int64,
                data=np.ascontiguousarray(np.stack([indptr[:-1], indptr[1:]], axis=1)),
                runtime=self._runtime,
                name="pos",
            )
            result = csr_matrix._from_stores(pos, self.col_store, self.vals, self.shape)
        else:
            result = csr_matrix(
                (self.vals.data.copy(), (row.copy(), col.copy())),
                shape=self.shape,
                dtype=self.dtype,
            )
        self._note_convert("csr", result)
        return result

    def todia(self):
        """Host conversion to diagonal storage."""
        from repro.core.dia import dia_matrix

        self._runtime.barrier()
        row, col = self.row_store.data, self.col_store.data
        offsets = np.unique(col - row) if len(row) else np.array([0], np.int64)
        n = self.shape[0]
        data_t = np.zeros((n, len(offsets)), dtype=self.dtype)
        dmap = {int(off): d for d, off in enumerate(offsets)}
        for r, c, v in zip(row, col, self.vals.data):
            data_t[r, dmap[int(c - r)]] = v
        result = dia_matrix._from_host_arrays(
            data_t, offsets.astype(np.int64), self.shape
        )
        self._note_convert("dia", result)
        return result

    def toarray(self) -> np.ndarray:
        """Synchronize and densify."""
        self._note_densify("coo.toarray")
        self._runtime.barrier()
        out = np.zeros(self.shape, dtype=self.dtype)
        # Canonical: no duplicates.
        out[self.row_store.data, self.col_store.data] = self.vals.data
        return out

    todense = toarray

    # ------------------------------------------------------------------
    def _with_values(self, vals: ndarray) -> "coo_matrix":
        return coo_matrix._from_stores(
            self.row_store, self.col_store, vals.store, self.shape
        )

    def _scale(self, alpha) -> "coo_matrix":
        return self._with_values(self.data * alpha)

    def _unary_values(self, fn) -> "coo_matrix":
        return self._with_values(fn(self.data))

    def copy(self) -> "coo_matrix":
        """A value-copying duplicate sharing structure."""
        return self._with_values(self.data.copy())

    def astype(self, dtype) -> "coo_matrix":
        """A cast copy of the values."""
        return self._with_values(self.data.astype(dtype))

    def conj(self) -> "coo_matrix":
        """Complex conjugate of the values."""
        if self.dtype.kind != "c":
            return self.copy()
        return self._with_values(self.data.conj())

    conjugate = conj


def _is_row_major_sorted(row: np.ndarray, col: np.ndarray) -> bool:
    if len(row) < 2:
        return True
    rd = np.diff(row)
    if (rd < 0).any():
        return False
    same = rd == 0
    return not (np.diff(col)[same] <= 0).any()


coo_array = coo_matrix
