"""The sparse matrix base class: shared behaviour and dispatch.

Follows ``scipy.sparse.spmatrix`` semantics: ``*`` is matrix
multiplication, ``A.multiply(B)`` is element-wise, ``A @ x`` works with
:mod:`repro.numeric` arrays and returns them.  Format classes implement
the small abstract surface (`_matvec`, conversions); everything else —
operator dispatch, scalar algebra via the dense library, reductions —
lives here and is inherited, mirroring how the paper *ported* most of
the SciPy API onto a handful of generated kernels (§5.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.numeric as rnp
from repro.legion.runtime import Runtime, get_runtime
from repro.numeric.array import Scalar, is_scalar_like, ndarray


def issparse(x) -> bool:
    """True for this package's sparse matrices."""
    return isinstance(x, spmatrix)


class spmatrix:
    """Abstract distributed sparse matrix."""

    format: str = "base"

    def __init__(self, shape: Tuple[int, int], dtype):
        self._shape = (int(shape[0]), int(shape[1]))
        self._dtype = np.dtype(dtype)
        self._runtime: Runtime = get_runtime()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape (rows, cols)."""
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        """Value dtype."""
        return self._dtype

    @property
    def ndim(self) -> int:
        """Always 2."""
        return 2

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        raise NotImplementedError

    def getnnz(self) -> int:
        """Number of stored entries (method form)."""
        return self.nnz

    @property
    def runtime(self) -> Runtime:
        """The runtime this matrix belongs to."""
        return self._runtime

    def _advisor_note(self, category: str, **info) -> None:
        """Annotate an advisor plan trace, when one is capturing.

        Format classes call this at densification and conversion sites;
        with no trace attached it is a single attribute check.
        """
        plan = getattr(self._runtime, "plan_trace", None)
        if plan is not None:
            plan.record_note(category, **info)

    def _note_densify(self, where: str) -> None:
        rows, cols = self.shape
        self._advisor_note(
            "densify",
            where=where,
            fmt=self.format,
            shape=self.shape,
            nbytes=rows * cols * self.dtype.itemsize,
        )

    def _note_convert(self, dst_fmt: str, result=None) -> None:
        self._advisor_note(
            "convert",
            src_fmt=self.format,
            dst_fmt=dst_fmt,
            src_id=id(self),
            dst_id=None if result is None else id(result),
            nbytes=self.nnz * self.dtype.itemsize,
        )

    # -- conversions (each format implements tocoo + tocsr) -------------
    def tocoo(self):
        """Convert to COO."""
        raise NotImplementedError

    def tocsr(self):
        """Convert to CSR."""
        raise NotImplementedError

    def tocsc(self):
        """Convert to CSC (through CSR)."""
        return self.tocsr().tocsc()

    def todia(self):
        """Convert to DIA (through COO)."""
        return self.tocoo().todia()

    def toell(self):
        """Convert to ELL (through CSR)."""
        return self.tocsr().toell()

    def tosell(self, c: Optional[int] = None, sigma: Optional[int] = None):
        """Convert to SELL-C-sigma (through CSR)."""
        return self.tocsr().tosell(c=c, sigma=sigma)

    def tohyb(self, quantile: Optional[float] = None):
        """Convert to HYB (through CSR)."""
        return self.tocsr().tohyb(quantile=quantile)

    def asformat(self, fmt: str):
        """Convert to the named format (no-op if already)."""
        if fmt == self.format:
            return self
        return getattr(self, f"to{fmt}")()

    def toarray(self) -> np.ndarray:
        """Synchronize and densify to a host NumPy array."""
        return self.tocoo().toarray()

    todense = toarray

    def copy(self):
        """A value-copying duplicate (structure shared)."""
        raise NotImplementedError

    def astype(self, dtype):
        """A cast copy of the values."""
        raise NotImplementedError

    def conj(self):
        """Complex conjugate of the values."""
        raise NotImplementedError

    conjugate = conj

    # -- structure queries ----------------------------------------------
    def diagonal(self, k: int = 0) -> ndarray:
        """The main diagonal as a distributed vector."""
        if k != 0:
            raise NotImplementedError("only the main diagonal is supported")
        return self.tocsr().diagonal()

    def sum(self, axis: Optional[int] = None):
        """Sum of all entries, or per-axis sums."""
        return self.tocsr().sum(axis=axis)

    def mean(self, axis: Optional[int] = None):
        """Mean over all positions (zeros included), or per axis."""
        total = self.sum(axis=axis)
        if axis is None:
            return total / (self.shape[0] * self.shape[1])
        return total / self.shape[axis]

    @property
    def T(self):
        """Transpose (free for CSR<->CSC and COO)."""
        return self.transpose()

    def transpose(self):
        """Transpose (free for CSR<->CSC and COO)."""
        raise NotImplementedError

    @property
    def H(self):
        """Conjugate transpose."""
        return self.conj().transpose()

    # -- products ---------------------------------------------------------
    def _matvec(self, x: ndarray) -> ndarray:
        raise NotImplementedError

    def _rmatvec(self, x: ndarray) -> ndarray:
        """x @ A, i.e. A.T @ x."""
        return self.transpose()._matvec(x)

    def _matmat(self, X: ndarray) -> ndarray:
        raise NotImplementedError

    def dot(self, other):
        """Matrix product (``A @ other``)."""
        return self @ other

    def __matmul__(self, other):
        if isinstance(other, ndarray):
            if other.ndim == 1:
                if other.shape[0] != self.shape[1]:
                    raise ValueError(
                        f"dimension mismatch: {self.shape} @ {other.shape}"
                    )
                return self._matvec(other)
            if other.shape[0] != self.shape[1]:
                raise ValueError(f"dimension mismatch: {self.shape} @ {other.shape}")
            return self._matmat(other)
        if isinstance(other, np.ndarray):
            return self @ rnp.array(other)
        if issparse(other):
            return self._matmat_sparse(other)
        return NotImplemented

    def __rmatmul__(self, other):
        if isinstance(other, ndarray) and other.ndim == 1:
            return self._rmatvec(other)
        if isinstance(other, np.ndarray) and other.ndim == 1:
            return self._rmatvec(rnp.array(other))
        return NotImplemented

    def _matmat_sparse(self, other: "spmatrix"):
        return self.tocsr()._matmat_sparse(other)

    # -- scipy.sparse "matrix" semantics: * is matmul --------------------
    def __mul__(self, other):
        if is_scalar_like(other):
            return self._scale(other)
        return self.__matmul__(other)

    def __rmul__(self, other):
        if is_scalar_like(other):
            return self._scale(other)
        return self.__rmatmul__(other)

    def __truediv__(self, other):
        if isinstance(other, Scalar):
            return self._scale(Scalar(other.future.map(lambda v: 1.0 / v), other.runtime))
        if is_scalar_like(other):
            return self._scale(1.0 / other)
        return NotImplemented

    def __neg__(self):
        return self._scale(-1.0)

    def _scale(self, alpha):
        raise NotImplementedError

    # -- element-wise algebra ---------------------------------------------
    def __add__(self, other):
        if issparse(other):
            return self.tocsr()._add_sparse(other.tocsr(), 1.0)
        if isinstance(other, (ndarray, np.ndarray)) and np.ndim(other) == 2:
            return self.tocsr()._add_dense(other)
        if is_scalar_like(other) and not isinstance(other, Scalar) and other == 0:
            return self.copy()
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if issparse(other):
            return self.tocsr()._add_sparse(other.tocsr(), -1.0)
        return NotImplemented

    def __rsub__(self, other):
        if issparse(other):
            return other.tocsr()._add_sparse(self.tocsr(), -1.0)
        return NotImplemented

    def multiply(self, other):
        """Element-wise (Hadamard) product."""
        if is_scalar_like(other):
            return self._scale(other)
        if issparse(other):
            return self.tocsr()._multiply_sparse(other.tocsr())
        if isinstance(other, (ndarray, np.ndarray)):
            return self.tocsr()._multiply_dense(other)
        return NotImplemented

    def maximum(self, other):
        """Element-wise maximum on the structural union."""
        if issparse(other):
            return self.tocsr()._binary_union(other.tocsr(), "maximum")
        return NotImplemented

    def minimum(self, other):
        """Element-wise minimum on the structural union."""
        if issparse(other):
            return self.tocsr()._binary_union(other.tocsr(), "minimum")
        return NotImplemented

    def power(self, n):
        """Element-wise power of the stored values."""
        return self._unary_values(lambda v: v**n)

    def _unary_values(self, fn):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.shape[0]}x{self.shape[1]} sparse matrix of type {self.dtype} "
            f"with {self.nnz} stored elements in {self.format.upper()} format>"
        )
