"""Automatic task fusion: planning and merging for the deferred window.

The paper attributes Legate Sparse's single-GPU losses on GMG and the
quantum workload to per-task launch overhead and names task fusion as
the fix (§6.1); the Diffuse follow-up shows the mechanism: buffer
launches in a *deferred window* and merge compatible runs into one task.
This module is that mechanism, shared by two consumers:

* :class:`repro.legion.runtime.Runtime` buffers fusible
  :class:`~repro.legion.task.TaskLaunch` objects and, at each flush,
  calls :func:`plan_window` to partition the window into groups and
  :func:`fuse` to merge each multi-launch group;
* the static advisor (:mod:`repro.analysis.advisor`) simulates the same
  window over a recorded plan and calls the same :func:`plan_window`, so
  its "fusible" predictions agree *exactly* with what the runtime does
  (``tests/analysis/test_fusion_agreement.py``).

Legality rules (checked structurally, per window):

1. Only launches tagged :class:`~repro.legion.task.Pointwise` with no
   scalar reduction participate; everything else flushes the window.
2. Within a group, every tiled requirement shares identical tile
   boundaries (alignment-compatible partitions: shard *i* of every
   sub-launch touches the same rows) and every launch has the same
   color count.
3. Writes go through tilings only, and a replicated (broadcast) read is
   admitted only for regions no launch in the group writes — otherwise
   per-shard sub-launch ordering would observe partial updates and the
   fused result would not be bitwise identical to the unfused chain.
4. No REDUCE privileges (folds have cross-shard structure).

The fused kernel replays each sub-launch's kernel, in issue order, on
per-shard sub-contexts — the same NumPy ops in the same order per
shard, so numerics are bitwise identical.  Temporaries whose first
access in the group is WRITE_DISCARD and that are read again inside the
group are *elided*: their requirements are marked
:attr:`~repro.legion.task.Requirement.elide` and the runtime skips
instance allocation and staging for them (no coherence traffic, no halo
staging; the temporary never exists as a mapped instance).

Everything here is deterministic and depends only on window *structure*
(names, colors, privileges, partition boundaries, and which arguments
share a region), so plans are memoizable: :func:`signature` renumbers
regions by first occurrence, and two windows with equal signatures get
byte-identical plans — how fusion decisions are memoized per captured
trace (:mod:`repro.legion.tracing`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.legion.partition import Replicate, Tiling
from repro.legion.privilege import Privilege
from repro.legion.task import Pointwise, Requirement, ShardContext, TaskLaunch

#: Fused task names longer than this are abbreviated (they appear in
#: traces and profiles; determinism matters, brevity helps).
MAX_FUSED_NAME = 96


@dataclass(frozen=True)
class Access:
    """One requirement of a summarized launch, structurally described."""

    region: object  # Region (kept for uid/name; compared by uid only)
    part_kind: str  # "tile" | "rep" | "other"
    boundaries: Optional[Tuple[int, ...]]
    privilege: Privilege
    # Requirement name within the launch.  The dependence analyzer
    # (repro.analysis.depend) resolves Pointwise.expr loads/out against
    # it; "" (the default, for hand-built summaries) simply leaves the
    # kernel opaque.
    name: str = ""


@dataclass(frozen=True)
class LaunchSummary:
    """What the fusion planner needs to know about one launch."""

    name: str
    colors: int
    fusible: bool
    accesses: Tuple[Access, ...]
    # The launch's Pointwise marker (carrying the optional body IR the
    # dependence analyzer classifies).  None on hand-built summaries —
    # treated as an opaque kernel (task-fusible, never body-merged).
    pointwise: Optional[Pointwise] = None


@dataclass(frozen=True)
class GroupPlan:
    """One planned group: window indices + elided local region ids."""

    indices: Tuple[int, ...]
    elide: frozenset  # local region ids (see local_ids)

    @property
    def fused(self) -> bool:
        return len(self.indices) > 1


def summarize(
    name: str,
    colors: int,
    accesses: Iterable[Tuple[object, object, object, Privilege]],
    pointwise: Optional[Pointwise] = None,
    reduction: Optional[str] = None,
) -> LaunchSummary:
    """Summarize a launch from ``(req_name, region, partition,
    privilege)`` tuples."""
    out: List[Access] = []
    ok = pointwise is not None and reduction is None
    for req_name, region, partition, privilege in accesses:
        if isinstance(partition, Tiling):
            out.append(
                Access(region, "tile", partition.boundaries, privilege, req_name)
            )
        elif isinstance(partition, Replicate):
            out.append(Access(region, "rep", None, privilege, req_name))
            if privilege.writes:
                ok = False
        else:
            out.append(Access(region, "other", None, privilege, req_name))
            ok = False
    return LaunchSummary(name, int(colors), ok, tuple(out), pointwise)


def summarize_launch(task: TaskLaunch) -> LaunchSummary:
    """Summarize a concrete :class:`TaskLaunch`."""
    return summarize(
        task.name,
        task.color_count,
        ((r.name, r.region, r.partition, r.privilege) for r in task.requirements),
        pointwise=task.pointwise,
        reduction=task.reduction,
    )


def fusible(task: TaskLaunch) -> bool:
    """Whether a launch may enter the deferred window at all."""
    return summarize_launch(task).fusible


def local_ids(summaries: Sequence[LaunchSummary]) -> Dict[int, int]:
    """Region uid -> first-occurrence index within the window.

    The renumbering is what makes plans structural: two windows that
    touch different regions in the same pattern get the same signature
    and therefore the same (cached) plan.
    """
    ids: Dict[int, int] = {}
    for summary in summaries:
        for acc in summary.accesses:
            uid = acc.region.uid
            if uid not in ids:
                ids[uid] = len(ids)
    return ids


def ir_key(pointwise: Optional[Pointwise]) -> Optional[tuple]:
    """A hashable key of a launch's body IR (None when opaque).

    Part of the window signature: two structurally identical windows
    whose kernels compute different expressions must not share a cached
    merge verdict or generated nest.
    """
    if pointwise is None:
        return None
    statement = pointwise.statement
    stmt_key = statement.key() if statement is not None else None
    return (pointwise.ops, pointwise.expr, pointwise.out, stmt_key)


def signature(summaries: Sequence[LaunchSummary]) -> tuple:
    """A hashable structural key of a window (the memoization key)."""
    ids = local_ids(summaries)
    return tuple(
        (
            s.name,
            s.colors,
            s.fusible,
            ir_key(s.pointwise),
            tuple(
                (
                    ids[a.region.uid], a.part_kind, a.boundaries,
                    a.privilege.value, a.name,
                )
                for a in s.accesses
            ),
        )
        for s in summaries
    )


class _GroupState:
    """Mutable legality state of the group currently being grown."""

    def __init__(self) -> None:
        self.indices: List[int] = []
        self.colors: Optional[int] = None
        self.boundaries: Optional[Tuple[int, ...]] = None
        self.written: set = set()  # local region ids written in group
        self.rep_read: set = set()  # local region ids replicate-read

    def admits(self, summary: LaunchSummary, ids: Dict[int, int]) -> bool:
        if self.colors is not None and summary.colors != self.colors:
            return False
        boundaries = self.boundaries
        for acc in summary.accesses:
            lid = ids[acc.region.uid]
            if acc.part_kind == "tile":
                if boundaries is None:
                    boundaries = acc.boundaries
                elif acc.boundaries != boundaries:
                    return False
            elif acc.part_kind == "rep":
                if lid in self.written:
                    return False
            else:
                return False
            if acc.privilege.writes and lid in self.rep_read:
                return False
        return True

    def add(self, index: int, summary: LaunchSummary, ids: Dict[int, int]) -> None:
        self.indices.append(index)
        self.colors = summary.colors
        for acc in summary.accesses:
            lid = ids[acc.region.uid]
            if acc.part_kind == "tile" and self.boundaries is None:
                self.boundaries = acc.boundaries
            if acc.part_kind == "rep":
                self.rep_read.add(lid)
            if acc.privilege.writes:
                self.written.add(lid)


def _elided(
    group: Sequence[int],
    summaries: Sequence[LaunchSummary],
    ids: Dict[int, int],
) -> frozenset:
    """Local ids of temporaries produced and consumed inside the group:
    first access WRITE_DISCARD, read again by a later sub-launch, never
    replicated."""
    if len(group) <= 1:
        return frozenset()
    first: Dict[int, Tuple[int, Privilege]] = {}
    consumed: set = set()
    replicated: set = set()
    for index in group:
        for acc in summaries[index].accesses:
            lid = ids[acc.region.uid]
            if acc.part_kind == "rep":
                replicated.add(lid)
            if lid not in first:
                first[lid] = (index, acc.privilege)
            elif acc.privilege.reads and index != first[lid][0]:
                consumed.add(lid)
    return frozenset(
        lid
        for lid, (_idx, privilege) in first.items()
        if privilege is Privilege.WRITE_DISCARD
        and lid in consumed
        and lid not in replicated
    )


def plan_window(summaries: Sequence[LaunchSummary]) -> List[GroupPlan]:
    """Partition a window into maximal runs of compatible launches.

    Deterministic and purely structural (see module docs), so callers
    may cache the result keyed by :func:`signature`.
    """
    ids = local_ids(summaries)
    plans: List[GroupPlan] = []
    state = _GroupState()

    def close() -> None:
        nonlocal state
        if state.indices:
            indices = tuple(state.indices)
            plans.append(GroupPlan(indices, _elided(indices, summaries, ids)))
        state = _GroupState()

    for index, summary in enumerate(summaries):
        if not summary.fusible:
            close()
            plans.append(GroupPlan((index,), frozenset()))
            continue
        if not state.admits(summary, ids):
            close()
        if state.admits(summary, ids):
            state.add(index, summary, ids)
        else:
            # Internally inconsistent launch (mixed boundaries within
            # one launch): emit unfused rather than reject the window.
            close()
            plans.append(GroupPlan((index,), frozenset()))
    close()
    return plans


def fused_name(names: Sequence[str]) -> str:
    """The deterministic display name of a fused group."""
    joined = "+".join(names)
    if len(joined) > MAX_FUSED_NAME:
        joined = joined[: MAX_FUSED_NAME - 1] + "…"
    return f"fused{{{len(names)}}}:{joined}"


def fuse(
    group: Sequence[TaskLaunch],
    elide_uids: frozenset = frozenset(),
    nest=None,
) -> TaskLaunch:
    """Merge a planned group into one launch.

    Requirement and scalar names are mangled ``"<i>.<name>"`` by
    sub-launch position; the fused kernel rebuilds each sub-launch's
    :class:`ShardContext` and runs the sub-kernels in issue order per
    shard, so the arithmetic is the exact unfused sequence.

    With ``nest`` (a :class:`repro.distal.codegen.NestSpec` generated
    for a merge-safe group — see :mod:`repro.analysis.depend`), the
    replay kernel and summed per-sub cost are swapped for the nest's
    single generated kernel and one combined cost entry; requirements,
    scalars and the fused name are identical either way, so mapping,
    coherence and the event log cannot tell the two apart.
    """
    if len(group) == 1 and not elide_uids:
        return group[0]
    requirements: List[Requirement] = []
    subs: List[Tuple[TaskLaunch, Dict[str, str]]] = []
    scalars: Dict[str, object] = {}
    for i, task in enumerate(group):
        name_map: Dict[str, str] = {}
        for req in task.requirements:
            mangled = f"{i}.{req.name}"
            name_map[req.name] = mangled
            requirements.append(
                Requirement(
                    mangled, req.region, req.partition, req.privilege,
                    elide=req.region.uid in elide_uids,
                )
            )
        for key, value in task.scalars.items():
            scalars[f"{i}.{key}"] = value
        subs.append((task, name_map))

    def sub_context(ctx: ShardContext, i: int, task: TaskLaunch, name_map):
        arrays = {orig: ctx.arrays[m] for orig, m in name_map.items()}
        rects = {orig: ctx.rects[m] for orig, m in name_map.items()}
        sub_scalars = {key: ctx.scalars[f"{i}.{key}"] for key in task.scalars}
        privileges = {req.name: req.privilege for req in task.requirements}
        return ShardContext(
            ctx.color, ctx.colors, arrays, rects, sub_scalars, ctx.config,
            privileges,
        )

    def kernel(ctx: ShardContext) -> None:
        for i, (task, name_map) in enumerate(subs):
            task.kernel(sub_context(ctx, i, task, name_map))

    def cost(ctx: ShardContext) -> tuple:
        flops = 0.0
        nbytes = 0.0
        for i, (task, name_map) in enumerate(subs):
            f, b = task.cost_fn(sub_context(ctx, i, task, name_map))
            flops += float(f)
            nbytes += float(b)
        return flops, nbytes

    ops: List[str] = []
    for task in group:
        ops.extend(task.pointwise.ops if task.pointwise else (task.name,))
    return TaskLaunch(
        name=fused_name([task.name for task in group]),
        requirements=requirements,
        kernel=nest.kernel if nest is not None else kernel,
        cost_fn=nest.cost if nest is not None else cost,
        scalars=scalars,
        pointwise=Pointwise(tuple(ops)),
    )
