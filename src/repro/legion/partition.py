"""Partitions: first-class mappings from colors to sub-rectangles.

Includes Legion's *image* dependent-partitioning operation in the two
forms the paper uses (Fig. 2): image **by range** projects a partition of
a ``pos`` region (whose elements are ``{lo, hi}`` ranges) onto the
``crd``/``vals`` regions, and image **by coordinate** projects a partition
of a ``crd`` region (whose elements are column indices) onto a dense
vector or matrix.  Images are computed dynamically from region *data* —
this is what captures the data-dependent communication of sparse
computations.

Image sub-regions are represented by their bounding rectangles, matching
how physical instances are allocated; DESIGN.md discusses the effect on
halo volume (small for banded matrices, near-total for the wide-band
quantum Hamiltonian — reproducing the paper's Fig. 11 falloff).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Rect
from repro.legion.region import Region


class Partition:
    """Base class: a mapping from ``color_count`` colors to rects."""

    def __init__(self, region: Region, color_count: int):
        self.region = region
        self.color_count = int(color_count)

    def rect(self, color: int) -> Rect:
        """The (bounding) sub-rectangle assigned to ``color``."""
        raise NotImplementedError

    def pieces(self, color: int) -> List[Rect]:
        """Disjoint sub-rects of the color (default: the bounding rect).

        Exact images override this so the copy engine moves only the
        referenced data, like Legion's precise image partitions.
        """
        rect = self.rect(color)
        return [] if rect.is_empty() else [rect]

    def rects(self) -> List[Rect]:
        """All colors' rects, in color order."""
        return [self.rect(c) for c in range(self.color_count)]

    def is_disjoint(self) -> bool:
        """True when no two colors overlap (images may alias)."""
        rects = self.rects()
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i].overlaps(rects[j]):
                    return False
        return True

    def is_complete(self) -> bool:
        """True when the colors cover the whole region."""
        from repro.geometry import RectSet

        union = RectSet(self.rects())
        return union.covers(RectSet.of(self.region.rect))

    def aligned_with(self, other: "Partition") -> bool:
        """Whether using both on aligned operands incurs no data movement."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.region.name}, colors={self.color_count})"


class Tiling(Partition):
    """Even block partition along dimension 0 (rows).

    The tile boundaries — not the region identity — define alignment, so
    two same-length vectors tiled with the same boundaries compose with
    zero data movement (partition reuse, §4.1).
    """

    def __init__(self, region: Region, boundaries: Sequence[int]):
        super().__init__(region, len(boundaries) - 1)
        self.boundaries = tuple(int(b) for b in boundaries)
        if self.boundaries[0] != 0 or self.boundaries[-1] != region.shape[0]:
            raise ValueError("tiling must cover dimension 0 exactly")
        if any(
            self.boundaries[i] > self.boundaries[i + 1]
            for i in range(len(self.boundaries) - 1)
        ):
            raise ValueError("tile boundaries must be non-decreasing")
        # Per-color tile rects, built on first use.  Tilings are shared
        # across launches (key-partition reuse), so memoizing here turns
        # the per-shard rect construction into a dict hit; Rect is
        # frozen, so sharing one object per color is safe.
        self._rect_cache: dict = {}

    @classmethod
    def trusted(cls, region: Region, boundaries: Tuple[int, ...]) -> "Tiling":
        """Construct without re-validating ``boundaries``.

        For fast-path rebuilds of tilings that already passed the
        constructor's checks (the region is the same object the
        boundaries were validated against — uids never recycle).
        """
        self = cls.__new__(cls)
        Partition.__init__(self, region, len(boundaries) - 1)
        self.boundaries = tuple(boundaries)
        self._rect_cache = {}
        return self

    @staticmethod
    def create_boundaries(n: int, colors: int) -> Tuple[int, ...]:
        """Even split points of ``[0, n)`` into ``colors`` tiles."""
        colors = max(1, int(colors))
        base, extra = divmod(n, colors)
        boundaries = [0]
        for c in range(colors):
            boundaries.append(boundaries[-1] + base + (1 if c < extra else 0))
        return tuple(boundaries)

    @classmethod
    def create(cls, region: Region, colors: int) -> "Tiling":
        """An even tiling of the region's rows."""
        return cls(region, cls.create_boundaries(region.shape[0], colors))

    def rect(self, color: int) -> Rect:
        """The tile rect of a color."""
        cached = self._rect_cache.get(color)
        if cached is None:
            lo = self.boundaries[color]
            hi = self.boundaries[color + 1]
            if self.region.ndim == 1:
                cached = Rect((lo,), (hi,))
            else:
                cached = Rect((lo, 0), (hi, self.region.shape[1]))
            self._rect_cache[color] = cached
        return cached

    def aligned_with(self, other: Partition) -> bool:
        """Same boundaries: composing costs no movement."""
        return (
            isinstance(other, Tiling)
            and other.boundaries == self.boundaries
        )


class Replicate(Partition):
    """Every color maps to the whole region (broadcast operands)."""

    def rect(self, color: int) -> Rect:
        """The whole region, for every color."""
        return self.region.rect

    def aligned_with(self, other: Partition) -> bool:
        """Replicas of same-shape regions align."""
        return isinstance(other, Replicate) and other.region.shape == self.region.shape


class ExplicitPartition(Partition):
    """A partition given by an explicit list of rects (one per color)."""

    def __init__(self, region: Region, rects: Sequence[Rect]):
        super().__init__(region, len(rects))
        self._rects = list(rects)

    def rect(self, color: int) -> Rect:
        """The caller-supplied rect of a color."""
        return self._rects[color]


class ImageByRange(Partition):
    """Image of a partition of a ``pos`` region onto ``crd``/``vals``.

    ``pos`` holds Legate's ``{lo, hi}`` half-open range pairs (Fig. 3), one
    per row, as an ``(n, 2)`` int64 region.  For each color, the image is
    the union of the ranges in that color's rows — contiguous and exact
    when ``pos`` is monotone (as in CSR/CSC).
    """

    def __init__(self, pos: Region, pos_partition: Partition, dest: Region):
        super().__init__(dest, pos_partition.color_count)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError("pos region must have shape (n, 2)")
        self.pos = pos
        self.pos_partition = pos_partition
        self._rects = [
            self._compute(pos_partition.rect(c), dest)
            for c in range(self.color_count)
        ]

    def _compute(self, pos_rect: Rect, dest: Region) -> Rect:
        lo, hi = pos_rect.lo[0], pos_rect.hi[0]
        if hi <= lo:
            return _empty_rect(dest)
        ranges = self.pos.data[lo:hi]
        starts = ranges[:, 0]
        ends = ranges[:, 1]
        nonempty = ends > starts
        if not np.any(nonempty):
            return _empty_rect(dest)
        dlo = int(starts[nonempty].min())
        dhi = int(ends[nonempty].max())
        return _extend_rows(dest, dlo, dhi)

    def rect(self, color: int) -> Rect:
        """The color's image (exact for monotone pos)."""
        return self._rects[color]


class ImageByCoordinate(Partition):
    """Image of a partition of a ``crd`` region onto a dense operand.

    For each color, the image is the bounding interval of the coordinate
    values stored in that color's slice of ``crd``, extended over the
    remaining dimensions of the destination (rows of a dense matrix).
    The result is generally *aliased* — several colors reference the same
    destination elements — which is precisely the halo sharing in Fig. 5.
    """

    # Exact images with more runs than this fall back to the bounding
    # rect (a compact instance would be allocated anyway).
    MAX_EXACT_PIECES = 64

    def __init__(
        self,
        crd: Region,
        crd_partition: Partition,
        dest: Region,
        exact: bool = False,
    ):
        super().__init__(dest, crd_partition.color_count)
        if crd.ndim != 1:
            raise ValueError("crd region must be 1-D")
        self.crd = crd
        self.crd_partition = crd_partition
        self.exact = exact
        self._rects = []
        self._pieces: List[List[Rect]] = []
        for c in range(self.color_count):
            src = crd_partition.rect(c)
            lo, hi = src.lo[0], src.hi[0]
            vals = crd.data[lo:hi] if hi > lo else np.empty(0, np.int64)
            if vals.size == 0:
                self._rects.append(_empty_rect(dest))
                self._pieces.append([])
                continue
            dlo = int(vals.min())
            dhi = int(vals.max()) + 1
            self._rects.append(_extend_rows(dest, dlo, dhi))
            if exact:
                self._pieces.append(self._runs(vals, dest))
            else:
                self._pieces.append([self._rects[-1]])

    @classmethod
    def _runs(cls, vals: np.ndarray, dest: Region) -> List[Rect]:
        """Consecutive-index runs of the referenced coordinates."""
        uniq = np.unique(vals)
        breaks = np.flatnonzero(np.diff(uniq) > 1)
        starts = np.concatenate([[0], breaks + 1])
        ends = np.concatenate([breaks, [len(uniq) - 1]])
        if len(starts) > cls.MAX_EXACT_PIECES:
            return [_extend_rows(dest, int(uniq[0]), int(uniq[-1]) + 1)]
        return [
            _extend_rows(dest, int(uniq[s]), int(uniq[e]) + 1)
            for s, e in zip(starts, ends)
        ]

    def rect(self, color: int) -> Rect:
        """The color's bounding image rect."""
        return self._rects[color]

    def pieces(self, color: int) -> List[Rect]:
        """Exact runs (or the bounding rect)."""
        return list(self._pieces[color])


def _empty_rect(dest: Region) -> Rect:
    zeros = tuple(0 for _ in dest.shape)
    return Rect(zeros, zeros)


def _extend_rows(dest: Region, lo: int, hi: int) -> Rect:
    if dest.ndim == 1:
        return Rect((lo,), (hi,))
    return Rect((lo, 0), (hi, dest.shape[1]))
