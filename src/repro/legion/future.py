"""Futures: values paired with the simulated time they become ready.

Legion returns scalar results (dot products, norms, convergence tests) as
futures.  Passing a future into a downstream task delays that task's start
without blocking the issuing Python program; *consuming* the value on the
Python side (``float(...)``, a convergence branch) forces a synchronization
that advances the issue clock — exactly the control-flow-induced syncs
that put allreduce latency on the critical path of the CG solver (Fig. 9).
"""

from __future__ import annotations

from typing import Any


class Future:
    """A concrete value with a simulated ready time."""

    __slots__ = ("value", "ready_time")

    def __init__(self, value: Any, ready_time: float = 0.0):
        self.value = value
        self.ready_time = float(ready_time)

    @classmethod
    def ready(cls, value: Any) -> "Future":
        """A future that is available at time zero."""
        return cls(value, 0.0)

    def map(self, fn) -> "Future":
        """Apply a (free) scalar function, preserving the ready time."""
        return Future(fn(self.value), self.ready_time)

    @staticmethod
    def combine(fn, *futures: "Future") -> "Future":
        """Combine futures with a scalar function; ready when all are."""
        vals = [f.value for f in futures]
        t = max((f.ready_time for f in futures), default=0.0)
        return Future(fn(*vals), t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Future({self.value!r} @ {self.ready_time:.6g}s)"
