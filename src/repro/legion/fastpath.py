"""Host-side fast path: caches and batched analyses for the runtime.

The simulated runtime is numerically exact but pays real host CPU for
every launch: per-color coherence rebuilds, instance-store scans and
constraint solves are Python loops whose cost dwarfs the *modeled* time
at scale (BENCH_runtime_overhead.json measures the gap).  This module
holds the machinery ``RuntimeConfig.fastpath`` turns on:

* :class:`InstanceLookupCache` — a version-checked memo of
  ``(memory, region, rect) -> Instance`` resolutions, so steady-state
  mapping skips the allocation-store scan.  Every mutation that could
  change a scan's outcome bumps :attr:`MemoryState.version`
  (allocation, coalescing growth, eviction, spill, region free, chaos
  memory loss), which invalidates stale entries for free.
* :func:`eligible_write_reqs` — the batched-write legality check: a
  launch whose write requirement tiles its region disjointly (and whose
  region no other requirement touches) may defer all per-color
  ``mark_written`` calls and apply them in one
  :meth:`RegionCoherence.write_complete` pass, because the final
  coherence state is independent of the interleaving.
* :class:`SolveMemo` — bounded container for constraint-solve
  memoization keyed by structural signature
  (:func:`repro.constraints.solver.solve_signature`).

Everything here is bitwise-neutral by construction: with
``fastpath=False`` the runtime takes the original per-requirement
paths, and the fast path must produce identical modeled times, event
logs and numerics (``tests/legion/test_fastpath.py`` proves it across
spill, eviction, chaos loss and journal replay).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.geometry import Rect
from repro.legion.instance import Instance
from repro.legion.partition import Tiling
from repro.legion.privilege import Privilege


class InstanceLookupCache:
    """Version-checked memo of instance resolutions per memory.

    Keys are ``(memory_uid, region_uid, rect)``; values pair the
    resolved :class:`Instance` with the owning store's version at the
    time of resolution.  A hit whose stored version no longer matches
    the store's current version is stale and ignored — the store's
    contents may have changed in a way that alters the scan result
    (a grown instance now containing the rect, a dropped instance,
    a wiped memory).
    """

    __slots__ = ("_entries",)

    # Steady-state working sets are (requirements x colors) entries; a
    # CG iteration at 1024 colors needs a few thousand.  On overflow
    # the cache is cleared wholesale — refill is one miss per key.
    MAX_ENTRIES = 1 << 16

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[int, int, Rect], Tuple[Instance, int]
        ] = {}

    def get(
        self, key: Tuple[int, int, Rect], version: int
    ) -> Optional[Instance]:
        """The cached instance, or None on miss / version mismatch."""
        entry = self._entries.get(key)
        if entry is not None and entry[1] == version:
            return entry[0]
        return None

    def put(
        self, key: Tuple[int, int, Rect], inst: Instance, version: int
    ) -> None:
        """Record a resolution at the store's current version."""
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[key] = (inst, version)

    def clear(self) -> None:
        """Drop every entry (chaos memory wipes clear wholesale)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class SolveMemo:
    """Bounded memo of constraint-solve *plans* by structural signature.

    Signatures come from :func:`repro.constraints.solver.solve_signature`
    and embed region uids — which are never recycled — plus key-partition
    boundaries, so a repartition (a store's key partition changing)
    changes the signature instead of requiring explicit invalidation.
    Values are :func:`repro.constraints.solver.solution_plan` recipes,
    not partition objects: holding partitions would keep their regions
    alive past the program's last reference, blocking the destructor
    that recycles instances into the allocation pool.  Hits rebuild
    concrete partitions from the current stores.
    """

    __slots__ = ("_entries",)

    MAX_ENTRIES = 1024

    def __init__(self) -> None:
        self._entries: Dict[tuple, dict] = {}

    def get(self, sig: tuple) -> Optional[dict]:
        """The cached solution dict for a signature, or None."""
        return self._entries.get(sig)

    def put(self, sig: tuple, solution: dict) -> None:
        """Memoize a solve result."""
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[sig] = solution

    def clear(self) -> None:
        """Drop every memoized solution."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class ImagePartitionCache:
    """Memo of image-partition geometry keyed by source-data epoch.

    Image partitions (:class:`~repro.legion.partition.ImageByRange` /
    ``ImageByCoordinate``) read region *data* at construction — the
    data-dependent communication analysis of the paper — so they cannot
    be memoized structurally like tilings.  Instead the runtime bumps
    :meth:`bump` for every region a task writes; a cache key embeds the
    source region's epoch, so any write to the source invalidates its
    images for free.  Values are tuples of :class:`Rect` (plain int
    geometry — never partition or region objects, which would pin
    regions past their last program reference); hits rebuild fresh
    partition objects around the current regions
    (:func:`repro.constraints.solver._image_cached`).
    """

    __slots__ = ("_entries", "epochs")

    MAX_ENTRIES = 512

    def __init__(self) -> None:
        self._entries: Dict[tuple, object] = {}
        # region uid -> number of task writes observed (0 if never).
        self.epochs: Dict[int, int] = {}

    def bump(self, uid: int) -> None:
        """Record a write to a region (invalidates its images)."""
        self.epochs[uid] = self.epochs.get(uid, 0) + 1

    def get(self, key: tuple):
        """The cached geometry, or None."""
        return self._entries.get(key)

    def put(self, key: tuple, value) -> None:
        """Memoize computed image geometry."""
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (epochs are kept — they only grow)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def eligible_write_reqs(task, replay: bool, freed_uids) -> dict:
    """Requirements whose per-color writes may be batched, by name.

    A write requirement is eligible when deferring its ``mark_written``
    calls to one end-of-launch :meth:`RegionCoherence.write_complete`
    is provably identical to the sequential slow path:

    * exclusive write privilege (WRITE / WRITE_DISCARD — REDUCE folds
      interleave with copies and are batched separately by the fold
      path), and it is the region's only writer in this task;
    * the partition is a :class:`Tiling` of the requirement's own
      region — disjoint full-width row bands covering the region, so
      the final coherence state is the tiles themselves regardless of
      prior validity, and mid-launch queries restricted to later bands
      cannot observe earlier bands' deferred writes;
    * every other requirement touching the same region is a READ under
      a Tiling with *identical boundaries* — color ``c`` then only ever
      reads band ``c``, which no other color writes, so deferring the
      earlier bands' writes is unobservable.  (Fused tasks routinely
      carry such read/write pairs for their chained temporaries.)  Any
      other companion — a Replicate broadcast, a differently-cut
      tiling, an image — could legally observe an earlier color's
      write, so the region is ineligible;
    * not a journal-replay of a since-freed region (those writes are
      skipped entirely).
    """
    by_uid: Dict[int, list] = {}
    for req in task.requirements:
        by_uid.setdefault(req.region.uid, []).append(req)
    eligible = {}
    for uid, reqs in by_uid.items():
        if replay and uid in freed_uids:
            continue
        writer = None
        boundaries = None
        ok = True
        for req in reqs:
            part = req.partition
            if type(part) is not Tiling or part.region.uid != uid:
                ok = False
                break
            if boundaries is None:
                boundaries = part.boundaries
            elif part.boundaries != boundaries:
                ok = False
                break
            priv = req.privilege
            if priv is Privilege.READ:
                continue
            if priv is Privilege.WRITE or priv is Privilege.WRITE_DISCARD:
                if writer is not None:  # two writers: order matters
                    ok = False
                    break
                writer = req
            else:  # REDUCE folds are handled by the fold path
                ok = False
                break
        if ok and writer is not None:
            eligible[writer.name] = writer
    return eligible
