"""Physical instances: the shared allocation store with coalescing (§4.2).

Mappers record every region allocation made in each memory and consult
the store before allocating.  When a task needs a sub-rectangle that
intersects an existing instance of the same region, the two views are
coalesced into one larger allocation when the heuristic deems the overlap
large enough — reducing memory usage and eliminating the repeated
full-vector copies described in §4.3 (RA1→RA5 resize, then steady state).

Capacity accounting lives here too: exceeding a memory's capacity (minus
the runtime's framebuffer reservation) raises :class:`OutOfMemoryError`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry import Rect
from repro.legion.exceptions import OutOfMemoryError
from repro.machine import Memory, MemoryKind

_instance_uid = itertools.count()


@dataclass
class Instance:
    """One allocation: a rectangle of a region resident in a memory.

    ``alloc_bytes`` may exceed the bytes the current rect needs when the
    instance claimed a pooled (recycled) allocation — growing the view
    within the allocation is then free, which is what produces the
    paper's steady state (§4.3: x2 reuses RA2 and only halo bytes move).
    """

    uid: int
    region_uid: int
    rect: Rect
    itemsize: int
    alloc_bytes: int = 0
    scale: float = 1.0  # per-region memory magnification
    # Logical LRU clock: the store's use tick when this instance was
    # last found or created.  Eviction under memory pressure walks
    # instances oldest-first (see MemoryState.lru_instances).
    last_use: int = 0

    def __post_init__(self) -> None:
        self.alloc_bytes = max(self.alloc_bytes, self.nbytes)

    @property
    def nbytes(self) -> int:
        """Bytes the current view needs (<= alloc_bytes)."""
        return self.rect.volume() * self.itemsize


class MemoryState:
    """Allocation store for a single memory."""

    def __init__(
        self,
        memory: Memory,
        reserved_bytes: int = 0,
        coalesce_slack: float = 2.0,
        coalescing: bool = True,
        data_scale: float = 1.0,
        inflight_window: int = 0,
    ):
        self.memory = memory
        self.reserved_bytes = int(reserved_bytes)
        self.coalesce_slack = float(coalesce_slack)
        self.coalescing = coalescing
        self.data_scale = float(data_scale)
        self.used_bytes = 0.0
        self.peak_bytes = 0.0
        # region uid -> instances of that region in this memory
        self.instances: Dict[int, List[Instance]] = {}
        # Recycled allocations (bytes); they stay charged until drained.
        self.pool: List[int] = []
        self.pool_slack = 4.0
        # Deferred collection: the newest `inflight_window` recycled
        # allocations belong to tasks still in the pipeline and cannot
        # be reclaimed under pressure (Legion collects instances only
        # once their consumers finish).  This is what makes the
        # quantum application's memory scale imperfectly (Fig. 11).
        self.inflight_window = int(inflight_window)
        # Logical clock stamped onto instances for LRU eviction.
        self._use_tick = 0
        # Structural version: bumped by every mutation that could
        # change a :meth:`find` scan's outcome (allocation, coalescing
        # growth, drop, free, loss).  The runtime's instance lookup
        # cache (repro.legion.fastpath) validates entries against it.
        self.version = 0

    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        """Bytes still chargeable (capacity - reservation - used).

        Never negative: ``_charge`` refuses any allocation that would
        push usage past the budget, so a clamped zero only papers over
        float noise, not real overdraft.
        """
        return max(0.0, self.memory.capacity - self.reserved_bytes - self.used_bytes)

    def _charge(self, nbytes: int, what: str, scale: Optional[float] = None) -> None:
        nbytes = nbytes * (self.data_scale if scale is None else scale)
        if nbytes > self.available:
            raise OutOfMemoryError(
                f"{self.memory.kind.value}[{self.memory.uid}]",
                nbytes,
                max(0, self.available),
            )
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def _release(self, nbytes: int, scale: Optional[float] = None) -> None:
        self.used_bytes -= nbytes * (self.data_scale if scale is None else scale)
        assert self.used_bytes >= -1e-6

    # ------------------------------------------------------------------
    def find(self, region_uid: int, rect: Rect) -> Optional[Instance]:
        """An existing instance of the region containing ``rect``."""
        for inst in self.instances.get(region_uid, []):
            if inst.rect.contains(rect):
                return inst
        return None

    def touch(self, inst: Instance) -> None:
        """Re-stamp an instance's LRU clock, exactly as a find hit does.

        The runtime's lookup cache calls this on a cache hit so the
        eviction order matches the uncached path tick for tick.
        """
        self._use_tick += 1
        inst.last_use = self._use_tick

    def ensure(
        self,
        region_uid: int,
        rect: Rect,
        itemsize: int,
        scale: Optional[float] = None,
    ) -> Tuple[Instance, int, bool]:
        """Find or create an instance covering ``rect``.

        Returns ``(instance, resize_copy_bytes, fresh)``:
        ``resize_copy_bytes`` is the data moved *within this memory* to
        migrate an allocation into a coalesced, larger one (the "full
        copy of x1" in Fig. 5); ``fresh`` marks a brand-new instance,
        whose already-valid overlap the runtime must copy in.
        """
        scale = self.data_scale if scale is None else float(scale)
        if rect.is_empty():
            return Instance(next(_instance_uid), region_uid, rect, itemsize, scale=scale), 0, False
        self._use_tick += 1
        existing = self.find(region_uid, rect)
        if existing is not None:
            existing.last_use = self._use_tick
            return existing, 0, False

        insts = self.instances.setdefault(region_uid, [])
        if self.coalescing and insts:
            best: Optional[Instance] = None
            best_overlap = -1
            for inst in insts:
                overlap = inst.rect.intersect(rect).volume()
                if overlap > best_overlap:
                    best, best_overlap = inst, overlap
            assert best is not None
            hull = best.rect.union_hull(rect)
            # Coalesce when the merged allocation is not much larger than
            # the two views combined (the §4.2 heuristic: overlapping part
            # sufficiently larger than the non-overlapping parts).
            if best_overlap > 0 or hull.volume() <= self.coalesce_slack * (
                best.rect.volume() + rect.volume()
            ):
                old_bytes = best.nbytes
                new_bytes = hull.volume() * itemsize
                if new_bytes <= best.alloc_bytes:
                    # The existing allocation already has room: the view
                    # grows in place with no data movement.
                    best.rect = hull
                    best.last_use = self._use_tick
                    self.version += 1
                    return best, 0, False
                grow = max(0, new_bytes - best.alloc_bytes)
                try:
                    try:
                        self._charge(grow, "resize", best.scale)
                    except OutOfMemoryError:
                        if len(self.pool) <= self.inflight_window:
                            raise
                        self.drain_pool()
                        self._charge(grow, "resize", best.scale)
                except OutOfMemoryError as exc:
                    raise exc.annotate(region_uid=region_uid, rect=rect) from None
                move = old_bytes  # migrate prior contents into the new alloc
                best.rect = hull
                best.alloc_bytes = new_bytes
                best.last_use = self._use_tick
                self.version += 1
                return best, move, False

        try:
            inst = self._allocate(region_uid, rect, itemsize, scale)
        except OutOfMemoryError as exc:
            raise exc.annotate(region_uid=region_uid, rect=rect) from None
        insts.append(inst)
        self.version += 1
        # The caller must populate a brand-new instance: any bytes of the
        # needed rect already valid in this memory (in other instances)
        # are duplicated with an intra-memory copy.
        return inst, 0, True

    def _allocate(
        self, region_uid: int, rect: Rect, itemsize: int, scale: float
    ) -> Instance:
        """Fresh allocation, preferring a recycled one of adequate size.

        The pool stores *scaled* sizes, so recycling works across
        regions with different memory magnifications.
        """
        needed = rect.volume() * itemsize
        needed_scaled = needed * scale
        best_idx = -1
        for idx, size in enumerate(self.pool):
            if needed_scaled <= size <= self.pool_slack * max(needed_scaled, 1):
                if best_idx < 0 or size < self.pool[best_idx]:
                    best_idx = idx
        if best_idx >= 0:
            size = self.pool.pop(best_idx)
            return Instance(
                next(_instance_uid), region_uid, rect, itemsize,
                max(needed, int(size / max(scale, 1e-12))), scale=scale,
                last_use=self._use_tick,
            )
        try:
            self._charge(needed, "alloc", scale)
        except OutOfMemoryError:
            if len(self.pool) <= self.inflight_window:
                raise
            self.drain_pool()
            self._charge(needed, "alloc", scale)
        return Instance(
            next(_instance_uid), region_uid, rect, itemsize, needed,
            scale=scale, last_use=self._use_tick,
        )

    def drain_pool(self) -> None:
        """Reclaim recycled allocations older than the in-flight window."""
        keep = self.pool[len(self.pool) - self.inflight_window :] if self.inflight_window else []
        for size in self.pool[: len(self.pool) - len(keep)]:
            self._release(size, 1.0)
        self.pool = list(keep)

    def free_region(self, region_uid: int) -> int:
        """Recycle a region's allocations into the pool (scaled sizes)."""
        freed = 0
        popped = self.instances.pop(region_uid, [])
        if popped:
            self.version += 1
        for inst in popped:
            if inst.alloc_bytes > 0:
                self.pool.append(inst.alloc_bytes * inst.scale)
                freed += inst.alloc_bytes
        # Bound the pool: keep the 32 largest recycled allocations.
        if len(self.pool) > 32:
            self.pool.sort(reverse=True)
            for size in self.pool[32:]:
                self._release(size, 1.0)
            del self.pool[32:]
        return freed

    def region_footprint(self, region_uid: int) -> int:
        """Bytes this memory currently holds for one region."""
        return sum(i.nbytes for i in self.instances.get(region_uid, []))

    # ------------------------------------------------------------------
    # Pressure relief and failure primitives (composed by the runtime's
    # spill policy and by the chaos recovery path).
    # ------------------------------------------------------------------
    def lru_instances(self) -> List[Instance]:
        """Every resident instance, least recently used first."""
        out = [i for insts in self.instances.values() for i in insts]
        out.sort(key=lambda i: i.last_use)
        return out

    def drop_instance(self, inst: Instance) -> float:
        """Remove one instance and release its charge (scaled bytes freed).

        Unlike :meth:`free_region` this does NOT pool the allocation —
        eviction exists to give the bytes back *now*.
        """
        insts = self.instances.get(inst.region_uid)
        if not insts or inst not in insts:
            return 0.0
        insts.remove(inst)
        if not insts:
            del self.instances[inst.region_uid]
        self.version += 1
        freed = inst.alloc_bytes * inst.scale
        if inst.alloc_bytes > 0:
            self._release(inst.alloc_bytes, inst.scale)
        return freed

    def evict_lru(self, need_scaled: float) -> float:
        """Drop least-recently-used instances until ``need_scaled`` bytes
        are freed (or nothing is left); returns the scaled bytes freed.

        Cleanliness-blind — the runtime's spill policy filters for
        clean-vs-dirty via coherence before dropping; this raw form is
        what the static advisor uses to *estimate* spill traffic.
        """
        freed = 0.0
        for inst in self.lru_instances():
            if freed >= need_scaled:
                break
            freed += self.drop_instance(inst)
        return freed

    def lose(self) -> None:
        """Simulate losing this memory: all contents vanish, uncharged.

        The peak high-water mark survives (it measures what the run
        needed, not what a fault left behind)."""
        self.instances.clear()
        self.pool.clear()
        self.used_bytes = 0.0
        self.version += 1


class InstanceManager:
    """Allocation stores for every memory in a runtime's scope."""

    def __init__(
        self,
        reserved_fb_bytes: int = 0,
        coalesce_slack: float = 2.0,
        coalescing: bool = True,
        data_scale: float = 1.0,
        inflight_window: int = 0,
    ):
        self.reserved_fb_bytes = int(reserved_fb_bytes)
        self.coalesce_slack = coalesce_slack
        self.coalescing = coalescing
        self.data_scale = float(data_scale)
        self.inflight_window = int(inflight_window)
        self._states: Dict[int, MemoryState] = {}

    def state(self, memory: Memory) -> MemoryState:
        """The (lazily created) allocation store of a memory."""
        st = self._states.get(memory.uid)
        if st is None:
            # The configured reservation models Legion + CUDA library
            # overhead on 16 GB V100s; clamp it for small test memories.
            reserved = (
                min(self.reserved_fb_bytes, int(0.15 * memory.capacity))
                if memory.kind == MemoryKind.FRAMEBUFFER
                else 0
            )
            st = MemoryState(
                memory,
                reserved_bytes=reserved,
                coalesce_slack=self.coalesce_slack,
                coalescing=self.coalescing,
                data_scale=self.data_scale,
                inflight_window=self.inflight_window,
            )
            self._states[memory.uid] = st
        return st

    def ensure(self, memory: Memory, region_uid: int, rect: Rect, itemsize: int, scale=None):
        """Find-or-create an instance; see :meth:`MemoryState.ensure`."""
        return self.state(memory).ensure(region_uid, rect, itemsize, scale)

    def free_region(self, region_uid: int) -> None:
        """Recycle the region's allocations in every memory."""
        for st in self._states.values():
            st.free_region(region_uid)

    def lose_memory(self, memory_uid: int) -> None:
        """Simulate a fault wiping one memory (see MemoryState.lose)."""
        st = self._states.get(memory_uid)
        if st is not None:
            st.lose()

    def used_bytes(self, memory: Memory) -> int:
        """Currently charged bytes (live + pooled) in a memory."""
        return self.state(memory).used_bytes

    def peak_bytes(self, memory: Memory) -> int:
        """High-water mark of charged bytes in a memory."""
        return self.state(memory).peak_bytes

    def total_peak_bytes(self) -> int:
        """Sum of per-memory high-water marks."""
        return sum(st.peak_bytes for st in self._states.values())
