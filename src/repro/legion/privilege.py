"""Region privileges declared by tasks (read, write, reduce)."""

from __future__ import annotations

import enum


class Privilege(enum.Enum):
    """How a task uses a region argument."""
    READ = "read"
    WRITE = "write"  # read-write
    WRITE_DISCARD = "write-discard"  # write without reading prior contents
    REDUCE = "reduce"  # commutative accumulation (e.g. +=)

    @property
    def reads(self) -> bool:
        """Whether prior contents must be staged."""
        return self in (Privilege.READ, Privilege.WRITE)

    @property
    def writes(self) -> bool:
        """Whether the task produces new contents."""
        return self in (Privilege.WRITE, Privilege.WRITE_DISCARD, Privilege.REDUCE)
