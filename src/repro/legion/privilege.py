"""Region privileges declared by tasks (read, write, reduce)."""

from __future__ import annotations

import enum


class Privilege(enum.Enum):
    """How a task uses a region argument."""
    READ = "read"
    WRITE = "write"  # read-write
    WRITE_DISCARD = "write-discard"  # write without reading prior contents
    REDUCE = "reduce"  # commutative accumulation (e.g. +=)

    # ``reads``/``writes`` are plain precomputed attributes (below):
    # they are consulted per requirement per launch, where a property
    # call shows up in host-overhead profiles.


# reads: whether prior contents must be staged.
# writes: whether the task produces new contents.
for _p in Privilege:
    _p.reads = _p in (Privilege.READ, Privilege.WRITE)
    _p.writes = _p is not Privilege.READ
del _p
