"""Task launches: privilege-carrying computations over partitioned regions.

A :class:`TaskLaunch` is the low-level unit the runtime executes: a kernel
function applied once per color of the launch's partitions.  Kernels
receive a :class:`ShardContext` giving global (exact) NumPy arrays plus
the shard's rectangles, mirroring how DISTAL-generated Legion tasks index
into their region arguments with global bounds (paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.geometry import Rect
from repro.legion.partition import Partition
from repro.legion.privilege import Privilege
from repro.legion.region import Region


@dataclass(frozen=True)
class Pointwise:
    """Marks a launch as element-wise over aligned operands.

    Pointwise launches touch exactly their shard's rect of every region
    argument (no halos, no data-dependent indexing), which is the
    legality precondition the deferred launch window checks before
    merging a run of launches into one fused task
    (:mod:`repro.legion.fusion`).  ``ops`` names the element-wise
    operations, for reporting.

    ``expr``/``out`` optionally carry the kernel's *body IR* for the
    dependence analyzer (:mod:`repro.analysis.depend`): a postfix
    program of ``("load", req_name)`` / ``("scalar", scalar_name)`` /
    ``("un", op)`` / ``("bin", op)`` steps whose ops resolve through
    :mod:`repro.numeric.optable`, producing the value stored to
    requirement ``out``.  ``statement`` carries the DISTAL
    :class:`~repro.distal.ir.Assignment` for DISTAL-generated kernels.
    ``expr is None`` marks the kernel *opaque*: it still enters the
    task-fusion window, but its group is never body-merged into one
    loop nest (classified ``replay:opaque-kernel``).
    """

    ops: Tuple[str, ...] = ()
    expr: Optional[Tuple[Tuple[str, str], ...]] = None
    out: Optional[str] = None
    statement: Optional[object] = None


@dataclass
class Requirement:
    """One region argument of a task: region + partition + privilege."""

    name: str
    region: Region
    partition: Partition
    privilege: Privilege
    # Set by the fusion pass on temporaries produced and consumed
    # entirely inside one fused task: the runtime skips instance
    # allocation and staging for elided requirements (the temporary
    # never exists as a mapped instance).
    elide: bool = False


class ShardContext:
    """Everything one shard (color) of a task launch sees."""

    __slots__ = (
        "color", "colors", "arrays", "rects", "scalars", "config", "privileges",
    )

    def __init__(
        self,
        color: int,
        colors: int,
        arrays: Dict[str, np.ndarray],
        rects: Dict[str, Rect],
        scalars: Dict[str, Any],
        config,
        privileges: Optional[Dict[str, Privilege]] = None,
    ):
        self.color = color
        self.colors = colors
        self.arrays = arrays
        self.rects = rects
        self.scalars = scalars
        self.config = config
        self.privileges = privileges or {}

    def view(self, name: str) -> np.ndarray:
        """The shard's slice of a region (global array, shard rect).

        Under validation mode (``RuntimeConfig.validate``) the runtime
        sanitizes the backing arrays before building the context:
        ``READ`` arguments are non-writeable views (writing one raises)
        and ``WRITE_DISCARD`` rects arrive NaN-poisoned (reading
        undefined contents propagates NaNs) — see
        :mod:`repro.analysis.sanitizer`.
        """
        return self.arrays[name][self.rects[name].slices()]

    def rect(self, name: str) -> Rect:
        """The shard's rect of a region argument."""
        return self.rects[name]

    def scalar(self, name: str) -> Any:
        """A scalar argument (futures already unwrapped)."""
        return self.scalars[name]


# Kernel: computes the shard numerics, optionally returning a scalar
# partial for cross-shard reduction.  Cost function: returns
# (flops, bytes_moved) for the roofline timing model.
KernelFn = Callable[[ShardContext], Optional[Any]]
CostFn = Callable[[ShardContext], tuple]


def default_cost(ctx: ShardContext) -> tuple:
    """Fallback cost: the roofline bytes each privilege actually moves.

    Read-side bytes are charged for privileges that stage prior contents
    (READ, WRITE); write-side bytes for privileges that produce new
    contents (WRITE, WRITE_DISCARD, REDUCE); REDUCE pays the extra
    read-modify-write pass of the fold.  WRITE_DISCARD arguments are
    *not* charged read-side bytes — construction kernels do not stage
    their outputs in.  Without privilege information (contexts built
    outside the runtime) every argument is charged one touch per byte.
    """
    nbytes = 0.0
    for name, rect in ctx.rects.items():
        itembytes = rect.volume() * ctx.arrays[name].dtype.itemsize
        priv = ctx.privileges.get(name)
        if priv is None:
            nbytes += itembytes
            continue
        if priv.reads:
            nbytes += itembytes
        if priv.writes:
            nbytes += itembytes
        if priv is Privilege.REDUCE:
            nbytes += itembytes
    return (0.0, float(nbytes))


@dataclass
class TaskLaunch:
    """A parallel task launch over a color space."""

    name: str
    requirements: List[Requirement]
    kernel: KernelFn
    cost_fn: CostFn = default_cost
    scalars: Dict[str, Any] = field(default_factory=dict)
    # 'sum' / 'max' / 'min' cross-shard reduction of kernel return values
    # into a Future, or None when kernels return nothing.
    reduction: Optional[str] = None
    # Owner partition used to fold REDUCE-privilege outputs; defaults to
    # an even tiling of the output region.
    fold_partition: Optional[Partition] = None
    # Element-wise marker: set on launches eligible for the deferred
    # fusion window (repro.legion.fusion); None means execute eagerly.
    pointwise: Optional[Pointwise] = None

    @property
    def color_count(self) -> int:
        """The launch color space (max over partitions; 1 if no regions)."""
        return max(
            (r.partition.color_count for r in self.requirements), default=1
        )
