"""Runtime error types."""

from __future__ import annotations

from typing import Optional


class LegionError(RuntimeError):
    """Base class for runtime errors."""


class OutOfMemoryError(LegionError):
    """A memory's capacity (minus the runtime's reservation) was exceeded.

    Raised by the instance manager when mapping a region would overflow a
    framebuffer or system memory — this is how the harness reproduces the
    paper's out-of-memory outcomes (CuPy on ML-50M/100M in Fig. 12 and the
    64-GPU quantum point in Fig. 11).

    Where the overflow happened is attached as it propagates up: the
    allocation store knows the memory and byte counts, ``ensure`` knows
    the requesting region and rectangle, and the runtime knows the
    mapping task — so the message (and the harness OOM report cells)
    name the exact allocation that did not fit.
    """

    def __init__(
        self,
        memory_name: str,
        requested: int,
        available: int,
        region_uid: Optional[int] = None,
        region_name: Optional[str] = None,
        rect=None,
        task: Optional[str] = None,
    ):
        self.memory_name = memory_name
        self.requested = requested
        self.available = available
        self.region_uid = region_uid
        self.region_name = region_name
        self.rect = rect
        self.task = task
        super().__init__(self._compose())

    def _compose(self) -> str:
        msg = (
            f"out of memory in {self.memory_name}: requested "
            f"{self.requested} bytes, {self.available} available"
        )
        if self.region_name is not None or self.region_uid is not None:
            region = self.region_name or f"region{self.region_uid}"
            msg += f" (region {region!r}"
            if self.region_uid is not None:
                msg += f" uid={self.region_uid}"
            if self.rect is not None:
                msg += f", rect {self.rect}"
            msg += ")"
        if self.task is not None:
            msg += f" while mapping task {self.task!r}"
        return msg

    def annotate(
        self,
        region_uid: Optional[int] = None,
        region_name: Optional[str] = None,
        rect=None,
        task: Optional[str] = None,
    ) -> "OutOfMemoryError":
        """Attach mapping context as the error propagates; returns self."""
        if region_uid is not None:
            self.region_uid = region_uid
        if region_name is not None:
            self.region_name = region_name
        if rect is not None:
            self.rect = rect
        if task is not None:
            self.task = task
        self.args = (self._compose(),)
        return self

    def describe(self) -> str:
        """A one-line account for report cells and figure footnotes."""
        return self._compose()


class FaultError(LegionError):
    """An injected fault could not be recovered.

    Raised when a transient fault exhausts its retry budget
    (``ChaosConfig.max_retries``) or a scheduled loss takes out the
    checkpoint memory itself, which the recovery protocol cannot
    survive (see :mod:`repro.legion.chaos`).
    """
