"""Runtime error types."""

from __future__ import annotations


class LegionError(RuntimeError):
    """Base class for runtime errors."""


class OutOfMemoryError(LegionError):
    """A memory's capacity (minus the runtime's reservation) was exceeded.

    Raised by the instance manager when mapping a region would overflow a
    framebuffer or system memory — this is how the harness reproduces the
    paper's out-of-memory outcomes (CuPy on ML-50M/100M in Fig. 12 and the
    64-GPU quantum point in Fig. 11).
    """

    def __init__(self, memory_name: str, requested: int, available: int):
        super().__init__(
            f"out of memory in {memory_name}: requested {requested} bytes, "
            f"{available} available"
        )
        self.memory_name = memory_name
        self.requested = requested
        self.available = available
