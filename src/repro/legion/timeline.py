"""Legion-Prof-style timeline: a span for every modeled activity.

The figure experiments answer *how fast*; this module answers *where the
time went*.  When :class:`~repro.legion.runtime.RuntimeConfig` is built
with ``profile=True`` (or ``REPRO_PROFILE=1`` in the environment), the
runtime records every modeled activity as a :class:`Span` —

* ``task``  — one shard kernel on one processor,
* ``issue`` — per-launch overhead on the Python issue clock (fused
  groups show as one span for the whole merged launch),
* ``copy`` / ``spill`` / ``checkpoint`` — inter-memory traffic on the
  channel(s) it occupies,
* ``retry`` / ``backoff`` — a doomed copy attempt holding the wire and
  the exponential pause before the retry (chaos injection),
* ``resize`` — intra-memory instance migrations,
* ``fold``  — REDUCE-privilege read-modify-write folds on owner tiles,
* ``allreduce`` — the scalar tree reduction (abstract ``network``
  resource; allreduces may overlap and carry no occupancy),
* ``evict`` — zero-width markers for clean-instance drops,
* ``recovery`` — the post-loss restart delay on the issue clock,
* ``detection`` — the failure detector's suspected → confirmed
  transitions and the issue-clock stall waiting for confirmation
  (non-busy: annotation only, like ``recovery``),

each tagged ``(category, resource, name, start, finish, nbytes,
flops)`` on the simulated clock.  Profiling is off by default and costs
exactly one ``is not None`` check per record site when disabled.

On top of the span log the class offers per-resource utilization and
gap analysis, critical-path extraction (the chain of activities whose
finish times produced ``Runtime.elapsed()`` — see
:meth:`Timeline.critical_path`), Chrome-trace/Perfetto JSON export
(load the file in ``chrome://tracing`` or https://ui.perfetto.dev) and
an ASCII summary.  ``python -m repro.analysis profile <spans.json>``
drives all of it offline from a saved log.

Span invariants the test suite enforces (``tests/legion/test_timeline.py``):

* spans of the *busy* categories never overlap on one resource — the
  per-resource sum of durations equals the union (busy) time;
* per channel, the latest span finish equals ``Channel.busy_until``;
  per processor, the latest ``task``/``fold`` finish equals the
  processor clock;
* the critical path starts at 0, is contiguous, and ends bit-for-bit
  at ``Runtime.elapsed()``.
"""

from __future__ import annotations

import bisect
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

# Categories whose spans occupy their resource: at most one such span
# per resource at any simulated instant.  Everything else (backoff
# pauses, eviction markers, recovery stalls, overlappable allreduces)
# annotates the timeline without occupancy.
BUSY_CATEGORIES = frozenset(
    {"task", "issue", "copy", "retry", "resize", "fold", "spill", "checkpoint"}
)


@dataclass(frozen=True)
class Span:
    """One modeled activity on one resource of the simulated machine."""

    category: str
    resource: str
    name: str
    start: float
    finish: float
    nbytes: int = 0
    flops: float = 0.0

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.finish - self.start


@dataclass(frozen=True)
class PathStep:
    """One link of a critical path: a span, or an attributed wait gap."""

    kind: str  # a span category, or "wait" for a dependence gap
    name: str
    resource: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Step length in simulated seconds."""
        return self.finish - self.start


@dataclass
class CriticalPath:
    """A contiguous chain of steps from t=0 to the clock horizon."""

    steps: List[PathStep] = field(default_factory=list)

    @property
    def start(self) -> float:
        """Where the path begins (0.0 for a full-program path)."""
        return self.steps[0].start if self.steps else 0.0

    @property
    def finish(self) -> float:
        """Where the path ends — the horizon it was extracted for."""
        return self.steps[-1].finish if self.steps else 0.0

    @property
    def length(self) -> float:
        """Total path time; equals the horizon minus the start exactly."""
        return self.finish - self.start

    def time_by_kind(self) -> Dict[str, float]:
        """Path time attributed per step kind (task, copy, wait, ...)."""
        out: Dict[str, float] = {}
        for step in self.steps:
            out[step.kind] = out.get(step.kind, 0.0) + step.duration
        return out


@dataclass
class ResourceUsage:
    """Utilization summary for one resource."""

    busy: float = 0.0  # union of busy-category spans
    busy_sum: float = 0.0  # plain sum of busy-category durations
    spans: int = 0
    nbytes: int = 0
    first_start: float = 0.0
    last_finish: float = 0.0
    gaps: List[Tuple[float, float]] = field(default_factory=list)


class Timeline:
    """The span recorder one profiling runtime appends to."""

    def __init__(self, name: str = "", meta: Optional[Dict[str, Any]] = None):
        self.name = name
        self.meta: Dict[str, Any] = dict(meta or {})
        # Column store: one parallel list per Span field.  Recording
        # appends seven primitives instead of constructing a Span
        # object, and save() serializes the columns directly; Span
        # objects only materialize lazily via the ``spans`` property
        # when an analysis pass actually needs them.
        self._cols: Tuple[list, ...] = ([], [], [], [], [], [], [])
        self._spans_cache: Optional[List[Span]] = None
        # The latest sync-point clock the owning runtime observed
        # (Runtime.elapsed()/barrier() note it here) so offline
        # analysis of a saved log uses the exact program horizon.
        self.horizon = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        resource: str,
        name: str,
        start: float,
        finish: float,
        nbytes: int = 0,
        flops: float = 0.0,
    ) -> None:
        """Append one span (times on the simulated clock)."""
        cols = self._cols
        cols[0].append(category)
        cols[1].append(resource)
        cols[2].append(name)
        cols[3].append(start)
        cols[4].append(finish)
        cols[5].append(int(nbytes))
        cols[6].append(float(flops))
        self._spans_cache = None

    @property
    def spans(self) -> List[Span]:
        """The recorded spans, materialized (and cached) on demand."""
        cache = self._spans_cache
        if cache is None:
            cache = [Span(*row) for row in zip(*self._cols)]
            self._spans_cache = cache
        return cache

    def as_arrays(self) -> Dict[str, Any]:
        """The span log as NumPy arrays (offline/batched analysis).

        ``category``/``resource``/``name`` are object arrays;
        ``start``/``finish``/``flops`` are float64; ``nbytes`` int64.
        """
        import numpy as np

        cols = self._cols
        return {
            "category": np.asarray(cols[0], dtype=object),
            "resource": np.asarray(cols[1], dtype=object),
            "name": np.asarray(cols[2], dtype=object),
            "start": np.asarray(cols[3], dtype=np.float64),
            "finish": np.asarray(cols[4], dtype=np.float64),
            "nbytes": np.asarray(cols[5], dtype=np.int64),
            "flops": np.asarray(cols[6], dtype=np.float64),
        }

    def note_horizon(self, t: float) -> None:
        """Record a sync-point clock reading (keeps the max)."""
        if t > self.horizon:
            self.horizon = t

    def __len__(self) -> int:
        return len(self._cols[0])

    def resources(self) -> List[str]:
        """Every resource that recorded at least one span, sorted."""
        return sorted(set(self._cols[1]))

    # ------------------------------------------------------------------
    # Utilization and gap analysis
    # ------------------------------------------------------------------
    def utilization(self) -> Dict[str, ResourceUsage]:
        """Per-resource busy time, span counts, bytes and idle gaps.

        ``busy`` is the *union* of busy-category spans; ``busy_sum`` is
        their plain sum.  The two are equal exactly when no resource is
        double-booked — the span-conservation invariant.
        """
        by_resource: Dict[str, List[Span]] = {}
        out: Dict[str, ResourceUsage] = {}
        for span in self.spans:
            if span.category in BUSY_CATEGORIES:
                by_resource.setdefault(span.resource, []).append(span)
        for resource, spans in by_resource.items():
            spans.sort(key=lambda s: (s.start, s.finish))
            usage = ResourceUsage(
                busy_sum=sum(s.duration for s in spans),
                spans=len(spans),
                nbytes=sum(s.nbytes for s in spans),
                first_start=spans[0].start,
                last_finish=max(s.finish for s in spans),
            )
            # Merge into a union, collecting the idle gaps between
            # occupied intervals.
            cur_start, cur_finish = spans[0].start, spans[0].finish
            for span in spans[1:]:
                if span.start > cur_finish:
                    usage.gaps.append((cur_finish, span.start))
                    usage.busy += cur_finish - cur_start
                    cur_start, cur_finish = span.start, span.finish
                else:
                    cur_finish = max(cur_finish, span.finish)
            usage.busy += cur_finish - cur_start
            usage.gaps.sort(key=lambda g: g[0] - g[1])  # largest first
            out[resource] = usage
        return out

    # ------------------------------------------------------------------
    # Critical path
    # ------------------------------------------------------------------
    def critical_path(self, horizon: Optional[float] = None) -> CriticalPath:
        """The activity chain whose finish times produced ``horizon``.

        Every modeled start time is the max over its dependences' finish
        times, so the dependence edge into any instant ``t`` is exactly
        a span finishing at ``t``: the path is extracted by walking the
        clock backward from the horizon — at each point following the
        span that finishes there (ties broken toward the latest start,
        the binding dependence), and attributing any gap down to the
        next span finish as ``wait`` (launch gaps, shard overheads,
        backoff pauses).  The result is contiguous from 0 to the
        horizon, so its length equals ``Runtime.elapsed()`` *exactly* —
        no floating-point re-summation.
        """
        spans = sorted(
            (s for s in self.spans if s.finish > s.start),
            key=lambda s: s.finish,
        )
        finishes = [s.finish for s in spans]
        if horizon is None:
            horizon = self.horizon or (finishes[-1] if finishes else 0.0)
        steps: List[PathStep] = []
        cur = horizon
        while cur > 0.0:
            lo = bisect.bisect_left(finishes, cur)
            hi = bisect.bisect_right(finishes, cur)
            ending_here = [s for s in spans[lo:hi] if s.start < cur]
            if ending_here:
                span = max(ending_here, key=lambda s: s.start)
                steps.append(
                    PathStep(
                        span.category, span.name, span.resource, span.start, cur
                    )
                )
                cur = span.start
                continue
            if lo == 0:
                steps.append(PathStep("wait", "start", "", 0.0, cur))
                break
            prev_finish = finishes[lo - 1]
            steps.append(PathStep("wait", "dependence", "", prev_finish, cur))
            cur = prev_finish
        steps.reverse()
        return CriticalPath(steps)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The span log as a Chrome-trace (Perfetto-loadable) object.

        One process, one thread per resource, complete (``"ph": "X"``)
        events with microsecond timestamps.
        """
        resources = self.resources()
        tid = {r: i + 1 for i, r in enumerate(resources)}
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 0,
                "name": "process_name",
                "args": {"name": f"repro:{self.name or 'runtime'}"},
            }
        ]
        for resource in resources:
            events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": tid[resource],
                    "name": "thread_name",
                    "args": {"name": resource},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "name": span.name or span.category,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": tid[span.resource],
                    "args": {"nbytes": span.nbytes, "flops": span.flops},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

    def save(self, path: str) -> None:
        """Write the native span log (lossless; see :meth:`load`)."""
        payload = {
            "version": 1,
            "name": self.name,
            "meta": self.meta,
            "horizon": self.horizon,
            # Serialized straight from the column store: identical
            # row-major [category, resource, name, start, finish,
            # nbytes, flops] rows, no Span materialization.
            "spans": [list(row) for row in zip(*self._cols)],
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)

    @classmethod
    def load(cls, path: str) -> "Timeline":
        """Read a span log written by :meth:`save`."""
        with open(path) as fh:
            payload = json.load(fh)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported span-log version {payload.get('version')!r}")
        timeline = cls(name=payload.get("name", ""), meta=payload.get("meta"))
        timeline.horizon = float(payload.get("horizon", 0.0))
        for cat, res, name, start, finish, nbytes, flops in payload["spans"]:
            timeline.record(
                cat, res, name, float(start), float(finish), int(nbytes), flops
            )
        return timeline

    # ------------------------------------------------------------------
    # ASCII summary
    # ------------------------------------------------------------------
    def format_ascii(
        self,
        horizon: Optional[float] = None,
        top: int = 3,
        max_rows: int = 24,
    ) -> str:
        """A one-screen profile: utilization, gaps, critical path.

        At large scale (192 GPUs means hundreds of channels) the table
        keeps the ``max_rows`` busiest resources and summarizes the rest.
        """
        usage = self.utilization()
        if horizon is None:
            horizon = self.horizon or max(
                (u.last_finish for u in usage.values()), default=0.0
            )
        lines = [
            f"timeline {self.name or 'runtime'}: {len(self.spans)} spans, "
            f"{len(usage)} busy resources, horizon {horizon:.6f}s"
        ]
        width = max([len(r) for r in usage] + [8])
        lines.append(
            f"{'resource'.ljust(width)} {'busy(s)':>10} {'util':>6} "
            f"{'spans':>6} {'bytes':>14}"
        )
        ranked = sorted(usage, key=lambda r: -usage[r].busy)
        for resource in ranked[:max_rows]:
            u = usage[resource]
            util = u.busy / horizon if horizon > 0 else 0.0
            lines.append(
                f"{resource.ljust(width)} {u.busy:>10.6f} {util:>5.1%} "
                f"{u.spans:>6} {u.nbytes:>14,}"
            )
        if len(ranked) > max_rows:
            rest = ranked[max_rows:]
            busy = sum(usage[r].busy for r in rest)
            nbytes = sum(usage[r].nbytes for r in rest)
            lines.append(
                f"{f'... {len(rest)} more'.ljust(width)} {busy:>10.6f} "
                f"{'':>6} {sum(usage[r].spans for r in rest):>6} "
                f"{nbytes:>14,}"
            )
        gap_lines = []
        for resource in sorted(usage):
            for gap_start, gap_finish in usage[resource].gaps[:1]:
                gap_lines.append(
                    (gap_finish - gap_start, resource, gap_start, gap_finish)
                )
        gap_lines.sort(reverse=True)
        if gap_lines:
            lines.append(f"largest idle gaps (top {top}):")
            for length, resource, gap_start, gap_finish in gap_lines[:top]:
                lines.append(
                    f"  {resource}: {length:.6f}s idle "
                    f"[{gap_start:.6f}, {gap_finish:.6f}]"
                )
        path = self.critical_path(horizon)
        if path.steps:
            by_kind = sorted(
                path.time_by_kind().items(), key=lambda kv: -kv[1]
            )
            breakdown = " | ".join(
                f"{kind} {t / path.length:.1%}" for kind, t in by_kind if t > 0
            )
            lines.append(
                f"critical path: {path.length:.6f}s over {len(path.steps)} "
                f"steps = {breakdown}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide default and the active-timeline registry
# ----------------------------------------------------------------------
# Mirrors repro.analysis.recorder: the default answers "should a new
# RuntimeConfig profile?", and every profiling runtime registers its
# timeline so harnesses can export traces from runtimes created deep
# inside library code (the figure experiments build their runtimes
# internally).
_PROFILE_DEFAULT: Optional[bool] = None  # None -> consult REPRO_PROFILE

_ACTIVE: List[Timeline] = []
_MAX_TIMELINES = 256


def profile_default() -> bool:
    """Whether new RuntimeConfigs record a timeline by default."""
    if _PROFILE_DEFAULT is not None:
        return _PROFILE_DEFAULT
    return os.environ.get("REPRO_PROFILE", "").strip() not in ("", "0")


def set_profile_default(enabled: Optional[bool]) -> Optional[bool]:
    """Override the process default (None defers to ``REPRO_PROFILE``);
    returns the previous override for restoring."""
    global _PROFILE_DEFAULT
    previous = _PROFILE_DEFAULT
    _PROFILE_DEFAULT = enabled
    return previous


def register(timeline: Timeline) -> Timeline:
    """Track a profiling runtime's timeline for later export."""
    if len(_ACTIVE) >= _MAX_TIMELINES:
        _ACTIVE.pop(0)
    _ACTIVE.append(timeline)
    return timeline


def active_timelines() -> List[Timeline]:
    """All registered timelines (oldest first)."""
    return list(_ACTIVE)


def drain_timelines() -> List[Timeline]:
    """Return and forget all registered timelines."""
    out = list(_ACTIVE)
    _ACTIVE.clear()
    return out
