"""Logical regions: the distributed data structures of the runtime.

A region is a 1-D or 2-D array with a dtype.  The *numerical truth* of a
region lives in a single NumPy array (kernels compute on views of it, so
results are exact); the *distributed placement* of a region — which
memories hold which sub-rectangles, and when they became valid — is
tracked separately by the runtime's coherence layer.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from repro.geometry import Rect

_uid = itertools.count()


class Region:
    """A logical region backed by a NumPy array."""

    __slots__ = (
        "uid", "shape", "dtype", "data", "name", "_runtime", "mem_scale",
        "_rect", "_nbytes", "__weakref__",
    )

    def __init__(
        self,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        data: Optional[np.ndarray] = None,
        name: str = "",
        runtime=None,
    ):
        if len(shape) not in (1, 2):
            raise ValueError(f"regions are 1-D or 2-D, got shape {shape}")
        self.uid = next(_uid)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        if data is None:
            data = np.zeros(self.shape, dtype=self.dtype)
        else:
            data = np.asarray(data, dtype=self.dtype)
            if data.shape != self.shape:
                raise ValueError(
                    f"data shape {data.shape} does not match region shape {self.shape}"
                )
            if not data.flags.writeable or not data.flags.c_contiguous:
                data = np.ascontiguousarray(data)
        self.data = data
        self.name = name or f"region{self.uid}"
        self._runtime = runtime
        # Memoized full-index rect (shape is immutable after init).
        self._rect = Rect.from_shape(self.shape)
        self._nbytes = None
        # Per-region memory magnification override; None uses the
        # runtime's data_scale.  Benchmarks use this when different
        # problem axes (ratings vs. users vs. items) shrink by
        # different factors in the reduced build.
        self.mem_scale = None

    @property
    def ndim(self) -> int:
        """Number of dimensions (1 or 2)."""
        return len(self.shape)

    @property
    def rect(self) -> Rect:
        """The full index rect."""
        return self._rect

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Logical size in bytes (memoized; shape is immutable)."""
        nb = self._nbytes
        if nb is None:
            nb = self._nbytes = (
                int(np.prod(self.shape, dtype=np.int64)) * self.itemsize
            )
        return nb

    def view(self, rect: Rect) -> np.ndarray:
        """A writable view of the backing array restricted to ``rect``."""
        return self.data[rect.slices()]

    def destroy(self) -> None:
        """Release physical instances; called when the frontend drops us."""
        if self._runtime is not None:
            self._runtime.free_region(self)
            self._runtime = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown ordering
        try:
            self.destroy()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.name}, shape={self.shape}, dtype={self.dtype})"
