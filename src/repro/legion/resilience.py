"""Resilience 2.0: replicated checkpoint stores and the recovery planner.

PR 4's checkpoint lived in exactly one memory — node-0 sysmem — so that
memory was a single point of failure: ``Runtime._recover`` had to raise
an unconditional :class:`FaultError` the moment it was lost.  This
module removes the single point of failure the way real distributed
runtimes do (Legion resilient-mode checkpointing, checkpoint/restart
for large training jobs): each checkpoint epoch's snapshot pieces are
*replicated* into the sysmems of ``ChaosConfig.ckpt_replicas`` distinct
fault domains, and recovery re-sources every needed piece from the
cheapest surviving replica via the machine model.

Three pieces, all pure policy/planning (the runtime owns the clocks and
issues the actual modeled copies):

:func:`place_stores`
    The replica placement policy: one sysmem per node, ascending node
    id, node 0 first — so ``replicas=1`` reproduces the original
    single-store behaviour bit for bit.

:class:`CheckpointManifest`
    What the last epoch protects: per-region snapshots of the written
    set at checkpoint time.  Recovery needs this to distinguish "piece
    the snapshot must supply" from "piece the journal replay will
    re-write anyway".

:func:`plan_recovery`
    The recovery planner: for every protected piece the replay will
    not re-write, cover it in each surviving store from the cheapest
    surviving source (modeled channel latency + bandwidth).  A piece
    valid in *no* surviving memory raises :class:`FaultError` naming
    the region and rect — the "all replicas gone" condition, and the
    only unrecoverable outcome at ``replicas >= 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.geometry import Rect, RectSet
from repro.legion.coherence import RegionCoherence
from repro.legion.exceptions import FaultError
from repro.legion.partition import Tiling
from repro.legion.privilege import Privilege
from repro.machine import Memory, MemoryKind


# ----------------------------------------------------------------------
# Replica placement
# ----------------------------------------------------------------------
def place_stores(
    machine,
    replicas: int = 1,
    exclude_nodes: Iterable[int] = (),
) -> List[Memory]:
    """Pick checkpoint stores: sysmems of ``replicas`` distinct nodes.

    A node is one fault domain (a node loss takes every memory on it),
    so spreading replicas across nodes is what buys survival.  Policy:
    ascending node id with node 0 first — ``replicas=1`` therefore
    yields exactly the original node-0 store.  Nodes in
    ``exclude_nodes`` (dead in the current recovery) are skipped; the
    effective replica count is ``min(replicas, surviving domains)`` and
    an empty list means no domain can host a store at all.
    """
    excluded = set(exclude_nodes)
    by_node: Dict[int, Memory] = {}
    for mem in machine.memories:
        if mem.kind != MemoryKind.SYSMEM or mem.node in excluded:
            continue
        if mem.node not in by_node:
            by_node[mem.node] = mem
    return [by_node[n] for n in sorted(by_node)][: max(replicas, 1)]


def transfer_cost(machine, src: Memory, dst: Memory, nbytes: int) -> float:
    """Modeled seconds to move ``nbytes`` from ``src`` to ``dst``.

    Planning heuristic only — latency plus bytes over the narrowest
    channel, ignoring occupancy (the runtime's ``_copy`` charges the
    real schedule).  Deterministic, so source selection is too.
    """
    if src.uid == dst.uid:
        return 0.0
    channels = machine.channels_between(src, dst)
    latency = sum(c.latency for c in channels)
    bandwidth = min(c.bandwidth for c in channels)
    return latency + nbytes / bandwidth


# ----------------------------------------------------------------------
# Checkpoint manifest
# ----------------------------------------------------------------------
@dataclass
class CheckpointManifest:
    """Per-region written sets captured by the last checkpoint epoch."""

    # region uid -> (name, written rects at snapshot time)
    pieces: Dict[int, Tuple[str, RectSet]] = field(default_factory=dict)

    def record(self, region_uid: int, name: str, written: RectSet) -> None:
        """Protect ``written`` (already a private copy) for one region."""
        if not written.is_empty():
            self.pieces[region_uid] = (name, written)

    def drop(self, region_uid: int) -> None:
        """Forget a freed region (nothing downstream can read it)."""
        self.pieces.pop(region_uid, None)

    def protected_volume(self) -> int:
        """Total protected elements (itemsize-agnostic)."""
        return sum(rs.volume() for _, rs in self.pieces.values())


def journal_write_coverage(
    journal: Sequence, freed_uids: Set[int]
) -> Dict[int, RectSet]:
    """Rects the journaled tasks re-write during replay, per region uid.

    Recovery need not restore these from a replica: replay re-marks
    them valid on the writing memories.  The coverage must never
    over-approximate (claiming a piece is re-written when replay leaves
    it invalid would lose it); under-approximation merely restores more
    than strictly needed.  Non-REDUCE writes mark exactly the partition
    rects.  REDUCE folds mark every non-empty *owner* tile written
    regardless of which contributions overlap it, so the owner
    partition — not the contribution rects — is the exact coverage.
    """
    coverage: Dict[int, RectSet] = {}
    for task in journal:
        for req in task.requirements:
            if not req.privilege.writes or req.region.uid in freed_uids:
                continue
            rs = coverage.setdefault(req.region.uid, RectSet())
            if req.privilege == Privilege.REDUCE:
                owner = task.fold_partition or Tiling.create(
                    req.region, task.color_count
                )
                colors = owner.color_count
                rect_of = owner.rect
            else:
                colors = task.color_count
                rect_of = req.partition.rect
            for color in range(colors):
                rect = rect_of(color)
                if not rect.is_empty():
                    rs.add(rect)
    return coverage


# ----------------------------------------------------------------------
# Recovery planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RestoreStep:
    """One planned replica-restoring copy (unscaled bytes)."""

    region_uid: int
    region_name: str
    rect: Rect
    src_uid: int
    dst_uid: int
    nbytes: int
    ready: float  # source piece availability time


def plan_recovery(
    manifest: CheckpointManifest,
    coherence: Dict[int, RegionCoherence],
    rewritten: Dict[int, RectSet],
    stores: Sequence[Memory],
    machine,
    memory_by_uid: Callable[[int], Memory],
    region_meta: Dict[int, Tuple[str, int]],
) -> List[RestoreStep]:
    """Plan the copies that re-establish every store's replica set.

    For each manifest piece the replay will not re-write, each
    surviving store missing it is re-sourced from the *cheapest*
    surviving valid copy (``transfer_cost`` over the machine model;
    ties break on memory uid for determinism).  Raises
    :class:`FaultError` naming the region and rect when some needed
    piece is valid in no surviving memory — all replicas of it are
    gone, the one unrecoverable outcome.
    """
    steps: List[RestoreStep] = []
    for uid, (name, protected) in manifest.pieces.items():
        coh = coherence.get(uid)
        if coh is None:
            continue  # freed since the epoch; nothing can read it
        needed = protected
        replayed = rewritten.get(uid)
        if replayed is not None:
            needed = needed.subtract(replayed)
        if needed.is_empty():
            continue
        _, itemsize = region_meta.get(uid, (name, 8))
        for store in stores:
            missing = needed.subtract(coh.valid_set(store.uid))
            for rect in missing.rects():
                steps.extend(
                    _cover_from_cheapest(
                        uid, name, rect, coh, store, machine,
                        memory_by_uid, itemsize,
                    )
                )
    return steps


def _cover_from_cheapest(
    region_uid: int,
    name: str,
    rect: Rect,
    coh: RegionCoherence,
    store: Memory,
    machine,
    memory_by_uid: Callable[[int], Memory],
    itemsize: int,
) -> List[RestoreStep]:
    """Cover ``rect`` at ``store`` from surviving copies, cheapest first."""
    # Rank every memory holding any validity by the modeled cost of one
    # element's transfer to the store; the greedy cover then prefers
    # e.g. an intra-node sysmem or NVLink-reachable framebuffer over a
    # NIC hop to a remote replica.
    candidates = []
    for mem_uid, pieces in coh.valid.items():
        if mem_uid == store.uid or not pieces:
            continue
        cost = transfer_cost(machine, memory_by_uid(mem_uid), store, itemsize)
        candidates.append((cost, mem_uid, pieces))
    candidates.sort(key=lambda c: (c[0], c[1]))
    remaining = [rect]
    steps: List[RestoreStep] = []
    for _, mem_uid, pieces in candidates:
        if not remaining:
            break
        for piece in pieces:
            nxt: List[Rect] = []
            for want in remaining:
                part = want.intersect(piece.rect)
                if part.is_empty():
                    nxt.append(want)
                else:
                    steps.append(
                        RestoreStep(
                            region_uid, name, part, mem_uid, store.uid,
                            part.volume() * itemsize, piece.ready_time,
                        )
                    )
                    nxt.extend(want.subtract(part))
            remaining = nxt
            if not remaining:
                break
    if remaining:
        raise FaultError(
            f"all replicas of region {name or region_uid!r} piece "
            f"{remaining[0]} are gone: no surviving memory holds a valid "
            f"copy (checkpoint-protected data was lost in every fault "
            f"domain that held it)"
        )
    return steps
