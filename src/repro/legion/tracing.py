"""Trace capture and replay: the paper's cited future-work optimization.

The paper attributes the GMG and quantum workloads' single-GPU gap to
Legate's per-task launching overheads and points to *dynamic tracing*
(Lee et al., SC '18) and task fusion as the fix.  This module implements
the tracing half: a :class:`Trace` context watches the launches issued
inside it; once the same sequence has been captured, replaying it skips
the Python-side constraint solving and metadata management, charging the
much smaller replay overhead per task instead.

Usage (idiomatic Legion tracing)::

    trace = Trace(runtime, "cg-iteration")
    for it in range(iters):
        with trace:
            ...   # the loop body: identical launch sequence each time

Correctness is unaffected — kernels always execute; only the modeled
launch overhead changes.  The speedup is measured in
``benchmarks/test_tracing.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.legion.runtime import Runtime

# Replaying a memoized trace costs a fraction of a full dynamic launch
# (Legion replays the cached dependence analysis).
TRACE_REPLAY_FRACTION = 0.15


class Trace:
    """Capture-then-replay scope for a repeated launch sequence."""

    def __init__(self, runtime: Runtime, name: str = "trace"):
        self.runtime = runtime
        self.name = name
        self._captured: Optional[List[str]] = None
        self._recording: Optional[List[str]] = None
        self._active = False
        self._diverged = False
        self.replays = 0
        self.captures = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "Trace":
        if self._active:
            raise RuntimeError("trace scopes do not nest")
        # Launches deferred before the trace opened belong outside it:
        # flush so the capture records only the body's sequence.
        self.runtime.flush_window()
        self._active = True
        self._diverged = False
        self._recording = []
        self.runtime._trace_hook = self._on_launch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush while the hook is still installed: launches deferred
        # inside the body are part of the trace (and must be recorded
        # with their fused names, which are deterministic per window
        # shape — so replays of a fused body still match).
        try:
            self.runtime.flush_window()
        finally:
            self.runtime._trace_hook = None
            self._active = False
        recorded = self._recording or []
        self._recording = None
        if exc_type is not None:
            return
        if self._captured is None:
            self._captured = recorded
            self.captures += 1
        elif recorded == self._captured and not self._diverged:
            self.replays += 1
        else:
            # The body diverged: re-capture (Legion would abort the
            # trace; we degrade gracefully and re-record).
            self._captured = recorded
            self.captures += 1

    # ------------------------------------------------------------------
    def _on_launch(self, task_name: str) -> float:
        """Called by the runtime per launch; returns the overhead factor."""
        assert self._recording is not None
        idx = len(self._recording)
        self._recording.append(task_name)
        if (
            not self._diverged
            and self._captured is not None
            and idx < len(self._captured)
            and self._captured[idx] == task_name
        ):
            return TRACE_REPLAY_FRACTION
        if self._captured is not None:
            # First mismatch: the rest of this body executes at full
            # dynamic cost (the captured trace no longer applies).
            self._diverged = True
        return 1.0

    @property
    def is_captured(self) -> bool:
        """Whether a launch sequence has been recorded."""
        return self._captured is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, captured={self.is_captured}, "
            f"replays={self.replays})"
        )
