"""Execution counters: tasks, copies by channel kind, allreduces, memory.

The integration tests assert the paper's §4.3 steady-state behaviour (only
one-element halo copies per iteration) directly against these counters,
and the weak-scaling harness reads communication volumes out of them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple


def _channel_kind(name: str) -> str:
    return name.split("[", 1)[0]


@dataclass
class Profiler:
    """Execution counters (tasks, copies, allreduces, resizes)."""
    tasks_launched: int = 0
    shards_executed: int = 0
    fills: int = 0
    allreduces: int = 0
    resize_copies: int = 0
    resize_bytes: int = 0
    # Automatic task fusion (repro.legion.fusion): fused groups executed,
    # sub-launches merged away (group size minus the one launch that
    # remains), temporaries elided, and the total launch overhead charged
    # on the issue clock.
    fused_tasks: int = 0
    tasks_fused_away: int = 0
    regions_elided: int = 0
    # Kernel fusion (repro.analysis.depend): fused groups the dependence
    # analyzer proved merge-safe and executed as one generated loop
    # nest, and elided temporaries whose backing stores were skipped
    # entirely (dead after the window — the array never materializes).
    kernel_merges: int = 0
    nest_temps_eliminated: int = 0
    launch_overhead_seconds: float = 0.0
    # Modeled kernel execution time summed over every shard (the format
    # selector's ``total_seconds`` replays exactly this accumulation;
    # the agreement test in tests/analysis diffs the two).
    kernel_seconds: float = 0.0
    # Resilience (repro.legion.chaos): injected faults by kind
    # ("copy", "alloc", "gpu-loss", "node-loss"), retries performed,
    # simulated backoff time, spill-policy evictions/spills, checkpoint
    # traffic, and tasks re-executed by journal replay after a loss.
    faults_injected: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    retries: int = 0
    backoff_seconds: float = 0.0
    evictions: int = 0
    eviction_bytes: int = 0
    spills: int = 0
    spill_bytes: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    tasks_reexecuted: int = 0
    # Resilience 2.0 (repro.legion.resilience): checkpoint bytes copied
    # to replica stores beyond the primary, recovery rounds executed
    # (>1 per _recover call means a nested fault restarted the replay),
    # replica-restoring copies planned by the recovery planner, and the
    # modeled failure detector's confirmations plus total suspected->
    # confirmed latency charged on the issue clock.
    replication_bytes: int = 0
    recoveries: int = 0
    restores: int = 0
    restore_bytes: int = 0
    detections: int = 0
    detection_seconds: float = 0.0
    # Serving layer (repro.serve): cross-request SpMV batches executed
    # as one multi-RHS launch (covering >= 2 requests), requests served
    # out of such a launch, result-cache hits/misses keyed on (matrix
    # version, input hash), and admission-control rejections from
    # bounded tenant queues.
    spmv_batches: int = 0
    spmv_batched_requests: int = 0
    serve_cache_hits: int = 0
    serve_cache_misses: int = 0
    serve_rejections: int = 0
    copy_count: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    copy_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    task_counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    # Host fast path (repro.legion.fastpath): wall-clock seconds the
    # host process spent per runtime phase ("window-flush",
    # "dependence", "constraint-solve", "mapping", "event-advance") and
    # cache hit/miss counters (lookup_hits/lookup_misses for the
    # instance lookup cache, solve_hits/solve_misses for the
    # constraint-solve memo, batched_writes for coherence writes
    # applied via write_complete).  Host phases measure real time on
    # the machine running the simulation, not simulated time.
    host_phase_seconds: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    fastpath_counters: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    events: List[Tuple[str, float, float]] = field(default_factory=list)
    record_events: bool = False

    # ------------------------------------------------------------------
    def record_task(self, name: str, shards: int) -> None:
        """Count one launch of `shards` shards."""
        self.tasks_launched += 1
        self.shards_executed += shards
        self.task_counts[name] += shards

    def record_fill(self) -> None:
        """Count one fill operation."""
        self.fills += 1

    def record_copy(self, channel_name: str, nbytes: int) -> None:
        """Count a copy on a channel (bytes at full scale)."""
        kind = _channel_kind(channel_name)
        self.copy_count[kind] += 1
        self.copy_bytes[kind] += nbytes

    def record_resize(self, nbytes: int) -> None:
        """Count an intra-memory instance migration."""
        self.resize_copies += 1
        self.resize_bytes += nbytes

    def record_allreduce(self) -> None:
        """Count one scalar allreduce."""
        self.allreduces += 1

    def record_fusion(self, group_size: int, elided: int) -> None:
        """Count one fused group of ``group_size`` sub-launches."""
        self.fused_tasks += 1
        self.tasks_fused_away += group_size - 1
        self.regions_elided += elided

    def record_kernel_merge(self, group_size: int, temps_eliminated: int) -> None:
        """Count one merge-safe group executed as a single loop nest."""
        self.kernel_merges += 1
        self.nest_temps_eliminated += temps_eliminated

    def record_launch_overhead(self, seconds: float) -> None:
        """Accumulate issue-clock launch overhead."""
        self.launch_overhead_seconds += seconds

    def record_fault(self, kind: str) -> None:
        """Count one injected fault (copy, alloc, gpu-loss, node-loss)."""
        self.faults_injected[kind] += 1

    def record_retry(self, backoff: float) -> None:
        """Count one retry and its simulated backoff time."""
        self.retries += 1
        self.backoff_seconds += backoff

    def record_eviction(self, nbytes: int) -> None:
        """Count a clean-instance eviction under memory pressure."""
        self.evictions += 1
        self.eviction_bytes += int(nbytes)

    def record_spill(self, nbytes: int) -> None:
        """Count a dirty-instance spill to system memory."""
        self.spills += 1
        self.spill_bytes += int(nbytes)

    def record_checkpoint(self, nbytes: int) -> None:
        """Count one checkpoint epoch and its snapshot traffic."""
        self.checkpoints += 1
        self.checkpoint_bytes += int(nbytes)

    def record_reexecution(self, count: int = 1) -> None:
        """Count tasks re-executed by post-loss journal replay."""
        self.tasks_reexecuted += count

    def record_replication(self, nbytes: int) -> None:
        """Count checkpoint traffic to replica stores beyond the primary."""
        self.replication_bytes += int(nbytes)

    def record_recovery(self) -> None:
        """Count one recovery round (wipe, re-plan, replay)."""
        self.recoveries += 1

    def record_restore(self, nbytes: int, steps: int = 1) -> None:
        """Count replica-restoring copies planned by recovery."""
        self.restores += steps
        self.restore_bytes += int(nbytes)

    def record_detection(self, latency: float) -> None:
        """Count one confirmed loss and its modeled detection latency."""
        self.detections += 1
        self.detection_seconds += latency

    def record_spmv_batch(self, requests: int) -> None:
        """Count one multi-RHS SpMV launch batching ``requests`` RHS."""
        self.spmv_batches += 1
        self.spmv_batched_requests += requests

    def record_serve_cache(self, hit: bool) -> None:
        """Count one serving result-cache lookup."""
        if hit:
            self.serve_cache_hits += 1
        else:
            self.serve_cache_misses += 1

    def record_serve_rejection(self) -> None:
        """Count one admission-control rejection (tenant queue full)."""
        self.serve_rejections += 1

    def record_host_phase(self, phase: str, seconds: float) -> None:
        """Accumulate host wall-clock time spent in a runtime phase."""
        self.host_phase_seconds[phase] += seconds

    def record_event(self, name: str, start: float, finish: float) -> None:
        """Record a (name, start, finish) event if enabled."""
        if self.record_events:
            self.events.append((name, start, finish))

    # ------------------------------------------------------------------
    def total_copy_bytes(self, kind: str | None = None) -> int:
        """Bytes copied, optionally for one channel kind."""
        if kind is not None:
            return self.copy_bytes.get(kind, 0)
        return sum(self.copy_bytes.values())

    def total_copies(self, kind: str | None = None) -> int:
        """Copy count, optionally for one channel kind."""
        if kind is not None:
            return self.copy_count.get(kind, 0)
        return sum(self.copy_count.values())

    def format_summary(self) -> str:
        """A human-readable one-screen summary for examples and tools."""
        lines = [
            f"tasks launched:   {self.tasks_launched} "
            f"({self.shards_executed} shards)",
            f"allreduces:       {self.allreduces}",
        ]
        if self.fills:
            lines.append(f"fills:            {self.fills}")
        if self.fused_tasks:
            lines.append(
                f"fusion:           {self.fused_tasks} fused groups "
                f"({self.tasks_fused_away} launches merged away, "
                f"{self.regions_elided} temporaries elided)"
            )
        if self.kernel_merges:
            lines.append(
                f"kernel fusion:    {self.kernel_merges} merged loop nests "
                f"({self.nest_temps_eliminated} temporaries never "
                f"materialized)"
            )
        if self.launch_overhead_seconds:
            lines.append(
                f"launch overhead:  {self.launch_overhead_seconds:.6f}s "
                f"(issue clock)"
            )
        if self.copy_bytes:
            moved = ", ".join(
                f"{kind}={self.copy_bytes[kind]:,}B/{self.copy_count[kind]}"
                for kind in sorted(self.copy_bytes)
                if self.copy_bytes[kind]
            )
            lines.append(f"copies:           {moved or 'none'}")
        if self.resize_copies:
            lines.append(
                f"instance resizes: {self.resize_copies} "
                f"({self.resize_bytes:,} bytes migrated)"
            )
        total_faults = sum(self.faults_injected.values())
        if total_faults or self.retries:
            kinds = ", ".join(
                f"{k}={v}" for k, v in sorted(self.faults_injected.items()) if v
            )
            lines.append(
                f"faults:           {total_faults} injected"
                + (f" ({kinds})" if kinds else "")
                + f", {self.retries} retries, "
                f"{self.backoff_seconds:.6f}s backoff"
            )
        if self.evictions or self.spills:
            lines.append(
                f"memory pressure:  {self.evictions} evictions "
                f"({self.eviction_bytes:,}B), {self.spills} spills "
                f"({self.spill_bytes:,}B)"
            )
        if self.checkpoints or self.tasks_reexecuted:
            lines.append(
                f"recovery:         {self.checkpoints} checkpoints "
                f"({self.checkpoint_bytes:,}B), "
                f"{self.tasks_reexecuted} tasks re-executed"
            )
        if self.replication_bytes or self.restores:
            lines.append(
                f"replication:      {self.replication_bytes:,}B to replica "
                f"stores, {self.restores} restores "
                f"({self.restore_bytes:,}B)"
            )
        if self.detections:
            lines.append(
                f"detection:        {self.detections} confirmed losses, "
                f"{self.detection_seconds:.6f}s suspected->confirmed"
            )
        if self.spmv_batches or self.serve_cache_hits or self.serve_rejections:
            lines.append(
                f"serving:          {self.spmv_batches} batched SpMV "
                f"launches ({self.spmv_batched_requests} requests), "
                f"cache {self.serve_cache_hits}/"
                f"{self.serve_cache_hits + self.serve_cache_misses} hits, "
                f"{self.serve_rejections} rejections"
            )
        if any(self.host_phase_seconds.values()):
            phases = ", ".join(
                f"{k}={v:.3f}s"
                for k, v in sorted(self.host_phase_seconds.items())
                if v
            )
            lines.append(f"host phases:      {phases}")
        if any(self.fastpath_counters.values()):
            caches = ", ".join(
                f"{k}={v}"
                for k, v in sorted(self.fastpath_counters.items())
                if v
            )
            lines.append(f"fastpath caches:  {caches}")
        top = sorted(self.task_counts.items(), key=lambda kv: -kv[1])[:5]
        if top:
            lines.append("hottest tasks:")
            for name, count in top:
                lines.append(f"  {count:>6}  {name}")
        return "\n".join(lines)

    def snapshot(self) -> "Profiler":
        """A frozen copy, for differencing across program phases.

        Fields are enumerated with :func:`dataclasses.fields`, so a
        newly added counter is carried automatically (the drift-guard
        test in ``tests/legion/test_profiler.py`` enforces this).
        """
        snap = Profiler()
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = defaultdict(int, value)
            elif isinstance(value, list):
                value = list(value)
            setattr(snap, f.name, value)
        return snap

    def since(self, snap: "Profiler") -> "Profiler":
        """Counter deltas relative to an earlier :meth:`snapshot`.

        Numeric fields subtract; dict counters diff over the union of
        their keys; the ``events`` list (and any future list field) is
        the tail appended since the snapshot — events are append-only,
        so phase differencing keeps the timeline instead of losing it.
        Non-counter fields (``record_events``) copy the current value.
        """
        delta = Profiler()
        for f in fields(self):
            cur, old = getattr(self, f.name), getattr(snap, f.name)
            if isinstance(cur, bool):  # bool is an int subclass: no delta
                value = cur
            elif isinstance(cur, (int, float)):
                value = cur - old
            elif isinstance(cur, dict):
                keys = set(cur) | set(old)
                value = defaultdict(
                    int, {k: cur.get(k, 0) - old.get(k, 0) for k in keys}
                )
            elif isinstance(cur, list):
                value = list(cur[len(old):])
            else:
                raise TypeError(
                    f"Profiler.since: field {f.name!r} has undiffable "
                    f"type {type(cur).__name__}"
                )
            setattr(delta, f.name, value)
        return delta
