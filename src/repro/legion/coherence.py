"""Per-memory validity tracking: the source of derived communication.

For every region, the runtime tracks *which rectangles of it are valid in
which memory*, each tagged with the simulated time the data became
available there.  Reads compute the missing pieces (``needed - valid``)
and generate copies from a memory that holds them; writes invalidate
every other memory's overlap.  This is the dynamic communication analysis
that makes the §4.3 halo exchange precise: in steady state only the
one-element halo of ``x`` is missing on each GPU, so only one element is
copied per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry import Rect, RectSet


def _disjoint(a: Rect, b: Rect) -> bool:
    """Allocation-free overlap precheck (regions are 1-D or 2-D)."""
    alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    if bhi[0] <= alo[0] or ahi[0] <= blo[0]:
        return True
    if len(alo) == 1:
        return False
    return bhi[1] <= alo[1] or ahi[1] <= blo[1]


@dataclass
class ValidPiece:
    """One valid rect with its availability time."""
    rect: Rect
    ready_time: float


@dataclass
class RegionCoherence:
    """Validity state of one region across all memories."""

    # memory uid -> list of disjoint valid pieces with availability times
    valid: Dict[int, List[ValidPiece]] = field(default_factory=dict)
    # rects ever written through any memory; reads of written data that
    # is not valid in the reading memory are *stale* — the independent
    # assertion validation mode checks after staging (repro.analysis).
    written: RectSet = field(default_factory=RectSet)

    # ------------------------------------------------------------------
    def pieces(self, memory_uid: int) -> List[ValidPiece]:
        """A memory's valid pieces (created on demand)."""
        return self.valid.setdefault(memory_uid, [])

    def valid_set(self, memory_uid: int) -> RectSet:
        """A memory's valid rects as a RectSet."""
        return RectSet([p.rect for p in self.pieces(memory_uid)])

    def missing(self, memory_uid: int, needed: Rect) -> List[Rect]:
        """Sub-rects of ``needed`` that are not valid in ``memory_uid``."""
        if needed.is_empty():
            return []
        remaining = [needed]
        for piece in self.pieces(memory_uid):
            # Pieces disjoint from ``needed`` cannot intersect any
            # remainder of it; skipping them leaves ``remaining``
            # identical (subtract would return each rect unchanged).
            if _disjoint(piece.rect, needed):
                continue
            nxt: List[Rect] = []
            for rect in remaining:
                nxt.extend(rect.subtract(piece.rect))
            remaining = nxt
            if not remaining:
                break
        return remaining

    def ready_time(self, memory_uid: int, needed: Rect) -> float:
        """Latest availability time of valid data overlapping ``needed``."""
        t = 0.0
        for piece in self.pieces(memory_uid):
            if piece.ready_time > t and not _disjoint(piece.rect, needed):
                t = piece.ready_time
        return t

    def find_source(self, rect: Rect, exclude: int) -> List[Tuple[int, Rect, float]]:
        """Cover ``rect`` with valid pieces from other memories.

        Returns ``(memory_uid, piece_rect, ready_time)`` fragments whose
        union covers ``rect``.  Pieces that exist nowhere (never-written
        data) are silently dropped — reading uninitialized data is legal
        and transfers nothing.
        """
        remaining = [rect]
        fragments: List[Tuple[int, Rect, float]] = []
        for mem_uid, pieces in self.valid.items():
            if mem_uid == exclude or not remaining:
                continue
            for piece in pieces:
                # Every remainder is inside ``rect``: a piece disjoint
                # from it contributes no fragment and leaves
                # ``remaining`` unchanged.
                if _disjoint(piece.rect, rect):
                    continue
                nxt: List[Rect] = []
                for want in remaining:
                    part = want.intersect(piece.rect)
                    if part.is_empty():
                        nxt.append(want)
                    else:
                        fragments.append((mem_uid, part, piece.ready_time))
                        nxt.extend(want.subtract(part))
                remaining = nxt
                if not remaining:
                    break
        return fragments

    # ------------------------------------------------------------------
    def mark_valid(self, memory_uid: int, rect: Rect, time: float) -> None:
        """Record that ``rect`` became valid in ``memory_uid`` at ``time``."""
        if rect.is_empty():
            return
        pieces = self.pieces(memory_uid)
        out: List[ValidPiece] = []
        for piece in pieces:
            if _disjoint(piece.rect, rect):
                out.append(piece)
                continue
            for leftover in piece.rect.subtract(rect):
                out.append(ValidPiece(leftover, piece.ready_time))
        out.append(ValidPiece(rect, time))
        self.valid[memory_uid] = out

    def stale(self, memory_uid: int, rect: Rect) -> List[Rect]:
        """Pieces of ``rect`` written somewhere but not valid here.

        Unwritten data is never stale: reading it is legal and
        transfers nothing (attach semantics, see :meth:`find_source`).
        """
        need = self.written.intersect_rect(rect)
        if need.is_empty():
            return []
        return need.subtract(self.valid_set(memory_uid)).rects()

    def mark_written(self, memory_uid: int, rect: Rect, time: float) -> None:
        """A write: valid here, invalid everywhere else (overlap)."""
        if rect.is_empty():
            return
        self.written.add(rect)
        for mem_uid in list(self.valid.keys()):
            if mem_uid == memory_uid:
                continue
            pieces = self.valid[mem_uid]
            # Rebuild lazily: a list no piece of which overlaps the
            # written rect is kept as-is (the rebuild would reproduce
            # it element for element).
            out: Optional[List[ValidPiece]] = None
            for idx, piece in enumerate(pieces):
                if _disjoint(piece.rect, rect):
                    if out is not None:
                        out.append(piece)
                    continue
                if out is None:
                    out = pieces[:idx]
                for leftover in piece.rect.subtract(rect):
                    out.append(ValidPiece(leftover, piece.ready_time))
            if out is not None:
                self.valid[mem_uid] = out
        self.mark_valid(memory_uid, rect, time)

    def write_complete(self, writes: List[Tuple[int, Rect, float]]) -> None:
        """Batched equivalent of per-color :meth:`mark_written` calls.

        ``writes`` is ``(memory_uid, rect, time)`` per color, in color
        order, empty rects omitted, where the rects are the tiles of a
        disjoint partition covering the whole region (the fast path's
        eligibility check, :func:`repro.legion.fastpath
        .eligible_write_reqs`, guarantees this).  Under that geometry
        the sequential slow path converges to a state independent of
        prior validity — every pre-existing piece is subtracted away
        tile by tile, each written memory ends holding exactly its own
        tiles in color order, and ``written`` receives the same
        per-tile add sequence — so one pass reproduces it exactly
        without the O(colors x memories) list rebuilds.
        """
        valid = self.valid
        for mem_uid in valid:
            valid[mem_uid] = []
        # Tiles of one disjoint partition: the batched written-set union
        # skips tile-vs-tile subtracts (identical outcome, O(n) not
        # O(n^2) — fresh regions pay the full scan on every first write
        # otherwise).
        self.written.add_disjoint(rect for _, rect, _ in writes)
        for mem_uid, rect, t in writes:
            lst = valid.get(mem_uid)
            if lst is None:
                lst = valid[mem_uid] = []
            lst.append(ValidPiece(rect, t))

    def invalidate(self, memory_uid: int, rect: Optional[Rect] = None) -> None:
        """Drop one memory's validity (all of it, or just ``rect``).

        This is how evictions, spills and simulated node losses are
        expressed: the data stops being *resident* there, while the
        ``written`` history is kept so reads of the dropped pieces must
        be re-justified by copies (or flagged stale).
        """
        if rect is None:
            self.valid.pop(memory_uid, None)
            return
        pieces = self.valid.get(memory_uid)
        if not pieces:
            return
        out: List[ValidPiece] = []
        for piece in pieces:
            if _disjoint(piece.rect, rect):
                out.append(piece)
                continue
            for leftover in piece.rect.subtract(rect):
                out.append(ValidPiece(leftover, piece.ready_time))
        self.valid[memory_uid] = out

    def only_copy(self, memory_uid: int, rect: Rect) -> RectSet:
        """Written pieces of ``rect`` whose *only* valid copy is here.

        These are the "dirty" bytes an eviction would lose — the spill
        policy must write them back (to system memory) before dropping
        the instance, where a clean instance can simply be discarded.
        """
        dirty = self.written.intersect_rect(rect).intersect(
            self.valid_set(memory_uid)
        )
        for mem_uid in self.valid:
            if mem_uid == memory_uid or dirty.is_empty():
                continue
            dirty = dirty.subtract(self.valid_set(mem_uid))
        return dirty

    def invalidate_all(self) -> None:
        """Forget all placement (data stays exact)."""
        self.valid.clear()
