"""A Legion-like task-based runtime with simulated distributed execution.

This package reproduces the slice of the Legion programming model that
Legate Sparse (SC '23) is built on:

* **Regions** (:mod:`repro.legion.region`) — multi-dimensional arrays that
  back both dense arrays and the component arrays of sparse matrices.
* **Partitions** (:mod:`repro.legion.partition`) — first-class mappings
  from colors to sub-rectangles, including the *image* dependent
  partitioning operation (by range and by coordinate, Fig. 2).
* **Tasks** (:mod:`repro.legion.task`) — privilege-carrying launches over
  partitioned regions.
* **Coherence & copies** (:mod:`repro.legion.coherence`) — per-memory
  validity tracking that derives precise, data-dependent communication,
  exactly the halo-exchange behaviour walked through in §4.3 of the paper.
* **Mapping** (:mod:`repro.legion.instance`) — physical instances with the
  shared allocation store and the coalescing heuristic of §4.2.
* **Runtime** (:mod:`repro.legion.runtime`) — dynamic dependence analysis
  plus a discrete-event simulated clock.  Numerics execute eagerly and
  exactly (verified against SciPy); *time* and *communication* are
  simulated against a machine model, which is how this reproduction
  regenerates the paper's Summit-scale weak-scaling results on one host.
"""

from repro.legion.chaos import ChaosConfig, ChaosInjector, LossSchedule
from repro.legion.exceptions import FaultError, LegionError, OutOfMemoryError
from repro.legion.future import Future
from repro.legion.partition import (
    ImageByCoordinate,
    ImageByRange,
    Partition,
    Replicate,
    Tiling,
)
from repro.legion.privilege import Privilege
from repro.legion.profiler import Profiler
from repro.legion.region import Region
from repro.legion.runtime import (
    Runtime,
    RuntimeConfig,
    get_runtime,
    runtime_scope,
    set_runtime,
)
from repro.legion.task import Pointwise, Requirement, ShardContext, TaskLaunch
from repro.legion.timeline import Span, Timeline
from repro.legion.tracing import Trace

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "FaultError",
    "Future",
    "Pointwise",
    "ImageByCoordinate",
    "ImageByRange",
    "LegionError",
    "LossSchedule",
    "OutOfMemoryError",
    "Partition",
    "Privilege",
    "Profiler",
    "Region",
    "Replicate",
    "Requirement",
    "Runtime",
    "RuntimeConfig",
    "ShardContext",
    "Span",
    "TaskLaunch",
    "Tiling",
    "Timeline",
    "Trace",
    "get_runtime",
    "runtime_scope",
    "set_runtime",
]
