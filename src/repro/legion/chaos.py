"""Deterministic fault injection: the runtime's chaos monkey.

Real Legion/Legate deployments see transient link errors, flaky
allocations and outright node losses; the paper's headline OOM results
(Fig. 11's 64-GPU point, Fig. 12's CuPy failures) show that behaviour at
the capacity cliff is a first-class result.  This module schedules
simulated faults on the discrete-event clock so the runtime's recovery
machinery (bounded retry with exponential backoff, checkpoint epochs and
journal replay — see :mod:`repro.legion.runtime`) can be exercised
*deterministically*: every fault schedule is a pure function of one
seed and the (deterministic) order of runtime operations, so a chaos
run is exactly reproducible and its solution is required to be
bitwise-identical to the fault-free run.

Configuration comes from :class:`ChaosConfig` — either constructed
directly and passed as ``RuntimeConfig(chaos=...)`` or parsed from the
``REPRO_CHAOS`` environment variable::

    REPRO_CHAOS="seed:7,copy:0.02,alloc:0.01,ckpt:32,lose-gpu:1@0.004"

Spec keys (comma separated, all optional):

``seed:N``
    RNG seed for the fault draws (default 0).
``copy:P``
    Per-copy probability of a transient link error (retried with
    exponential backoff on the simulated clock).
``alloc:P``
    Per-mapping probability of a transient allocation failure.
``retries:N``
    Retry budget before a transient fault becomes a
    :class:`~repro.legion.exceptions.FaultError` (default 6).
``backoff:S``
    Base backoff in simulated seconds; attempt ``k`` waits
    ``S * 2**(k-1)`` (default 1e-4).
``ckpt:N``
    Checkpoint every N task launches (0 = manual checkpoints only).
``replicas:K``
    Place each checkpoint epoch's snapshot in the sysmems of K
    distinct fault domains (nodes).  K=1 (the default) reproduces the
    original single-store behaviour: losing node 0's sysmem is fatal.
    With K>=2 recovery survives any loss pattern that leaves at least
    one replica of every needed piece.
``heartbeat:T``
    Heartbeat period of the modeled failure detector in simulated
    seconds.  A loss at time t is first *suspected* at the next
    heartbeat tick >= t (0, the default, suspects instantly).
``detect:T``
    Detection timeout: a suspected loss is *confirmed* T simulated
    seconds after suspicion; recovery cannot begin before
    confirmation, so the stall charges detection + recovery time.
``lose-gpu:IDX@T``
    Lose the IDX-th GPU processor of the runtime's scope (its
    framebuffer contents vanish) at simulated time T.
``lose-node:N@T``
    Lose node N (every memory on it) at simulated time T.

Every key also accepts ``key=value`` (the ISSUE-9 spelling); the two
separators may be mixed freely within one spec.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LossSchedule:
    """One scheduled whole-GPU or whole-node loss."""

    kind: str  # "gpu" | "node"
    target: int  # GPU index within the scope, or node id
    at_time: float  # simulated seconds on the issue clock

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "node"):
            raise ValueError(f"loss kind must be 'gpu' or 'node', got {self.kind!r}")
        if self.at_time < 0:
            raise ValueError(f"loss time must be >= 0, got {self.at_time}")


@dataclass(frozen=True)
class ChaosConfig:
    """Seed-driven fault schedule for one runtime (see module docs)."""

    seed: int = 0
    copy_fault_rate: float = 0.0
    alloc_fault_rate: float = 0.0
    max_retries: int = 6
    backoff_base: float = 1e-4
    # Simulated cost of detecting a loss and restarting the node's
    # runtime processes before replay begins.
    recovery_delay: float = 1e-3
    # Automatic checkpoint cadence in *task launches* (deterministic on
    # the launch stream); 0 means only explicit Runtime.checkpoint().
    checkpoint_every: int = 0
    # k-way checkpoint replication: snapshot pieces land in the sysmems
    # of this many distinct fault domains (nodes).  1 = the original
    # node-0 single store (losing it is fatal).
    ckpt_replicas: int = 1
    # Modeled failure detection: a loss is *suspected* at the next
    # heartbeat tick and *confirmed* detection_timeout later; recovery
    # begins only after confirmation.  Both 0 = instantaneous detection.
    heartbeat_period: float = 0.0
    detection_timeout: float = 0.0
    losses: Tuple[LossSchedule, ...] = ()

    def __post_init__(self) -> None:
        for name in ("copy_fault_rate", "alloc_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.ckpt_replicas < 1:
            raise ValueError(
                f"ckpt_replicas must be >= 1, got {self.ckpt_replicas}"
            )
        for name in ("heartbeat_period", "detection_timeout"):
            val = getattr(self, name)
            if val < 0.0:
                raise ValueError(f"{name} must be >= 0, got {val}")

    def detection_times(self, at_time: float) -> Tuple[float, float]:
        """``(suspected, confirmed)`` times for a loss at ``at_time``.

        The detector state machine on the simulated clock: the loss is
        *suspected* at the first heartbeat tick at or after the loss
        (instantly when ``heartbeat_period`` is 0) and *confirmed*
        ``detection_timeout`` seconds later.  Deterministic — pure
        arithmetic on the schedule, no RNG draw.
        """
        hb = self.heartbeat_period
        if hb <= 0.0:
            suspected = at_time
        else:
            # Next tick >= at_time; the epsilon keeps a loss landing
            # exactly on a tick from being pushed a full period out by
            # float noise.
            suspected = math.ceil(at_time / hb - 1e-9) * hb
            if suspected < at_time:
                suspected = at_time
        return suspected, suspected + self.detection_timeout

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse a ``REPRO_CHAOS``-style spec string."""
        kwargs: dict = {}
        losses: List[LossSchedule] = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            # Both ``key:value`` (the original spelling) and
            # ``key=value`` (the ISSUE-9 spelling) are accepted;
            # whichever separator appears first wins so loss times
            # ("lose-gpu:1@0.004") parse unambiguously.
            colon, eq = item.find(":"), item.find("=")
            if colon < 0 or (0 <= eq < colon):
                key, sep, value = item.partition("=")
            else:
                key, sep, value = item.partition(":")
            if not sep:
                raise ValueError(f"bad chaos spec item {item!r} (expected key:value)")
            key = key.strip().lower()
            value = value.strip()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "copy":
                kwargs["copy_fault_rate"] = float(value)
            elif key == "alloc":
                kwargs["alloc_fault_rate"] = float(value)
            elif key == "retries":
                kwargs["max_retries"] = int(value)
            elif key == "backoff":
                kwargs["backoff_base"] = float(value)
            elif key == "ckpt":
                kwargs["checkpoint_every"] = int(value)
            elif key == "replicas":
                kwargs["ckpt_replicas"] = int(value)
            elif key == "heartbeat":
                kwargs["heartbeat_period"] = float(value)
            elif key == "detect":
                kwargs["detection_timeout"] = float(value)
            elif key in ("lose-gpu", "lose-node"):
                target, sep, at = value.partition("@")
                if not sep:
                    raise ValueError(
                        f"bad loss spec {item!r} (expected {key}:TARGET@TIME)"
                    )
                losses.append(
                    LossSchedule(key.removeprefix("lose-"), int(target), float(at))
                )
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        return cls(losses=tuple(losses), **kwargs)

    @property
    def has_losses(self) -> bool:
        """Whether any whole-GPU/node loss is scheduled."""
        return bool(self.losses)


def chaos_default() -> Optional[ChaosConfig]:
    """The process-wide default chaos config, from ``REPRO_CHAOS``.

    Returns None (no injection) when the variable is unset or empty, so
    the hot path stays fault-free unless explicitly opted in.
    """
    spec = os.environ.get("REPRO_CHAOS", "").strip()
    if not spec or spec == "0":
        return None
    return ChaosConfig.parse(spec)


class ChaosInjector:
    """Draws the fault schedule for one runtime, deterministically.

    All randomness flows from one :class:`numpy.random.Generator`
    seeded by ``config.seed``; the draw order is the runtime's
    (deterministic) copy/mapping order, so two runs with the same seed
    and program inject byte-for-byte identical schedules.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        # Losses not yet delivered, soonest first.
        self._pending: List[LossSchedule] = sorted(
            config.losses, key=lambda l: l.at_time
        )
        self.faults_injected = 0

    # ------------------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """The injector's seeded generator (shared with test hooks)."""
        return self._rng

    def copy_fault(self) -> bool:
        """Draw: does this copy attempt hit a transient link error?"""
        if self.config.copy_fault_rate <= 0.0:
            return False
        hit = bool(self._rng.random() < self.config.copy_fault_rate)
        if hit:
            self.faults_injected += 1
        return hit

    def alloc_fault(self) -> bool:
        """Draw: does this instance mapping hit a transient failure?"""
        if self.config.alloc_fault_rate <= 0.0:
            return False
        hit = bool(self._rng.random() < self.config.alloc_fault_rate)
        if hit:
            self.faults_injected += 1
        return hit

    def backoff(self, attempt: int) -> float:
        """Simulated exponential backoff before retry ``attempt`` (1-based)."""
        return self.config.backoff_base * (2.0 ** max(attempt - 1, 0))

    def take_losses(self, now: float) -> List[LossSchedule]:
        """Pop every scheduled loss whose time has arrived."""
        due: List[LossSchedule] = []
        while self._pending and self._pending[0].at_time <= now:
            due.append(self._pending.pop(0))
        if due:
            self.faults_injected += len(due)
        return due

    @property
    def pending_losses(self) -> Tuple[LossSchedule, ...]:
        """Losses not yet delivered."""
        return tuple(self._pending)
